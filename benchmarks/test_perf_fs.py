"""P5: namespace and file-server throughput.

Every operation in the system funnels through the namespace — window
bodies, tool scripts, ctl messages — so walking and unioning must be
cheap.
"""

import pytest

from repro import build_system
from repro.fs import VFS, BindFlag, Namespace


@pytest.fixture
def deep_ns():
    fs = VFS()
    for a in range(10):
        for b in range(10):
            fs.mkdir(f"/d{a}/e{b}", parents=True)
            for c in range(5):
                fs.create(f"/d{a}/e{b}/f{c}.c", f"int x{c};\n")
    return Namespace(fs)


def test_perf_walks(benchmark, deep_ns):
    def walks():
        hits = 0
        for a in range(10):
            for b in range(10):
                for c in range(5):
                    hits += deep_ns.exists(f"/d{a}/e{b}/f{c}.c")
        return hits

    assert benchmark(walks) == 500


def test_perf_union_lookup(benchmark, deep_ns):
    for a in range(1, 8):
        deep_ns.bind(f"/d{a}", "/d0", BindFlag.AFTER)

    def union_reads():
        total = 0
        for b in range(10):
            total += len(deep_ns.listdir(f"/d0/e{b}"))
        return total

    assert benchmark(union_reads) == 50


def test_perf_glob(benchmark, deep_ns):
    result = benchmark(lambda: deep_ns.glob("/d*/e*/f1.c"))
    assert len(result) == 100


def test_perf_helpfs_reads(benchmark):
    system = build_system()
    h = system.help
    windows = [h.new_window(f"/tmp/w{i}", f"body {i}\n" * 20)
               for i in range(20)]

    def read_all():
        total = 0
        for w in windows:
            total += len(system.ns.read(f"/mnt/help/{w.id}/body"))
        return total

    assert benchmark(read_all) > 0


def test_perf_ctl_messages(benchmark):
    system = build_system()
    h = system.help
    w = h.new_window("/tmp/w", "")

    def edit_via_ctl():
        w.replace_body("")
        with system.ns.open(f"/mnt/help/{w.id}/ctl", "w") as f:
            for i in range(50):
                f.write(f"insert {i} x\n")
        return len(w.body)

    assert benchmark(edit_via_ctl) == 50


def test_perf_index_generation(benchmark):
    system = build_system()
    h = system.help
    for i in range(50):
        h.new_window(f"/tmp/w{i}", "x")

    index = benchmark(lambda: system.ns.read("/mnt/help/index"))
    assert len(index.splitlines()) >= 50
