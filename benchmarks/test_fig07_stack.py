"""Figure 7: db/stack applied to the broken process.

Pointing at the pid in Sean's message and executing stack pops a
window whose tag carries the *source directory* of the broken binary
("/usr/rob/src/help/ 176153 stack") and whose body is the adb
traceback full of file:line names.
"""

from repro.tools.corpus import SRC_DIR


def make_message(system):
    h = system.help
    mail_stf = h.window_by_name("/help/mail/stf")
    h.execute_text(mail_stf, "headers")
    mbox_w = h.window_by_name("/mail/box/rob/mbox")
    h.point_at(mbox_w, mbox_w.body.string().index("sean"))
    h.execute_text(mail_stf, "messages")
    return h.window_by_name("From")


def test_fig07_stack(system, benchmark, screenshot):
    h = system.help
    msg_w = make_message(system)
    db_stf = h.window_by_name("/help/db/stf")

    def scenario():
        for w in list(h.windows.values()):
            if w.name() == f"{SRC_DIR}/":
                h.close_window(w)
        h.point_at(msg_w, msg_w.body.string().index("176153"))
        h.execute_text(db_stf, "stack")
        return h.window_by_name(f"{SRC_DIR}/")

    stack_w = benchmark(scenario)
    assert stack_w.tag.string().startswith(f"{SRC_DIR}/ 176153 stack")
    trace = stack_w.body.string()
    # the paper's traceback, line for line
    assert trace.startswith("last exception: TLB miss (load or fetch)")
    for expected in (
        "strchr(c=0x3c, s=0x0) called from strlen+0x1c "
        "/sys/src/libc/port/strlen.c:7",
        "strlen(s=0x0) called from textinsert+0x30 text.c:32",
        "textinsert(sel=0x1, t=0x40e60, s=0x0, q0=0xd, full=0x1) "
        "called from errs+0xe8 errs.c:34",
        "\tn = 0x3d7cc",
        "errs(s=0x0) called from Xdie2+0x14 exec.c:252",
        "Xdie2() called from lookup+0xc4 exec.c:101",
        "lookup(s=0x40be8) called from execute+0x50 exec.c:207",
        "execute(t=0x3ebbc, p0=0x2, p1=0x2) called from "
        "control+0x430 ctrl.c:331",
        "control() called from control+0x0 ctrl.c:320",
    ):
        assert expected in trace, expected
    screenshot("fig07_stack", h)


def test_fig07_other_db_tools(system):
    h = system.help
    msg_w = make_message(system)
    db_stf = h.window_by_name("/help/db/stf")
    h.point_at(msg_w, msg_w.body.string().index("176153"))

    h.execute_text(db_stf, "regs")
    regs_w = h.window_by_name("176153")
    assert "pc\t0x18df4" in regs_w.body.string()

    h.point_at(msg_w, msg_w.body.string().index("176153"))
    h.execute_text(db_stf, "broke")
    broke_w = h.window_by_name("broke")
    assert "176153 Broken   help" in broke_w.body.string()

    h.point_at(msg_w, msg_w.body.string().index("176153"))
    h.execute_text(db_stf, "pc")
    errors = h.window_by_name("Errors")
    assert "/sys/src/libc/mips/strchr.s:34" in errors.body.string()
