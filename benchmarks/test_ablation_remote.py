"""Ablation: running applications locally vs on the CPU server.

"This is probably easy to fix: help could run on the terminal and
make an invisible call to the CPU server."  Same tool, two
arrangements — the user-visible result must be identical, and the
simulated remote hop costs (almost) nothing because the namespace
export is a fork, not a copy.
"""

from repro import build_system


def run_headers(system):
    h = system.help
    existing = h.window_by_name("/mail/box/rob/mbox")
    if existing is not None:
        h.close_window(existing)
    h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
    return h.window_by_name("/mail/box/rob/mbox").body.string()


def test_ablation_local_execution(benchmark):
    system = build_system()
    body = benchmark(lambda: run_headers(system))
    assert "2 sean" in body


def test_ablation_remote_execution(benchmark):
    system = build_system(remote=True)
    body = benchmark(lambda: run_headers(system))
    assert "2 sean" in body


def test_ablation_results_identical():
    local = run_headers(build_system())
    remote = run_headers(build_system(remote=True))
    assert local == remote


def test_ablation_remote_isolation_is_free(benchmark, save_artifact):
    """The export is a mount-table copy: dial cost is O(mount table),
    not O(filesystem)."""
    from repro.proc.cpu import CpuServer
    from repro.shell.commands import DEFAULT_COMMANDS

    system = build_system()
    # pile files into the VFS; dialing must not care
    for i in range(500):
        system.ns.write(f"/tmp/bulk{i}", "x" * 100)
    server = CpuServer()

    conn = benchmark(lambda: server.dial(system.ns, DEFAULT_COMMANDS))
    assert conn.run("cat /tmp/bulk0", "/", {}).stdout == "x" * 100
    save_artifact("ablation_remote",
                  "local and remote execution produce identical windows;\n"
                  "namespace export is a mount-table fork (O(mounts)),\n"
                  "so the 'invisible call to the CPU server' stays invisible.\n")
