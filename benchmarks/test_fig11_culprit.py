"""Figure 11: from the uses list to the culprit write.

help.c:35 shows the initialization; exec.c:213 is the write that
cleared n — "the jackpot of this contrived example".
"""

from repro.tools.corpus import SRC_DIR

USES = "./dat.h:136\nexec.c:213\nexec.c:252\nhelp.c:35\n"


def test_fig11_culprit(system, benchmark, screenshot):
    h = system.help
    uses_w = h.new_window(f"{SRC_DIR}/", USES)

    def scenario():
        h.point_at(uses_w, uses_w.body.string().index("help.c:35") + 2)
        h.exec_builtin("Open", uses_w)
        h.point_at(uses_w, uses_w.body.string().index("exec.c:213") + 2)
        h.exec_builtin("Open", uses_w)
        return (h.window_by_name(f"{SRC_DIR}/help.c"),
                h.window_by_name(f"{SRC_DIR}/exec.c"))

    help_w, exec_w = benchmark(scenario)
    init = help_w.body.slice(help_w.body_sel.q0, help_w.body_sel.q1)
    assert init == '\tn = (uchar*)"a test string";'
    culprit = exec_w.body.slice(exec_w.body_sel.q0, exec_w.body_sel.q1)
    assert culprit == "\tn = 0;"
    # the culprit really is inside Xdie1
    before = exec_w.body.slice(0, exec_w.body_sel.q0)
    assert before.rstrip().endswith("{")
    assert "Xdie1" in before[-200:]
    screenshot("fig11_culprit", h)


def test_fig11_relative_dotslash_name(system):
    """./dat.h:136 opens through the directory window's context."""
    h = system.help
    uses_w = h.new_window(f"{SRC_DIR}/", USES)
    h.point_at(uses_w, uses_w.body.string().index("./dat.h:136") + 3)
    h.exec_builtin("Open", uses_w)
    dat_w = h.window_by_name(f"{SRC_DIR}/dat.h")
    assert dat_w is not None
    assert dat_w.body.line_of(dat_w.org) == 136
    assert dat_w.body.slice(dat_w.body_sel.q0, dat_w.body_sel.q1) \
        == "extern uchar *n;"
