"""P6: wire transport throughput under concurrent sessions.

The tentpole claim of the transport layer is that serving trees over
a real byte stream — framing, tag multiplexing, per-fid state — stays
cheap enough that many simultaneous sessions share one server without
falling over.  These benches put numbers behind that: N clients over
real TCP sockets hammering one server, plus single-RPC round-trip
latency, all reported into ``BENCH_perf.json`` alongside the
``wire.rpc.*`` / ``mux.rpc.*`` latency histograms the layer records.
"""

import threading

from repro.fs import VFS, MuxClient, WireServer, dial, mount_remote

SESSIONS = 6        # concurrent clients (acceptance floor is 4)
ROUNDS = 25         # write+read round trips per client per iteration


def test_perf_wire_concurrent_sessions(benchmark):
    vfs = VFS()
    for i in range(SESSIONS):
        vfs.write(f"/f{i}.txt", f"seed {i}\n" * 40)
    with WireServer(vfs.root, clock=vfs.clock) as server:
        host, port = server.listen()
        clients = [MuxClient(dial(host, port)) for _ in range(SESSIONS)]
        nodes = [mount_remote(c).lookup(f"f{i}.txt")
                 for i, c in enumerate(clients)]
        failures: list[BaseException] = []

        def hammer(idx: int) -> None:
            try:
                node = nodes[idx]
                for round_no in range(ROUNDS):
                    with node.open("w") as s:
                        s.write(f"client {idx} round {round_no}\n")
                    with node.open("r") as s:
                        assert s.read().startswith(f"client {idx}")
            except BaseException as exc:  # noqa: BLE001 - reraised below
                failures.append(exc)

        def storm() -> int:
            threads = [threading.Thread(target=hammer, args=(i,))
                       for i in range(SESSIONS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if failures:
                raise failures[0]
            # 4 RPCs per open/io/clunk pair, two pairs per round
            return SESSIONS * ROUNDS * 8

        rpcs = benchmark(storm)
        assert rpcs == SESSIONS * ROUNDS * 8
        for client in clients:
            client.close()
    benchmark.extra_info["sessions"] = SESSIONS
    benchmark.extra_info["rpcs_per_iteration"] = rpcs
    median = benchmark.stats.stats.median if benchmark.stats else None
    if median:
        benchmark.extra_info["rpcs_per_sec"] = round(rpcs / median, 1)


def test_perf_wire_rpc_latency(benchmark):
    """One client, sequential round trips: the per-RPC floor."""
    vfs = VFS()
    vfs.write("/probe.txt", "payload\n")
    with WireServer(vfs.root, clock=vfs.clock) as server:
        host, port = server.listen()
        with MuxClient(dial(host, port)) as client:
            node = mount_remote(client).lookup("probe.txt")

            def read_once() -> str:
                with node.open("r") as s:
                    return s.read()

            assert benchmark(read_once) == "payload\n"


def test_perf_wire_large_transfer(benchmark):
    """A megabyte-scale body crossing the wire in framed reads."""
    vfs = VFS()
    body = ("x" * 99 + "\n") * 5000  # 500 KB
    vfs.write("/big.txt", body)
    with WireServer(vfs.root, clock=vfs.clock) as server:
        host, port = server.listen()
        with MuxClient(dial(host, port)) as client:
            node = mount_remote(client).lookup("big.txt")

            def pull() -> int:
                with node.open("r") as s:
                    return len(s.read())

            assert benchmark(pull) == len(body)
