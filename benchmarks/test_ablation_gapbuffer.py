"""Ablation: the gap buffer vs a naive immutable-string text store.

The design choice DESIGN.md calls out for the text engine: localized
edits (the editor's common case) should not pay for document length.
"""

from repro.core.text import GapBuffer


class StringBuffer:
    """The naive alternative: one Python string, rebuilt per edit."""

    def __init__(self, text=""):
        self._s = text

    def __len__(self):
        return len(self._s)

    def insert(self, pos, s):
        self._s = self._s[:pos] + s + self._s[pos:]

    def delete(self, start, end):
        removed = self._s[start:end]
        self._s = self._s[:start] + self._s[end:]
        return removed

    def text(self):
        return self._s


DOC = "x" * 200_000
EDITS = 400


def _typing_run(buf_cls):
    buf = buf_cls(DOC)
    pos = len(DOC) // 2
    for i in range(EDITS):
        buf.insert(pos, "a")
        pos += 1
    for i in range(EDITS):
        pos -= 1
        buf.delete(pos, pos + 1)
    return len(buf)


def test_ablation_gapbuffer(benchmark):
    assert benchmark(lambda: _typing_run(GapBuffer)) == len(DOC)


def test_ablation_stringbuffer(benchmark):
    assert benchmark(lambda: _typing_run(StringBuffer)) == len(DOC)


def test_ablation_equivalence():
    """Both stores compute the same text; only the cost differs."""
    gap, naive = GapBuffer("hello"), StringBuffer("hello")
    for buf in (gap, naive):
        buf.insert(5, " world")
        buf.delete(0, 1)
        buf.insert(0, "H")
    assert gap.text() == naive.text() == "Hello world"
