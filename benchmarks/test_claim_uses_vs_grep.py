"""Claim C5: uses' precision vs grep's flood, quantified.

"If instead I had run the regular Unix command grep n ... I would
have had to wade through every occurrence of the letter n in the
program."  We measure both the precision ratio and the costs.
"""

from repro import build_system
from repro.cbrowse import parse_program
from repro.tools.corpus import SRC_DIR


def test_claim_uses_vs_grep(benchmark, save_artifact):
    system = build_system()
    ns = system.ns
    paths = ns.glob(f"{SRC_DIR}/*.c")

    def browse():
        program = parse_program(ns, paths, base_dir=SRC_DIR)
        return program.uses_of("n", "exec.c", 252)

    uses = benchmark(browse)

    shell = system.shell(SRC_DIR)
    grep = shell.run(f"grep -n n {SRC_DIR}/*.c")
    grep_lines = grep.stdout.splitlines()

    rows = [
        f"{'tool':<10} {'results':>8}",
        f"{'uses':<10} {len(uses):>8}",
        f"{'grep n':<10} {len(grep_lines):>8}",
        f"noise ratio: {len(grep_lines) / len(uses):.1f}x",
    ]
    save_artifact("claim_uses_vs_grep", "\n".join(rows) + "\n")
    print("\n[C5] " + " | ".join(rows[1:]))

    assert len(uses) == 4
    assert len(grep_lines) > 40
    # every uses hit is also a grep hit (soundness of the browser)
    grep_locs = {tuple(line.split(":")[:2]) for line in grep_lines}
    for use in uses:
        if not use.file.endswith(".c"):
            continue  # grep was run on *.c only; dat.h reached via include
        assert (f"{SRC_DIR}/{use.file}", str(use.line)) in grep_locs


def test_claim_grep_is_not_scoped(benchmark):
    """grep finds the local n's lines; uses does not — that's the point."""
    system = build_system()
    shell = system.shell(SRC_DIR)
    result = benchmark(lambda: shell.run(r"grep -n 'n = strlen' exec.c"))
    assert result.stdout, "the local n's write is a grep hit"
    program = parse_program(system.ns, system.ns.glob(f"{SRC_DIR}/*.c"),
                            base_dir=SRC_DIR)
    locations = {u.location for u in program.uses_of("n", "exec.c", 252)}
    line = int(result.stdout.split(":")[0])
    assert f"exec.c:{line}" not in locations
