"""Claim C2: Cut via word or chord beats a pop-up menu.

"one may just select the text normally, then click on Cut with the
middle button, involving less mouse activity than with a typical
pop-up menu" — and the chord needs no pointing at all.  Scored with
the keystroke-level model.
"""

from repro.metrics.baseline import cut_selection, cut_via_word
from repro.metrics.klm import Op


def test_claim_cut_chord_vs_menu(benchmark):
    ours, menu = benchmark(cut_selection)
    print(f"\n[C2] {ours.report()}  vs  {menu.report()}"
          f"  -> {menu.seconds / ours.seconds:.1f}x")
    assert ours.seconds < menu.seconds
    # the chord involves NO pointing; the menu involves one
    assert ours.count(Op.P) == 0
    assert menu.count(Op.P) == 1


def test_claim_cut_word_vs_menu():
    ours, menu = cut_via_word()
    # same pointing cost, strictly fewer or equal operators overall —
    # and no menu-posting press is wasted (the brevity rule)
    assert ours.seconds <= menu.seconds + 0.01
    assert ours.count(Op.B) == 2
    assert menu.count(Op.B) == 2


def test_claim_chord_measured_in_system(benchmark):
    """The chord really does cut, measured through raw events."""
    from repro import build_system
    from repro.core.events import Button

    system = build_system()
    h = system.help
    w = h.new_window("/tmp/f", "x" * 60)

    def chord_cut():
        w.replace_body("chop this")
        column = h.screen.column_of(w)
        rect = column.win_rect(w)
        y = rect.y0 + 1
        h.mouse_press(column.body_x0, y, Button.LEFT)
        h.mouse_drag(column.body_x0 + 4, y)
        h.mouse_press(column.body_x0 + 4, y, Button.MIDDLE)
        h.mouse_release(column.body_x0 + 4, y, Button.MIDDLE)
        h.mouse_release(column.body_x0 + 4, y, Button.LEFT)
        return w.body.string()

    remaining = benchmark(chord_cut)
    assert remaining == " this"
    assert h.snarf == "chop"
