"""P6: C browser and shell throughput.

"To turn a compiler into a browser involved spending a few hours" —
and the result must keep up with interactive use: pointing at a
variable and clicking uses should feel instant.
"""

from repro import build_system
from repro.cbrowse import parse_program, parse_source
from repro.tools.corpus import SRC_DIR

SYNTHETIC = "\n".join(
    f"int global{i};\n"
    f"void fn{i}(int a{i}, char *b{i}) {{\n"
    f"\tint local{i};\n"
    f"\tlocal{i} = a{i} + global{i};\n"
    f"\tglobal{i} = local{i};\n"
    f"}}\n"
    for i in range(120))


def test_perf_parse_corpus(benchmark):
    system = build_system()
    paths = system.ns.glob(f"{SRC_DIR}/*.c")

    program = benchmark(
        lambda: parse_program(system.ns, paths, base_dir=SRC_DIR))
    assert program.declaration_of("n") is not None


def test_perf_parse_synthetic(benchmark):
    program = benchmark(lambda: parse_source(SYNTHETIC, "big.c"))
    assert len([d for d in program.decls if d.kind == "func"]) == 120
    assert program.unresolved() == []


def test_perf_uses_query(benchmark):
    program = parse_source(SYNTHETIC, "big.c")

    def queries():
        total = 0
        for i in range(0, 120, 7):
            total += len(program.uses_of(f"global{i}"))
        return total

    assert benchmark(queries) > 0


def test_perf_decl_pipeline(benchmark):
    """The full decl tool — cpp | rcc | sed — as the script runs it."""
    system = build_system()
    shell = system.shell(SRC_DIR)

    def pipeline():
        return shell.run(
            f"cpp {SRC_DIR}/exec.c | help-rcc -w -g -in -n252 | sed 1q")

    result = benchmark(pipeline)
    assert result.stdout == "./dat.h:136\n"


def test_perf_shell_script_execution(benchmark):
    system = build_system()
    shell = system.shell("/usr/rob")

    def scripts():
        result = shell.run(
            "{ for(i in a b c d e) echo $i } | wc -l")
        return result.stdout.strip()

    assert benchmark(scripts) == "5"
