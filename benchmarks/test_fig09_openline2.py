"""Figure 9: Open on exec.c:252 — reusing an already-open window.

"If the file is already open, the command just guarantees that its
window is visible" (and, with a line address, repositions it).
"""

from repro.tools.corpus import SRC_DIR


def test_fig09_openline2(system, benchmark, screenshot):
    h = system.help
    stack_w = h.new_window(
        f"{SRC_DIR}/",
        "errs(s=0x0) called from Xdie2+0x14 exec.c:252\n"
        "lookup(s=0x40be8) called from execute+0x50 exec.c:207\n")

    def scenario():
        h.point_at(stack_w, stack_w.body.string().index("exec.c:252") + 2)
        h.exec_builtin("Open", stack_w)
        return h.window_by_name(f"{SRC_DIR}/exec.c")

    exec_w = benchmark(scenario)
    assert exec_w.body.slice(exec_w.body_sel.q0, exec_w.body_sel.q1) \
        == "\terrs(n);"
    assert exec_w.body.line_of(exec_w.org) == 252
    screenshot("fig09_openline2", h)


def test_fig09_no_duplicate_windows(system):
    h = system.help
    first = h.open_path(f"{SRC_DIR}/exec.c", line=252)
    second = h.open_path(f"{SRC_DIR}/exec.c", line=101)
    assert first is second
    assert first.body.line_of(first.org) == 101
    same_name = [w for w in h.windows.values()
                 if w.name() == f"{SRC_DIR}/exec.c"]
    assert len(same_name) == 1


def test_fig09_open_repositions_hidden_window(system):
    """Opening a hidden window makes it visible again (tab semantics)."""
    h = system.help
    exec_w = h.open_path(f"{SRC_DIR}/exec.c")
    exec_w.hidden = True
    h.open_path(f"{SRC_DIR}/exec.c", line=213)
    assert not exec_w.hidden
