"""Figure 4: the screen after booting.

The right-hand column holds the tools — windows on the plain files
/help/edit/stf, /help/cbr/stf, /help/db/stf and /help/mail/stf —
and the left column holds help/Boot with its Exit word.
"""

from repro import build_system


def test_fig04_boot(benchmark, screenshot):
    system = benchmark(lambda: build_system(width=160, height=60))
    h = system.help
    shot = screenshot("fig04_boot", h)
    assert "[help/Boot Exit" in shot
    for tool in ("edit", "cbr", "db", "mail"):
        assert f"/help/{tool}/stf" in shot
    # the stf bodies really are the files' contents
    assert "headers messages delete reread send" in shot
    assert "Open mk src decl uses *.c" in shot


def test_fig04_tools_in_right_column(system):
    h = system.help
    right = h.screen.columns[-1]
    names = {w.name() for w in right.windows}
    assert names == {"/help/edit/stf", "/help/cbr/stf",
                     "/help/db/stf", "/help/mail/stf"}
    boot = h.window_by_name("help/Boot")
    assert h.screen.column_of(boot) is h.screen.columns[0]


def test_fig04_stf_is_a_plain_file(system):
    """'A help window on such a file behaves much like a menu, but is
    really just a window on a plain file.'"""
    h = system.help
    w = h.window_by_name("/help/mail/stf")
    assert w.body.string() == system.ns.read("/help/mail/stf")
