"""Figure 5: mail/headers creates the mailbox window.

Executing headers runs /help/mail/headers (an rc script) which makes
a window through /mnt/help/new/ctl, labels it with the mailbox path,
and fills it with the numbered header lines.
"""


def test_fig05_headers(system, benchmark, screenshot):
    h = system.help
    mail_stf = h.window_by_name("/help/mail/stf")

    def scenario():
        existing = h.window_by_name("/mail/box/rob/mbox")
        if existing is not None:
            h.close_window(existing)
        h.execute_text(mail_stf, "headers")
        return h.window_by_name("/mail/box/rob/mbox")

    mbox_w = benchmark(scenario)
    assert mbox_w is not None
    body = mbox_w.body.string()
    lines = body.splitlines()
    assert len(lines) == 7
    assert lines[0].startswith("1 chk@alias.com")
    assert lines[1].startswith("2 sean")
    assert lines[5].startswith("6 howard")
    assert "/bin/help/mail" in mbox_w.tag.string()
    shot = screenshot("fig05_headers", h)
    assert "2 sean" in shot


def test_fig05_script_not_builtin(system):
    """headers resolves through the stf window's directory context."""
    h = system.help
    assert "headers" not in h.executor.builtins
    resolved = h.executor.resolve_command(
        "headers", h.window_by_name("/help/mail/stf").directory())
    assert resolved == "/help/mail/headers"
