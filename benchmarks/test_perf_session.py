"""Sustained-session throughput: a synthetic hour of work, replayed.

"After a few minutes the screen is filled with active data" — this
bench generates a long, seeded, realistic mix of the session's
operations (open, select, execute, type, scroll, move, close) and
measures sustained events/second through the full stack.
"""

import random

from repro import build_system
from repro.tools.corpus import SRC_DIR

N_EVENTS = 400


def make_trace(seed: int = 11, n: int = N_EVENTS):
    """A seeded mix roughly matching the paper demo's action profile."""
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        ops.append(rng.choices(
            ["click", "sweep", "execute", "type", "scroll", "open",
             "move", "close"],
            weights=[30, 20, 15, 10, 10, 8, 5, 2])[0])
    return ops


def replay(system, ops):
    h = system.help
    rng = random.Random(99)
    files = [f"{SRC_DIR}/{n}" for n in
             ("help.c", "exec.c", "errs.c", "text.c", "dat.h")]
    executed = 0
    for op in ops:
        windows = [w for w in h.windows.values()
                   if h.screen.column_of(w) is not None]
        window = rng.choice(windows)
        column = h.screen.column_of(window)
        rect = column.win_rect(window)
        if rect is None:
            column.make_visible(window)
            rect = column.win_rect(window)
        x = column.body_x0 + rng.randrange(0, max(1, column.text_width))
        y = rect.y0 + rng.randrange(0, rect.height)
        if op == "click":
            h.left_click(x, y)
        elif op == "sweep":
            h.sweep(x, y, min(x + 8, column.rect.x1 - 1), y)
        elif op == "execute":
            h.exec_builtin("Snarf", window)
            executed += 1
        elif op == "type":
            h.mouse_move(x, y)
            h.type_text("word ")
        elif op == "scroll":
            h.scroll(window, rng.choice([-10, 10]))
        elif op == "open":
            h.open_path(rng.choice(files))
        elif op == "move":
            h.right_drag(column.body_x0 + 1, rect.y0,
                         rng.randrange(0, h.screen.rect.width),
                         rng.randrange(1, h.screen.rect.height))
        elif op == "close" and len(windows) > 4:
            h.close_window(window)
    return executed


def test_perf_sustained_session(benchmark):
    ops = make_trace()

    def session():
        system = build_system(width=160, height=60)
        return replay(system, ops)

    executed = benchmark(session)
    assert executed > 0


def test_session_leaves_system_consistent():
    system = build_system(width=160, height=60)
    replay(system, make_trace(seed=5))
    h = system.help
    for column in h.screen.columns:
        bottom = None
        for window in column.visible():
            rect = column.win_rect(window)
            assert rect is not None and rect.height >= 1
            if bottom is not None:
                assert rect.y0 == bottom
            bottom = rect.y1
    index = system.ns.read("/mnt/help/index")
    assert len(index.splitlines()) == len(h.windows)
