"""Claim C1: the entire debug session without touching the keyboard.

"Through this entire demo I haven't yet touched the keyboard."
This bench replays Figures 5-12 through raw mouse events and counts.
"""

from repro import build_system
from repro.core.window import Subwindow
from repro.tools.corpus import SRC_DIR
from repro.testing import Session


def run_demo(session: Session) -> dict:
    h = session.help
    h.stats.reset()
    mail_stf = session.window("/help/mail/stf")
    db_stf = session.window("/help/db/stf")
    cbr_stf = session.window("/help/cbr/stf")
    edit_stf = session.window("/help/edit/stf")

    session.execute(mail_stf, "headers")
    mbox_w = session.window("/mail/box/rob/mbox")
    session.point_at(mbox_w, "sean")
    session.execute(mail_stf, "messages")
    msg_w = session.window("From")
    session.point_at(msg_w, "176153")
    session.execute(db_stf, "stack")
    stack_w = session.window(f"{SRC_DIR}/")
    session.point_at(stack_w, "text.c:32", offset=2)
    session.execute(edit_stf, "Open")
    text_w = session.window(f"{SRC_DIR}/text.c")
    session.execute(text_w, "Close!", sub=Subwindow.TAG)
    session.point_at(stack_w, "exec.c:252", offset=2)
    session.execute(edit_stf, "Open")
    exec_w = session.window(f"{SRC_DIR}/exec.c")
    line_start = exec_w.body.pos_of_line(252)
    n_off = exec_w.body.string().index("errs(n)", line_start) + 5
    h.left_click(*session.cell_of(exec_w, n_off))
    session.execute_sweep(cbr_stf, "uses *.c")
    uses_w = next(w for w in session.windows(f"{SRC_DIR}/")
                  if "dat.h:136" in w.body.string())
    session.point_at(uses_w, "exec.c:213", offset=2)
    session.execute(edit_stf, "Open")
    start, end = exec_w.body.line_span(213)
    session.select(exec_w, start, end + 1)
    session.execute(edit_stf, "Cut")
    session.execute(exec_w, "Put!", sub=Subwindow.TAG)
    session.execute(cbr_stf, "mk")
    return {
        "keystrokes": h.stats.keystrokes,
        "presses": h.stats.button_presses,
        "middle": h.stats.middle_clicks,
    }


def test_claim_zero_keyboard(benchmark):
    def scenario():
        return run_demo(Session(build_system(width=160, height=60)))

    stats = benchmark(scenario)
    print(f"\n[C1] demo input: {stats['presses']} button presses "
          f"({stats['middle']} middle), {stats['keystrokes']} keystrokes")
    assert stats["keystrokes"] == 0
    # the whole bug hunt fits in a couple dozen presses
    assert stats["presses"] <= 30
    assert stats["middle"] >= 9  # headers..mk: nine executions
