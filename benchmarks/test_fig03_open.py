"""Figure 3: opening files with automatic name expansion.

Typed path + click Open (null selection at the end of the name grabs
it all); then pointing into ``dat.h`` inside help.c and Opening gets
the directory prefix from the window's tag.
"""

from repro.tools.corpus import SRC_DIR


def test_fig03_typed_path_then_open(system, benchmark, screenshot):
    h = system.help

    def scenario():
        scratch = h.new_window("/tmp/scratch", "")
        column = h.screen.column_of(scratch)
        rect = column.win_rect(scratch)
        h.mouse_move(column.body_x0, rect.y0 + 1)
        h.type_text(f"{SRC_DIR}/help.c")
        h.exec_builtin("Open", scratch)
        opened = h.window_by_name(f"{SRC_DIR}/help.c")
        h.close_window(scratch)
        return opened

    opened = benchmark(scenario)
    assert opened is not None
    shot = screenshot("fig03_open", h)
    assert "help.c" in shot


def test_fig03_point_into_name_two_clicks(system):
    h = system.help
    src_w = h.open_path(f"{SRC_DIR}/help.c")
    h.stats.reset()
    pos = src_w.body.string().index("dat.h") + 2
    h.point_at(src_w, pos)
    h.stats.press("left")     # the point
    h.exec_builtin("Open", src_w)
    h.stats.press("middle")   # the Open click
    dat_w = h.window_by_name(f"{SRC_DIR}/dat.h")
    assert dat_w is not None
    assert h.stats.button_presses == 2


def test_fig03_nonnull_selection_is_literal(system):
    """'Making any non-null selection disables all such automatic
    actions' — selecting part of a name opens exactly that part."""
    h = system.help
    w = h.new_window("/tmp/x", "dat.h")
    h.select(w, 0, 3)  # just "dat"
    h.exec_builtin("Open", w)
    errors = h.window_by_name("Errors")
    assert "'/tmp/dat' does not exist" in errors.body.string()
