"""Scaling study: browser precision vs grep noise as code grows.

The paper's Figure-10 comparison at one size, swept: as the program
gains files (each with locals shadowing a popular global name), the
browser's answer stays the true reference set while grep's noise
grows linearly.  The crossover the paper implies — grep is fine for
rare names, hopeless for common ones — falls out of the data.
"""

import pytest

from repro import build_system
from repro.cbrowse import parse_program


def synth_project(ns, n_files: int, root: str = "/proj") -> None:
    ns.mkdir(root, parents=True)
    ns.write(f"{root}/common.h", "extern int n;\n")
    # one file defines and really uses the global n
    ns.write(f"{root}/main.c",
             '#include "common.h"\n'
             "int n;\n"
             "void boot(void) { n = 1; }\n")
    for i in range(n_files):
        # every other file mentions 'n' plenty — but only as locals,
        # parameters, and substrings
        ns.write(f"{root}/mod{i}.c",
                 '#include "common.h"\n'
                 f"static int counter{i};\n"
                 f"void fn{i}(int n) {{\n"
                 "\tint nn;\n"
                 "\tnn = n + 1;\n"
                 f"\tcounter{i} = nn;\n"
                 "}\n")


SIZES = (2, 8, 24)


@pytest.mark.parametrize("n_files", SIZES)
def test_claim_precision_scaling(n_files, benchmark, save_artifact):
    system = build_system()
    synth_project(system.ns, n_files)
    paths = system.ns.glob("/proj/*.c")

    def browse():
        program = parse_program(system.ns, paths, base_dir="/proj")
        return program.uses_of("n", "main.c", 3)

    uses = benchmark(browse)
    shell = system.shell("/proj")
    grep = shell.run("grep -c 'n' /proj/*.c")
    noise = sum(int(line.rsplit(":", 1)[1])
                for line in grep.stdout.splitlines())

    # the true reference set does not grow with the project
    assert [u.location for u in uses] == \
        ["./common.h:1", "main.c:2", "main.c:3"]
    # grep noise grows with the project (every file mentions n-ish text)
    assert noise >= 4 * n_files
    save_artifact(f"claim_precision_{n_files}files",
                  f"files: {n_files + 1}\nbrowser answers: {len(uses)}\n"
                  f"grep 'n' lines: {noise}\n"
                  f"noise ratio: {noise / len(uses):.1f}x\n")


def test_claim_precision_shape():
    """The shape claim in one assertion: noise ratio grows ~linearly
    with project size while the browser's answer is constant."""
    ratios = []
    for n_files in SIZES:
        system = build_system()
        synth_project(system.ns, n_files)
        paths = system.ns.glob("/proj/*.c")
        program = parse_program(system.ns, paths, base_dir="/proj")
        uses = program.uses_of("n", "main.c", 3)
        grep = system.shell("/proj").run("grep -c 'n' /proj/*.c")
        noise = sum(int(line.rsplit(":", 1)[1])
                    for line in grep.stdout.splitlines())
        ratios.append(noise / len(uses))
    assert ratios[0] < ratios[1] < ratios[2]
    assert ratios[2] / ratios[0] > 4  # roughly linear in files
