"""Claim C7: the system is small — "4300 lines of C".

The reproduction's *core* (the help program proper: editor, windows,
placement, execution, file server) should be of the same order.  The
substrates (shell, browser, debugger, mail, mk) are counted
separately: on Plan 9 they already existed.
"""

import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

CORE_PACKAGES = ("core", "helpfs")
SUBSTRATE_PACKAGES = ("fs", "shell", "proc", "cbrowse", "mail", "mk",
                      "tools", "metrics")


def count_lines(packages):
    total = 0
    per_package = {}
    for package in packages:
        lines = sum(len(path.read_text().splitlines())
                    for path in (SRC / package).glob("*.py"))
        per_package[package] = lines
        total += lines
    return total, per_package


def test_claim_loc(benchmark, save_artifact):
    (core_total, core_detail) = benchmark(lambda: count_lines(CORE_PACKAGES))
    substrate_total, substrate_detail = count_lines(SUBSTRATE_PACKAGES)
    rows = ["paper's help: 4300 lines of C"]
    rows.append(f"our core (help itself): {core_total} lines of Python")
    for package, lines in sorted(core_detail.items()):
        rows.append(f"  {package:10s} {lines:6d}")
    rows.append(f"substrates (Plan 9 gave the paper these for free): "
                f"{substrate_total}")
    for package, lines in sorted(substrate_detail.items()):
        rows.append(f"  {package:10s} {lines:6d}")
    save_artifact("claim_loc", "\n".join(rows) + "\n")
    print("\n[C7] " + rows[1])
    # same order of magnitude as the original's 4300
    assert 1500 < core_total < 10000
