"""P9: replication — sync-ship write cost and the chaos failover soak.

Two benches.  The first prices the durability guarantee: a replicated
pair in ``sync`` mode acks a write only after the standby durably
appended the shipped journal record, so the write round trip carries
one ship round trip (``replica.lag_us``) on top of the unreplicated
cost.  The second is the ISSUE's acceptance run: the loadgen fleet
drives recorded Figures 5-12 traffic through replicated shards while
a seeded chaos controller SIGKILLs primaries mid-soak; severed users
re-attach to the promoted standbys, read the session's ``inputs``
watermark and replay only the unacknowledged tail.  The verdicts —
kills == promotions, **zero** acknowledged writes lost, zero
unrecovered users, ship and promotion ledgers balanced, promote /
failover / lag percentiles — become the ``replica`` section of
``BENCH_perf.json``, where :mod:`repro.tools.benchgate` enforces the
replica SLO budget table.
"""

from repro.fs.mux import MuxClient, mount_remote
from repro.fs.namespace import Namespace
from repro.fs.vfs import VFS
from repro.serve import SessionHost, input_line
from repro.serve.replica import ReplicaPair
from repro.tools import benchgate
from repro.tools.loadgen import LoadGen, build_models, validate

USERS = 1000     # simulated users in the chaos soak
SHARDS = 4       # replicated shards (each primary gets a standby)
KILLS = 3        # seeded primary SIGKILLs mid-soak
WORKERS = 8      # concurrent closed-loop drivers
SEED = 20260808  # same seed as the plain soak: same traffic, plus kills


def test_perf_replica_ship(benchmark):
    """One input record round trip under sync journal shipping."""
    primary = SessionHost(width=100, height=40)
    pair = ReplicaPair(primary, mode="sync", heartbeat=0.2,
                       standby_prefix="br.")
    try:
        client = MuxClient(primary.pipe(), aname="bench")
        ns = Namespace(VFS())
        ns.mkdir("/s", parents=True)
        ns.mount(mount_remote(client), "/s")
        line = input_line("newwin", ("-", "-", "-", "/tmp/note", "text"))

        benchmark(ns.append, "/s/input", line)

        pair.feed.quiesce()
        # every acked write was durably shipped before the ack
        shipped = primary.metrics.counter("replica.ship.frames")
        acked = primary.metrics.counter("replica.ack.frames")
        assert shipped == acked and shipped > 0
        lag = primary.metrics.histogram("replica.lag_us") or {}
        assert lag.get("count"), "sync ship recorded no lag samples"
        benchmark.extra_info["ship_frames"] = shipped
        benchmark.extra_info["lag_p99_us"] = round(lag.get("p99", 0.0), 1)
        client.close()
    finally:
        pair.close()


def test_perf_replica_chaos_soak(benchmark, report_extra):
    """1000 users, 4 replicated shards, 3 seeded primary kills.

    The chaos ledgers are self-contained (a killed primary's books are
    rightly unbalanced), so nothing here merges into the process
    registry — the ``replica`` report section carries the verdicts.
    """
    models = build_models()
    lg = LoadGen(users=USERS, shards=SHARDS, seed=SEED, workers=WORKERS,
                 transport="pipe", models=models, chaos=KILLS)

    report = benchmark.pedantic(lg.run, rounds=1, iterations=1)

    assert validate(report) == [], validate(report)
    section = report.chaos
    assert section is not None
    assert section["kills"] == KILLS
    assert section["promotions"] == KILLS
    assert section["acked_lost"] == 0
    assert section["unrecovered"] == 0
    assert section["severed"] == section["recovered"]

    # the SLO budget table holds on this run's own numbers — the same
    # audit benchgate applies to the emitted section, asserted here so
    # a breach names the failing bench, not just the gate
    assert benchgate.audit_replica(section) == []

    report_extra("replica", **section)
    benchmark.extra_info["users"] = USERS
    benchmark.extra_info["kills"] = KILLS
    benchmark.extra_info["severed"] = section["severed"]
    benchmark.extra_info["promote_p99_us"] = round(
        (section["promote_us"] or {}).get("p99", 0.0), 1)
