"""Figure 10: all uses of n, via the C browser.

"Uses creates a new window with all references to the variable n ...
indicated by file name and line number.  If instead I had run the
regular Unix command grep n /usr/rob/src/help/*.c I would have had to
wade through every occurrence of the letter n in the program."
"""

from repro.tools.corpus import SRC_DIR

EXPECTED = "./dat.h:136\nexec.c:213\nexec.c:252\nhelp.c:35\n"


def test_fig10_uses(system, benchmark, screenshot):
    h = system.help
    exec_w = h.open_path(f"{SRC_DIR}/exec.c", line=252)
    cbr_stf = h.window_by_name("/help/cbr/stf")
    start = exec_w.body.pos_of_line(252)
    n_pos = exec_w.body.string().index("errs(n)", start) + 5

    def scenario():
        for w in list(h.windows.values()):
            if w.name() == f"{SRC_DIR}/" and "dat.h:136" in w.body.string():
                h.close_window(w)
        h.point_at(exec_w, n_pos)
        h.execute_text(cbr_stf, "uses *.c")
        return next(w for w in h.windows.values()
                    if w.name() == f"{SRC_DIR}/"
                    and "dat.h:136" in w.body.string())

    uses_w = benchmark(scenario)
    assert uses_w.body.string() == EXPECTED
    screenshot("fig10_uses", h)


def test_fig10_via_cbr_tool(system):
    h = system.help
    exec_w = h.open_path(f"{SRC_DIR}/exec.c", line=252)
    start = exec_w.body.pos_of_line(252)
    h.point_at(exec_w, exec_w.body.string().index("errs(n)", start) + 5)
    h.execute_text(h.window_by_name("/help/cbr/stf"), "uses *.c")
    uses_w = next(w for w in h.windows.values()
                  if w.name() == f"{SRC_DIR}/"
                  and "dat.h:136" in w.body.string())
    assert uses_w.body.string() == EXPECTED


def test_fig10_grep_floods(system):
    """The baseline comparison the paper makes explicitly."""
    shell = system.shell(SRC_DIR)
    grep = shell.run(f"grep -c n {SRC_DIR}/*.c")
    total = sum(int(line.rsplit(":", 1)[1])
                for line in grep.stdout.splitlines())
    uses_count = len(EXPECTED.splitlines())
    assert uses_count == 4
    assert total > 40, "grep must drown the user to make the point"
    # the shape claim: an order of magnitude more noise
    assert total / uses_count > 10


def test_fig10_local_n_excluded(system):
    """findopen1's local n must not appear — scoping, not string match."""
    assert "findopen1" in system.ns.read(f"{SRC_DIR}/exec.c")
    # the local n is used inside findopen1 at several lines; none are
    # in the uses window (EXPECTED already proves it, but point at one)
    from repro.cbrowse import parse_program
    program = parse_program(system.ns, system.ns.glob(f"{SRC_DIR}/*.c"),
                            base_dir=SRC_DIR)
    local_uses = [u for u in program.uses
                  if u.name == "n" and u.decl is not None
                  and u.decl.kind == "local"]
    assert local_uses, "the corpus has local n uses"
    global_locations = {u.location for u in program.uses_of("n", "exec.c", 252)}
    assert not any(u.location in global_locations for u in local_uses)
