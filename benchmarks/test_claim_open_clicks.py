"""Claim C4: two clicks open a pointed-at file, vs retyping its name.

"by pointing at dat.h in the source file ... and executing Open, a
new window is created ...: two button clicks" and "it should never be
necessary or even worthwhile to retype text that is already on the
screen."
"""

from repro import build_system
from repro.metrics.baseline import open_file_by_pointing
from repro.tools.corpus import SRC_DIR
from repro.testing import Session


def test_claim_open_two_clicks(benchmark):
    def scenario():
        session = Session(build_system(width=160, height=60))
        h = session.help
        src_w = h.open_path(f"{SRC_DIR}/help.c")
        edit_stf = session.window("/help/edit/stf")
        h.stats.reset()
        session.point_at(src_w, "dat.h", offset=2)
        session.execute(edit_stf, "Open")
        return h.stats.button_presses, h.window_by_name(f"{SRC_DIR}/dat.h")

    presses, window = benchmark(scenario)
    assert presses == 2
    assert window is not None
    print(f"\n[C4] opened dat.h in {presses} clicks")


def test_claim_open_klm_vs_retyping():
    ours, baseline = open_file_by_pointing(f"{SRC_DIR}/dat.h")
    print(f"\n[C4-KLM] {ours.report()}  vs  {baseline.report()}"
          f"  -> {baseline.seconds / ours.seconds:.1f}x")
    assert ours.keystrokes == 0
    assert baseline.keystrokes == len(f":e {SRC_DIR}/dat.h\n")
    assert ours.seconds < baseline.seconds


def test_claim_no_retyping_rule(benchmark):
    """Any text on screen is executable/openable — even in the Errors
    window or a freshly typed scratch area."""
    system = build_system(width=160, height=60)
    h = system.help

    def scenario():
        h.post_error(f"look at {SRC_DIR}/errs.c please\n")
        errors = h.window_by_name("Errors")
        pos = errors.body.string().index("errs.c") + 2
        h.point_at(errors, pos)
        h.exec_builtin("Open", errors)
        return h.window_by_name(f"{SRC_DIR}/errs.c")

    window = benchmark(scenario)
    assert window is not None
