"""P3: window placement and screen management throughput."""

from repro.core.column import Column
from repro.core.frame import Rect
from repro.core.screen import Screen
from repro.core.window import Window


def test_perf_place_many(benchmark):
    def churn():
        column = Column(Rect(0, 1, 60, 61))
        for i in range(200):
            column.place(Window(i, f"/w{i}", "line\n" * (i % 20)))
        return len(column.windows)

    assert benchmark(churn) == 200


def test_perf_place_and_close(benchmark):
    def churn():
        column = Column(Rect(0, 1, 60, 41))
        windows = []
        for i in range(300):
            w = Window(i, f"/w{i}", "x\n" * 10)
            column.place(w)
            windows.append(w)
            if len(windows) > 6:
                column.remove(windows.pop(0))
        return len(column.visible())

    assert benchmark(churn) > 0


def test_perf_hit_testing(benchmark):
    screen = Screen(160, 60)
    for i in range(12):
        screen.columns[i % 2].place(Window(i, f"/w{i}", "text\n" * 8))

    def sweep_pointer():
        regions = 0
        for y in range(0, 60, 2):
            for x in range(0, 160, 5):
                hit = screen.hit(x, y)
                regions += hit.region is not None
        return regions

    assert benchmark(sweep_pointer) == 30 * 32


def test_perf_window_moves(benchmark):
    def drags():
        screen = Screen(160, 60)
        windows = [Window(i, f"/w{i}", "b\n" * 6) for i in range(10)]
        for i, w in enumerate(windows):
            screen.columns[i % 2].place(w)
        for step in range(100):
            w = windows[step % len(windows)]
            screen.move_window(w, (step * 13) % 160, 1 + (step * 7) % 58)
        return sum(len(c.windows) for c in screen.columns)

    assert benchmark(drags) == 10
