"""Claim C10: the inverted builder (the paper's future-work proposal).

"What's needed for help is almost the opposite [of make]: a tool
that, perhaps by examining the index file, sees what source files
have been modified and builds the targets that depend on them."
"""

from repro import build_system
from repro.tools.corpus import SRC_DIR


def test_claim_inverted_mk_from_index(benchmark):
    """Dirty window -> Put! in the index -> imk rebuilds its targets."""
    system = build_system()
    h = system.help
    shell = system.shell(SRC_DIR)
    shell.run("mk")  # everything up to date

    exec_w = h.open_path(f"{SRC_DIR}/exec.c")

    def scenario():
        exec_w.body.insert(0, "/* touched */\n")
        exec_w.mark_dirty()
        # no Put! — imk writes the dirty window out itself, through
        # /mnt/help, then builds what depends on it
        result = shell.run("imk")
        return result

    result = benchmark(scenario)
    assert result.status == 0
    assert "vc -w exec.c" in result.stdout
    assert "vc -w text.c" not in result.stdout
    assert "vl -o help" in result.stdout
    assert not exec_w.dirty, "imk cleaned the window after writing it"
    assert "/* touched */" in system.ns.read(f"{SRC_DIR}/exec.c")


def test_claim_inverted_mk_nothing_dirty():
    system = build_system()
    shell = system.shell(SRC_DIR)
    shell.run("mk")
    result = shell.run("imk")
    assert "nothing modified" in result.stdout


def test_claim_inverted_equals_forward(benchmark):
    """Inverted and forward mk converge on the same final state."""
    system = build_system()
    shell = system.shell(SRC_DIR)
    shell.run("mk")

    def scenario():
        shell.run("touch errs.c")
        inverted = shell.run("imk errs.c").stdout
        # forward mk afterwards finds nothing left to do
        forward = shell.run("mk").stdout
        return inverted, forward

    inverted, forward = benchmark(scenario)
    assert "vc -w errs.c" in inverted
    assert "nothing to do" in forward


def test_claim_inverted_scales_with_change_not_project(benchmark, save_artifact):
    """The cost driver is how much changed, not how big the project is."""
    system = build_system()
    ns = system.ns
    ns.mkdir("/big", parents=True)
    n_files = 40
    objs = " ".join(f"m{i}.v" for i in range(n_files))
    rules = [f"OBJS={objs}", "", "prog: $OBJS", "\tvl -o prog $OBJS", "",
             "%.v: %.c", "\tvc -w $stem.c"]
    ns.write("/big/mkfile", "\n".join(rules) + "\n")
    for i in range(n_files):
        ns.write(f"/big/m{i}.c", f"int m{i};\n")
    shell = system.shell("/big")
    shell.run("mk")

    def one_change():
        shell.run("touch m7.c")
        return shell.run("imk m7.c").stdout

    log = benchmark(one_change)
    compiles = log.count("vc -w")
    save_artifact("claim_inverted_mk",
                  f"project files: {n_files}\n"
                  f"changed: 1\ncompiles run: {compiles}\n")
    assert compiles == 1
