"""P4: end-to-end event dispatch latency.

"What matters much more to a user interface is that it feel good ...
dynamic and responsive."  These benches time the full pipeline from
raw mouse event to applied effect.
"""

from repro import build_system
from repro.core.events import Button


def make_session():
    system = build_system(width=160, height=60)
    h = system.help
    w = h.new_window("/tmp/bench", "word " * 200 + "\n")
    column = h.screen.column_of(w)
    rect = column.win_rect(w)
    return h, w, column.body_x0, rect.y0 + 1


def test_perf_selection_sweeps(benchmark):
    h, w, x0, y0 = make_session()

    def sweeps():
        for i in range(50):
            h.sweep(x0, y0, x0 + 20 + (i % 10), y0)
        return h.selected_text()

    assert benchmark(sweeps)


def test_perf_click_select_word(benchmark):
    h, w, x0, y0 = make_session()

    def clicks():
        for i in range(50):
            h.left_click(x0 + (i % 30), y0)
        return w.body_sel.q0

    benchmark(clicks)


def test_perf_execute_builtin_roundtrip(benchmark):
    h, w, x0, y0 = make_session()
    w.replace_body("alpha beta Cut gamma\n")
    cut_x = x0 + w.body.string().index("Cut") + 1

    def cut_paste():
        h.sweep(x0, y0, x0 + 5, y0)
        h.middle_click(cut_x, y0)
        h.left_click(x0, y0)
        h.exec_builtin("Paste", w)
        return w.body.string()

    benchmark(cut_paste)


def test_perf_typing_burst(benchmark):
    h, w, x0, y0 = make_session()
    h.mouse_move(x0, y0)

    def burst():
        w.replace_body("")
        h.mouse_move(x0, y0)
        h.left_click(x0, y0)
        for ch in "the quick brown fox jumps over the lazy dog\n" * 5:
            h.type_text(ch)
        return len(w.body)

    assert benchmark(burst) == len("the quick brown fox jumps over the lazy dog\n") * 5


def test_perf_chord_cut_paste(benchmark):
    h, w, x0, y0 = make_session()

    def chords():
        w.replace_body("snarf target text")
        h.mouse_press(x0, y0, Button.LEFT)
        h.mouse_drag(x0 + 5, y0)
        h.mouse_press(x0 + 5, y0, Button.MIDDLE)
        h.mouse_release(x0 + 5, y0, Button.MIDDLE)
        h.mouse_press(x0 + 5, y0, Button.RIGHT)
        h.mouse_release(x0 + 5, y0, Button.RIGHT)
        h.mouse_release(x0 + 5, y0, Button.LEFT)
        return w.body.string()

    assert benchmark(chords) == "snarf target text"
