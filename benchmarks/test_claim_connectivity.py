"""Claim: "after a few minutes the screen is filled with active data".

"As each new window is created, however, it is filled with text that
points to new and old text, and a kind of exponential connectivity
results.  Compare Figure 4 to Figure 11 to see snapshots of this
process in action."

We make the comparison quantitative: a *live reference* is a token on
a visible window that help can act on — a name resolving (through the
window's context) to an existing file, optionally with a line number.
The demo is replayed and the live-reference count is sampled at each
figure.
"""

import re

from repro import build_system
from repro.core.selection import parse_address, resolve_name
from repro.tools.corpus import SRC_DIR

_TOKEN = re.compile(r"[A-Za-z0-9_\-./+]+(?::\d+)?")


def live_references(system):
    """Count actionable file references visible on screen."""
    h = system.help
    count = 0
    for window in h.windows.values():
        column = h.screen.column_of(window)
        if column is None or column.win_rect(window) is None:
            continue
        context = window.directory()
        frame = column.body_frame(window)
        if frame is None:
            continue
        org, end = frame.visible_span(window.body.string(), window.org)
        visible = window.body.slice(org, end)
        for token in _TOKEN.findall(visible):
            address = parse_address(token)
            if not address.name or address.name in (".", ".."):
                continue
            path = resolve_name(address.name, context)
            if system.ns.exists(path) and not system.ns.isdir(path):
                count += 1
    return count


def replay_demo_sampling(system):
    h = system.help
    samples = {"fig4-boot": live_references(system)}
    h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
    mbox = h.window_by_name("/mail/box/rob/mbox")
    samples["fig5-headers"] = live_references(system)
    h.point_at(mbox, mbox.body.string().index("sean"))
    h.execute_text(h.window_by_name("/help/mail/stf"), "messages")
    msg = h.window_by_name("From")
    h.point_at(msg, msg.body.string().index("176153"))
    h.execute_text(h.window_by_name("/help/db/stf"), "stack")
    samples["fig7-stack"] = live_references(system)
    stack = h.window_by_name(f"{SRC_DIR}/")
    h.point_at(stack, stack.body.string().index("exec.c:252") + 2)
    h.exec_builtin("Open", stack)
    exec_w = h.window_by_name(f"{SRC_DIR}/exec.c")
    start = exec_w.body.pos_of_line(252)
    h.point_at(exec_w, exec_w.body.string().index("errs(n)", start) + 5)
    h.execute_text(h.window_by_name("/help/cbr/stf"), "uses *.c")
    samples["fig10-uses"] = live_references(system)
    return samples


def test_claim_connectivity(benchmark, save_artifact):
    def scenario():
        return replay_demo_sampling(build_system(width=160, height=60))

    samples = benchmark(scenario)
    rows = [f"{stage:14s} {count:5d} live references"
            for stage, count in samples.items()]
    save_artifact("claim_connectivity", "\n".join(rows) + "\n")
    print("\n" + "\n".join(rows))

    # connectivity grows at every sampled figure... (the boot screen
    # already starts "live": the tool words resolve in their contexts)
    values = list(samples.values())
    assert values == sorted(values)
    # ...and substantially: the stack trace and the uses window fill
    # the screen with pointers into the sources
    assert values[-1] >= values[0] + 10
    assert values[-1] >= 1.5 * max(1, values[0])


def test_links_form_automatically():
    """"in help, the links form automatically and are
    context-dependent" — the same token is live or dead depending on
    the window it appears in."""
    system = build_system()
    h = system.help
    in_context = h.new_window(f"{SRC_DIR}/", "dat.h\n")
    out_of_context = h.new_window("/tmp/notes", "dat.h\n")
    # same text, different contexts: one resolves, one does not
    assert system.ns.exists(f"{SRC_DIR}/dat.h")
    assert not system.ns.exists("/tmp/dat.h")
    h.point_at(in_context, 2)
    h.exec_builtin("Open", in_context)
    assert h.window_by_name(f"{SRC_DIR}/dat.h") is not None
    h.point_at(out_of_context, 2)
    h.exec_builtin("Open", out_of_context)
    assert "'/tmp/dat.h' does not exist" in \
        h.window_by_name("Errors").body.string()
