"""Figure 1: a help screen mid-session.

"The directory /usr/rob/src/help has been Opened and, from there, the
source files .../errs.c and file.c" — two columns, a directory window
with a trailing slash in its tag, tabs down the column edges.
"""

from repro.tools.corpus import SRC_DIR


def build_figure(system):
    h = system.help
    dir_w = h.open_path(SRC_DIR)
    # open errs.c and file.c by pointing into the directory listing
    for name in ("errs.c", "file.c"):
        pos = dir_w.body.string().index(name) + 1
        h.point_at(dir_w, pos)
        h.exec_builtin("Open", dir_w)
    return h


def test_fig01_midsession(system, benchmark, screenshot):
    h = benchmark(lambda: build_figure(system))
    shot = screenshot("fig01_midsession", h)
    assert f"[{SRC_DIR}/ " in shot            # directory window, slashed tag
    assert f"{SRC_DIR}/errs.c" in shot
    assert f"{SRC_DIR}/file.c" in shot
    assert shot.splitlines()[0].count("#") == 2  # two columns


def test_fig01_directory_listing_contents(system):
    h = build_figure(system)
    dir_w = h.window_by_name(f"{SRC_DIR}/")
    listing = dir_w.body.string().splitlines()
    assert "errs.c" in listing
    assert "file.c" in listing
    assert "mkfile" in listing
    assert listing == sorted(listing)
