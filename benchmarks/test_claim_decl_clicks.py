"""Claim C3: three button clicks fetch a declaration to the screen.

"Thus with only three button clicks one may fetch to the screen the
declaration, from whatever file in which it resides, of a variable,
function, type, or any other C object."  Compared against a typed
grep-and-open workflow via the KLM.
"""

from repro import build_system
from repro.metrics.baseline import fetch_declaration
from repro.tools.corpus import SRC_DIR
from repro.testing import Session


def test_claim_decl_three_clicks(benchmark):
    def scenario():
        session = Session(build_system(width=160, height=60))
        h = session.help
        exec_w = h.open_path(f"{SRC_DIR}/exec.c", line=252)
        cbr_stf = session.window("/help/cbr/stf")
        start = exec_w.body.pos_of_line(252)
        n_off = exec_w.body.string().index("errs(n)", start) + 5
        h.stats.reset()
        h.left_click(*session.cell_of(exec_w, n_off))   # 1: point
        session.execute(cbr_stf, "src")                 # 2: src (closed loop)
        return h.stats.button_presses, h.window_by_name(f"{SRC_DIR}/dat.h")

    presses, dat_w = benchmark(scenario)
    # src closes the loop, so the declaration is on screen in TWO
    # clicks; the paper's decl+point+Open route costs three.
    assert presses == 2
    assert dat_w is not None
    assert dat_w.body.line_of(dat_w.org) == 136
    print(f"\n[C3] declaration on screen in {presses} clicks via src "
          "(paper's decl route: 3)")


def test_claim_decl_route_is_three(benchmark):
    session = Session(build_system(width=160, height=60))
    h = session.help
    exec_w = h.open_path(f"{SRC_DIR}/exec.c", line=252)
    cbr_stf = session.window("/help/cbr/stf")
    edit_stf = session.window("/help/edit/stf")
    start = exec_w.body.pos_of_line(252)
    n_off = exec_w.body.string().index("errs(n)", start) + 5
    h.stats.reset()
    h.left_click(*session.cell_of(exec_w, n_off))        # 1
    session.execute(cbr_stf, "decl")                     # 2
    decl_w = next(w for w in session.windows(f"{SRC_DIR}/")
                  if "dat.h:136" in w.body.string())
    session.point_at(decl_w, "dat.h:136", offset=1)      # 3
    assert h.stats.button_presses == 3
    session.execute(edit_stf, "Open")
    assert h.window_by_name(f"{SRC_DIR}/dat.h") is not None

    def noop():
        return True
    benchmark(noop)


def test_claim_decl_klm_comparison():
    ours, baseline = fetch_declaration()
    print(f"\n[C3-KLM] {ours.report()}  vs  {baseline.report()}"
          f"  -> {baseline.seconds / ours.seconds:.1f}x")
    assert ours.clicks == 3
    assert ours.keystrokes == 0
    assert baseline.keystrokes > 20
    assert ours.seconds < baseline.seconds
