"""Journal overhead: write-ahead logging, replay, and recovery timed.

Three closed loops, each keeping the journal ledger balanced inside
the measured callable (every record appended durably is scanned back
by the same iteration), so ``journal.append.records ==
journal.replay.records`` and zero checksum failures hold across the
whole bench run — the invariants ``repro.tools.benchgate`` audits.

- **roundtrip**: record the Figure 7 walkthrough with a live journal,
  then scan + replay it into a fresh system — the full record/replay
  discipline, end to end;
- **recovery**: record with periodic compaction, then recover a fresh
  session from the snapshot + suffix (the crash path minus the crash:
  fault injection belongs to the fault matrix, never to benchmarks);
- **append**: shadow-journal append throughput, isolating the record
  encode + checksum cost from any sink.
"""

from repro.core.render import render_screen
from repro.journal import Journal, attach
from repro.journal.recovery import recover
from repro.tools.install import build_system
from repro.tools.replaycheck import record_figure, replay_journal
from repro.tools.servecheck import fig07_stack

N_APPENDS = 1000


def test_perf_journal_roundtrip(benchmark):
    def roundtrip():
        recorded, text = record_figure(fig07_stack)
        replayed, shadow, scan = replay_journal(text)
        return (render_screen(recorded.help) == render_screen(replayed.help),
                len(scan.records))

    identical, records = benchmark(roundtrip)
    assert identical
    assert records > 0
    benchmark.extra_info["records"] = records


def test_perf_journal_recovery(benchmark):
    def recover_session():
        system = build_system(width=160, height=60)
        journal = Journal.create(system.ns, "/usr/rob/help.journal")
        attach(system.help, journal, ns=system.ns, snapshot_every=3)
        fig07_stack(system)
        text = system.ns.read("/usr/rob/help.journal")
        fresh = build_system(width=160, height=60)
        report = recover(fresh.help, text)
        return (render_screen(system.help, full=True)
                == render_screen(fresh.help, full=True),
                report.snapshot_seq)

    identical, snapshot_seq = benchmark(recover_session)
    assert identical
    assert snapshot_seq is not None   # compaction really ran


def test_perf_journal_append(benchmark):
    def appends():
        journal = Journal()   # shadow: pure record encode + checksum
        for i in range(N_APPENDS):
            journal.append("type", (f"word {i}\n",))
        return journal.seq

    seq = benchmark(appends)
    assert seq == N_APPENDS
