"""Claim C8: shell scripts drive the UI through /mnt/help.

The paper's literal examples: ``cp /mnt/help/7/body file`` and
``grep pattern /mnt/help/7/body``, plus the index file.
"""

from repro import build_system


def test_claim_cp_body(benchmark):
    system = build_system()
    h = system.help
    w = h.new_window("/tmp/seven", "the quick brown fox\n" * 20)
    shell = system.shell()

    def scenario():
        result = shell.run(f"cp /mnt/help/{w.id}/body /tmp/copy")
        assert result.status == 0
        return system.ns.read("/tmp/copy")

    copied = benchmark(scenario)
    assert copied == w.body.string()


def test_claim_grep_body(benchmark):
    system = build_system()
    h = system.help
    w = h.new_window("/tmp/seven",
                     "".join(f"entry {i}\n" for i in range(50)) + "needle\n")
    shell = system.shell()

    result = benchmark(lambda: shell.run(f"grep needle /mnt/help/{w.id}/body"))
    assert result.stdout == "needle\n"
    assert result.status == 0


def test_claim_index_file(benchmark):
    """'An ASCII file /mnt/help/index may be examined to connect tag
    file names to window numbers.'"""
    system = build_system()
    h = system.help
    windows = [h.new_window(f"/tmp/f{i}", "x") for i in range(10)]
    shell = system.shell()

    index = benchmark(lambda: shell.run("cat /mnt/help/index").stdout)
    for w in windows:
        assert f"{w.id}\t/tmp/f{w.id - 0}" in index or \
            any(line.startswith(f"{w.id}\t") for line in index.splitlines())
    line = next(ln for ln in index.splitlines()
                if ln.startswith(f"{windows[0].id}\t"))
    number, tag = line.split("\t", 1)
    assert int(number) == windows[0].id
    assert tag == windows[0].tag.string().split("\n")[0]


def test_claim_ctl_editing_from_script(benchmark):
    system = build_system()
    h = system.help
    w = h.new_window("/tmp/doc", "hello world")
    shell = system.shell()

    def scenario():
        w.replace_body("hello world")
        shell.run(f"echo 'replace 0 5 goodbye' > /mnt/help/{w.id}/ctl")
        return w.body.string()

    assert benchmark(scenario) == "goodbye world"
