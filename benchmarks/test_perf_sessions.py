"""P7: session hosting throughput — K isolated worlds in one process.

The tentpole claim of the session layer is that hosting N fully
isolated help sessions (own namespace, ledger, journal) behind one
wire server costs little more than running one: attach fans out,
input records apply concurrently, and teardown retires cleanly.
These benches put numbers behind that and feed the ``sessions``
section of ``BENCH_perf.json``: per-record apply latency histograms
(``session.apply_us``) plus the host ledger
(``host.sessions.opened/closed/bleed``) that
:mod:`repro.tools.benchgate` audits for balance and zero bleed.
"""

import threading

from repro.fs.mux import MuxClient, dial, mount_remote
from repro.fs.namespace import Namespace
from repro.fs.vfs import VFS
from repro.serve import SessionHost, input_line

SESSIONS = 6        # concurrent hosted sessions (acceptance floor is 4)
RECORDS = 12        # input records each session applies per iteration

_SCRIPT = "".join(
    input_line("newwin", ("-", "-", "-", f"/tmp/note{i}",
                          f"session bench body line {i}\n"))
    for i in range(RECORDS))


def _drive(host, addr, name):
    channel = dial(*addr) if addr is not None else host.pipe()
    client = MuxClient(channel, aname=name)
    try:
        ns = Namespace(VFS())
        ns.mkdir("/s", parents=True)
        ns.mount(mount_remote(client), "/s")
        ns.append("/s/input", _SCRIPT)
        return ns.read("/s/screen")
    finally:
        client.close()


def test_perf_session_host_concurrent_replay(benchmark):
    """K sessions attach, replay, render and retire — all at once.

    Journaling is off: the benchgate invariant ``journal.append.records
    == journal.replay.records + journal.compact.dropped`` belongs to
    the journal benches' closed record/replay loop, and a hosted
    session appends without ever replaying.  Write-ahead costs are
    measured in test_perf_journal.py.
    """
    host = SessionHost(width=160, height=60, workers=SESSIONS,
                       record=False)
    addr = host.listen()
    epoch = [0]
    try:
        def storm() -> int:
            epoch[0] += 1
            failures: list[BaseException] = []

            def one(idx: int) -> None:
                try:
                    screen = _drive(host, addr, f"e{epoch[0]}.w{idx}")
                    assert f"line {RECORDS - 1}" in screen
                except BaseException as exc:  # noqa: BLE001 - reraised
                    failures.append(exc)

            threads = [threading.Thread(target=one, args=(i,))
                       for i in range(SESSIONS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if failures:
                raise failures[0]
            return SESSIONS * RECORDS

        applied = benchmark(storm)
        assert applied == SESSIONS * RECORDS
    finally:
        host.close()
    assert host.audit() == []
    host.drain()  # the complete cross-session ledger -> BENCH_perf.json
    benchmark.extra_info["sessions"] = SESSIONS
    benchmark.extra_info["records_per_session"] = RECORDS
    median = benchmark.stats.stats.median if benchmark.stats else None
    if median:
        benchmark.extra_info["records_per_sec"] = round(applied / median, 1)


def test_perf_session_attach_teardown(benchmark):
    """The cost of one whole session lifecycle: attach, apply, retire."""
    host = SessionHost(width=160, height=60, record=False)
    serial = [0]
    try:
        def lifecycle() -> str:
            serial[0] += 1
            return _drive(host, None, f"solo{serial[0]}")

        screen = benchmark(lifecycle)
        assert "session bench body" in screen
    finally:
        host.close()
    assert host.audit() == []
    host.drain()
