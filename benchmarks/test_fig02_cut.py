"""Figure 2: executing Cut by sweeping the word with the middle button.

The profile window is on screen; text is selected with the left
button, then the word Cut is swept with the middle button and the
selection disappears into the cut buffer.
"""


def test_fig02_cut(system, benchmark, screenshot):
    h = system.help
    profile_w = h.open_path("/usr/rob/lib/profile")
    edit_stf = h.window_by_name("/help/edit/stf")

    target = "bind -a $home/bin/rc /bin\n"
    start = profile_w.body.string().index(target)

    def cut_and_restore():
        h.select(profile_w, start, start + len(target))
        h.exec_builtin("Cut", edit_stf)
        removed = h.snarf
        h.point_at(profile_w, start)
        h.exec_builtin("Paste", edit_stf)
        return removed

    removed = benchmark(cut_and_restore)
    assert removed == target
    shot = screenshot("fig02_cut", h)
    assert "/usr/rob/lib/profile" in shot


def test_fig02_cut_is_a_word_not_a_button(system):
    """Cut works from any window where the word appears."""
    h = system.help
    w = h.new_window("/tmp/victim", "delete me please")
    other = h.new_window("/tmp/elsewhere", "you can Cut from here")
    h.select(w, 0, 9)
    h.exec_builtin("Cut", other)
    assert w.body.string() == " please"
    assert h.snarf == "delete me"
