"""Claim C6: the placement heuristic keeps tags visible.

"Help attempts to make at least the tag of a window fully visible; if
this is impossible, it covers the window completely" — and the
Discussion's three-rule procedure "is good enough that I haven't been
encouraged to refine it any further."  We hammer it with randomized
workloads and verify the guarantee never breaks.
"""

import random

from repro.core.column import Column
from repro.core.frame import Rect
from repro.core.window import Window


def random_workload(seed: int, height: int = 40, n: int = 40):
    rng = random.Random(seed)
    column = Column(Rect(0, 1, 50, 1 + height))
    windows = []
    for i in range(n):
        body = "".join(f"line {j}\n" for j in range(rng.randrange(0, 50)))
        window = Window(i, f"/w{i}", body)
        column.place(window)
        windows.append(window)
        if windows and rng.random() < 0.3:
            victim = rng.choice(windows)
            if victim in column.windows:
                column.remove(victim)
                windows.remove(victim)
        if windows and rng.random() < 0.2:
            column.make_visible(rng.choice([w for w in windows
                                            if w in column.windows]))
    return column


def check_invariants(column):
    prev_bottom = None
    for window in column.visible():
        rect = column.win_rect(window)
        assert rect is not None
        assert rect.height >= 1, "tag row must be visible"
        assert column.rect.y0 <= rect.y0 < column.rect.y1
        if prev_bottom is not None:
            assert rect.y0 == prev_bottom, "extents must tile"
        prev_bottom = rect.y1
    if column.visible():
        assert prev_bottom == column.rect.y1


def test_claim_placement_invariants(benchmark):
    def hammer():
        for seed in range(25):
            column = random_workload(seed)
            check_invariants(column)
        return True

    assert benchmark(hammer)


def test_claim_new_window_always_lands_visible(benchmark):
    """The freshly placed window is never hidden, whatever the state."""
    def hammer():
        rng = random.Random(4)
        column = Column(Rect(0, 1, 50, 13))  # a tiny column
        for i in range(120):
            window = Window(i, f"/w{i}",
                            "".join(f"l{j}\n" for j in range(rng.randrange(30))))
            column.place(window)
            assert not window.hidden
            rect = column.win_rect(window)
            assert rect is not None and rect.height >= 1
        return True

    assert benchmark(hammer)


def test_claim_tag_visible_or_covered_completely(benchmark, save_artifact):
    """Census over many seeds: every window is either showing its tag
    or fully hidden — there is no in-between state."""
    def census():
        shown = hidden = 0
        for seed in range(40):
            column = random_workload(seed, height=20, n=25)
            for window in column.windows:
                if window.hidden:
                    hidden += 1
                    assert column.win_rect(window) is None
                else:
                    shown += 1
                    assert column.win_rect(window).height >= 1
        return shown, hidden

    shown, hidden = benchmark(census)
    save_artifact("claim_placement",
                  f"windows shown: {shown}\nwindows covered: {hidden}\n"
                  "in-between states: 0\n")
    assert shown > 0 and hidden > 0
