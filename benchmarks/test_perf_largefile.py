"""The "ability to handle large files gracefully" (Discussion).

The paper lists large files among the features the rewrite needs.
These benches open a ~1 MB file and verify editing, scrolling, and
the file-server path all stay interactive.
"""

import pytest

from repro import build_system, render_screen

LINES = 20_000
BIG = "".join(f"line {i}: the quick brown fox jumps over the dog\n"
              for i in range(LINES))  # ~1 MB


@pytest.fixture(scope="module")
def big_system():
    system = build_system(width=120, height=48)
    system.ns.write("/big.txt", BIG)
    return system


def test_perf_open_large_file(big_system, benchmark):
    h = big_system.help

    def open_it():
        existing = h.window_by_name("/big.txt")
        if existing is not None:
            h.close_window(existing)
        return h.open_path("/big.txt")

    window = benchmark(open_it)
    assert len(window.body) == len(BIG)


def test_perf_jump_to_deep_line(big_system, benchmark):
    h = big_system.help
    window = h.open_path("/big.txt")

    def jump():
        window.show_line(LINES - 5)
        return window.body.slice(window.body_sel.q0, window.body_sel.q1)

    selected = benchmark(jump)
    assert selected.startswith(f"line {LINES - 5 - 1}:")


def test_perf_edit_deep_in_large_file(big_system, benchmark):
    h = big_system.help
    window = h.open_path("/big.txt")
    middle = len(BIG) // 2

    def edits():
        for _ in range(20):
            window.body.insert(middle, "x")
        for _ in range(20):
            window.body.delete(middle, middle + 1)
        return len(window.body)

    assert benchmark(edits) == len(BIG)


def test_perf_scroll_through_large_file(big_system, benchmark):
    h = big_system.help
    window = h.open_path("/big.txt")
    h.screen.column_of(window)  # warm the layout before timing

    def page_down_up():
        window.org = 0
        for _ in range(30):
            h.scroll(window, 40)
        reached = window.org
        for _ in range(30):
            h.scroll(window, -40)
        return reached, window.org

    reached, back = benchmark(page_down_up)
    assert reached > 0
    assert back == 0


def test_perf_large_body_through_fileserver(big_system, benchmark):
    h = big_system.help
    window = h.open_path("/big.txt")

    data = benchmark(
        lambda: big_system.ns.read(f"/mnt/help/{window.id}/body"))
    assert len(data) == len(BIG)


def test_perf_type_and_render(big_system, benchmark):
    """The interactive loop itself: keystroke in, repainted screen out.

    Every keystroke must reach the glass without laying the megabyte
    body out from scratch — this is the path the incremental display
    pipeline (newline index + layout cache + damage-tracked canvas)
    exists for.  Each round types 30 characters and undoes all 30,
    rendering after every event, so the body is unchanged between
    rounds.
    """
    h = big_system.help
    window = h.open_path("/big.txt")
    h.make_visible(window)
    column = h.screen.column_of(window)
    rect = column.win_rect(window)
    x, y = column.body_x0 + 2, rect.y0 + 1

    def type_and_render():
        h.mouse_move(x, y)
        for _ in range(30):
            h.type_text("x")
            render_screen(h)
        for _ in range(30):
            window.body.undo()
            render_screen(h)
        return len(window.body)

    assert benchmark(type_and_render) == len(BIG)
