"""Claim C9: window creation through /mnt/help/new/ctl.

"To create a new window, a process just opens /mnt/help/new/ctl,
which places the new window automatically on the screen near the
current selected text, and may then read from that file the name of
the window created ... The position and size of the new window is
chosen by help."
"""

from repro import build_system


def test_claim_newctl(benchmark):
    system = build_system()
    shell = system.shell()

    def scenario():
        out = shell.run("cat /mnt/help/new/ctl").stdout
        return int(out.strip())

    wid = benchmark(scenario)
    assert wid in system.help.windows


def test_claim_new_window_near_selection():
    system = build_system(width=160, height=60)
    h = system.help
    left, right = h.screen.columns
    anchor_left = h.new_window("/tmp/a", "text", column=left)
    anchor_right = h.new_window("/tmp/b", "text", column=right)
    shell = system.shell()

    h.select(anchor_left, 0, 2)
    wid = int(shell.run("cat /mnt/help/new/ctl").stdout.strip())
    assert h.screen.column_of(h.windows[wid]) is left

    h.select(anchor_right, 0, 2)
    wid = int(shell.run("cat /mnt/help/new/ctl").stdout.strip())
    assert h.screen.column_of(h.windows[wid]) is right


def test_claim_position_chosen_by_help():
    """The creating process never says where; the heuristic does."""
    system = build_system(width=160, height=60)
    shell = system.shell()
    created = []
    for _ in range(5):
        wid = int(shell.run("cat /mnt/help/new/ctl").stdout.strip())
        window = system.help.windows[wid]
        column = system.help.screen.column_of(window)
        rect = column.win_rect(window)
        assert rect is not None and rect.height >= 1
        created.append(window)
    ys = [w.y for w in created]
    assert ys == sorted(ys), "each lands below the last (rule 1)"


def test_claim_script_builds_whole_window(benchmark):
    """The decl-script skeleton, timed end to end."""
    system = build_system()
    shell = system.shell()
    script = """x=`{cat /mnt/help/new/ctl}
{
\techo tag /tmp/out Close!
} | help/buf > /mnt/help/$x/ctl
echo result line > /mnt/help/$x/bodyapp
echo $x
"""

    def scenario():
        return int(shell.run(script).stdout.strip())

    wid = benchmark(scenario)
    window = system.help.windows[wid]
    assert window.name() == "/tmp/out"
    assert window.body.string() == "result line\n"
