"""P7: sharded host throughput — N reactors behind one attach router.

One SessionHost serializes everything through one reactor; the
ShardRouter multiplies that by hashing sessions across N independent
hosts.  This bench puts the aggregate number behind the design: one
pipelined client per shard blasting windows of reads over real TCP
sockets, replies counted by frame scanning (no per-reply decode on the
hot path), the total reported as ``rpcs_per_sec`` into the ``shards``
section of ``BENCH_perf.json``.

The 100k RPC/s acceptance floor assumes a multi-core host; on a
single-core runner the honest target is the ratio — the sharded
aggregate must beat the PR 3 single-server socket figure (~9.7k
round-trip RPC/s) by >= 5x, which pipelining plus per-shard reactors
delivers even when every reactor shares one core.  Both numbers land
in ``extra_info`` so benchgate can audit the ledger either way.
"""

import threading

from repro.fs import wire
from repro.fs.mux import FrameReader, dial
from repro.serve import ShardRouter

SHARDS = 4
WINDOW = 256        # pipelined requests in flight per client
ROUNDS = 2          # windows per client per iteration

# the PR 3 acceptance figure: one WireServer, one client, synchronous
# round trips over a socket — what sharded pipelining must beat
SINGLE_SERVER_RPCS_PER_SEC = 9_700.0
AGGREGATE_FLOOR_RPCS_PER_SEC = 100_000.0  # advisory on 1-core runners


def _name_for_shard(router: ShardRouter, index: int) -> str:
    for i in range(256):
        name = f"bench{i}"
        if router.shard_for(name) == index:
            return name
    raise AssertionError(f"no bench name hashes to shard {index}")


def _count_frames(channel, buf: bytearray, want: int) -> None:
    """Consume *want* complete reply frames from *channel*."""
    got = 0
    while got < want:
        pos = 0
        n = len(buf)
        while n - pos >= 4 and got < want:
            size = int.from_bytes(buf[pos:pos + 4], "little")
            if n - pos < size:
                break
            pos += size
            got += 1
        if pos:
            del buf[:pos]
        if got < want:
            chunk = channel.recv(1 << 16)
            if not chunk:
                raise ConnectionError("server closed mid-window")
            buf += chunk


def test_perf_shards_aggregate_throughput(benchmark, report_extra):
    # workers=0: RPCs run inline on each shard's reactor — on shared
    # cores the thread handoff costs more than it buys.  record=False:
    # the benchgate append==replay+dropped invariant belongs to the
    # journal benches' closed loop, and these sessions never replay.
    router = ShardRouter(shards=SHARDS, workers=0, record=False)
    host, port = router.listen()
    channels = []
    try:
        # one pipelined client per shard, reading its session's id file
        for index in range(SHARDS):
            name = _name_for_shard(router, index)
            channel = dial(host, port)
            channels.append(channel)
            reader = FrameReader(channel)
            channel.send(wire.encode(wire.Tattach(tag=0, fid=0,
                                                  aname=name)))
            assert isinstance(reader.next_frame(), wire.Rattach)
            channel.send(wire.encode(wire.Twalk(tag=1, fid=0, newfid=1,
                                                names=["id"])))
            assert isinstance(reader.next_frame(), wire.Rwalk)
            channel.send(wire.encode(wire.Topen(tag=2, fid=1, mode="r")))
            assert isinstance(reader.next_frame(), wire.Ropen)
        blast = b"".join(
            wire.encode(wire.Tread(tag=t, fid=1, offset=0, count=-1))
            for t in range(WINDOW))
        failures: list[BaseException] = []

        def hammer(channel) -> None:
            try:
                buf = bytearray()
                for _ in range(ROUNDS):
                    channel.send(blast)
                    _count_frames(channel, buf, WINDOW)
            except BaseException as exc:  # noqa: BLE001 - reraised below
                failures.append(exc)

        def storm() -> int:
            threads = [threading.Thread(target=hammer, args=(c,))
                       for c in channels]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if failures:
                raise failures[0]
            return SHARDS * ROUNDS * WINDOW

        rpcs = benchmark(storm)
        assert rpcs == SHARDS * ROUNDS * WINDOW
    finally:
        for channel in channels:
            channel.close()
        router.close()

    # the ledger: every shard balanced, no cross-shard bleed, and the
    # whole record folded into BENCH_perf.json's counters
    assert router.audit() == []
    per_shard = []
    for index, shard in enumerate(router.hosts):
        opened, closed = shard.session_ledger()
        per_shard.append({"shard": index, "attached": opened,
                          "clunked": closed})
        assert opened == closed, f"shard {index} leaked sessions"
    router.drain()

    # deposit the ledger with the conftest too: extra_info reaches the
    # report only on timed runs, and the gate audits per_shard either way
    report_extra("shards", shards=SHARDS, sessions=SHARDS,
                 per_shard=per_shard)
    benchmark.extra_info["shards"] = SHARDS
    benchmark.extra_info["sessions"] = SHARDS
    benchmark.extra_info["per_shard"] = per_shard
    benchmark.extra_info["rpcs_per_iteration"] = rpcs
    median = benchmark.stats.stats.median if benchmark.stats else None
    if median:
        per_sec = round(rpcs / median, 1)
        benchmark.extra_info["rpcs_per_sec"] = per_sec
        benchmark.extra_info["vs_single_server"] = round(
            per_sec / SINGLE_SERVER_RPCS_PER_SEC, 2)
        benchmark.extra_info["meets_100k_floor"] = \
            per_sec >= AGGREGATE_FLOOR_RPCS_PER_SEC
        assert per_sec >= 5 * SINGLE_SERVER_RPCS_PER_SEC, (
            f"sharded aggregate {per_sec} RPC/s is not 5x the "
            f"single-server {SINGLE_SERVER_RPCS_PER_SEC}")
