"""P1: text-engine throughput.

An editor that "should be dynamic and responsive, efficient and
invisible" lives or dies by these operations: localized inserts,
scattered edits, undo, and the expansion scans behind the automatic
selection rules.
"""

import random

from repro.core.text import GapBuffer, Mark, Text

BIG = ("int n;\nvoid f(void) { n = strlen(s); }\n" * 400)  # ~15k chars


def test_perf_localized_inserts(benchmark):
    """Typing at a caret: the gap buffer's best case."""
    def typing():
        buf = GapBuffer("x" * 4000)
        pos = 2000
        for i in range(500):
            buf.insert(pos, "a")
            pos += 1
        return len(buf)

    assert benchmark(typing) == 4500


def test_perf_scattered_edits(benchmark):
    rng = random.Random(7)
    positions = [rng.randrange(0, 4000) for _ in range(300)]

    def edits():
        buf = GapBuffer("y" * 4000)
        for pos in positions:
            buf.insert(pos, "ab")
            buf.delete(pos, pos + 2)
        return buf.text()

    assert benchmark(edits) == "y" * 4000


def test_perf_undo_redo_cycle(benchmark):
    def cycle():
        text = Text("base text\n" * 50)
        for i in range(100):
            text.insert(0, f"line {i}\n")
        while text.undo():
            pass
        while text.redo():
            pass
        return text.string()

    out = benchmark(cycle)
    assert out.startswith("line 99\n")


def test_perf_marks_under_edits(benchmark):
    def run():
        text = Text("z" * 2000)
        marks = [text.add_mark(Mark(i * 20, i * 20 + 10)) for i in range(100)]
        for i in range(200):
            text.insert((i * 7) % 1500, "xy")
        return sum(m.q1 - m.q0 for m in marks)

    total = benchmark(run)
    assert total >= 100 * 10  # marks only ever grow under inserts


def test_perf_word_scans(benchmark):
    text = Text(BIG)

    def scans():
        hits = 0
        for pos in range(0, len(text), 97):
            q0, q1 = text.word_at(pos)
            hits += q1 - q0
        return hits

    assert benchmark(scans) > 0


def test_perf_line_arithmetic(benchmark):
    text = Text(BIG)

    def lines():
        total = 0
        for line in range(1, 400, 7):
            start, end = text.line_span(line)
            total += end - start
        return total

    assert benchmark(lines) > 0
