"""P2: frame layout and coordinate mapping throughput."""

from repro.core.frame import Frame

LONG_TEXT = "".join(
    f"line {i}: " + "word " * (i % 12) + "\n" for i in range(2000))


def test_perf_layout(benchmark):
    frame = Frame(80, 50)

    def layout_everywhere():
        rows = 0
        pos = 0
        while pos < len(LONG_TEXT):
            lines = frame.layout(LONG_TEXT, pos)
            rows += len(lines)
            last = lines[-1]
            pos = last.end + 1 if last.end >= pos else len(LONG_TEXT)
            if last.end >= len(LONG_TEXT) - 1:
                break
        return rows

    assert benchmark(layout_everywhere) > 0


def test_perf_point_maps(benchmark):
    frame = Frame(60, 40)

    def roundtrips():
        count = 0
        for pos in range(0, 4000, 31):
            point = frame.point_of_char(LONG_TEXT, 0, pos)
            if point is not None:
                row, col = point
                assert frame.char_of_point(LONG_TEXT, 0, row, col) == pos
                count += 1
        return count

    assert benchmark(roundtrips) > 0


def test_perf_scrolling(benchmark):
    frame = Frame(60, 40)

    def scroll_through():
        org = 0
        steps = 0
        while True:
            new_org = frame.scroll(LONG_TEXT, org, 10)
            if new_org == org or new_org >= len(LONG_TEXT):
                break
            org = new_org
            steps += 1
        while org > 0:
            org = frame.scroll(LONG_TEXT, org, -25)
            steps += 1
        return steps

    assert benchmark(scroll_through) > 0


def test_perf_render_screen(benchmark):
    from repro import build_system, render_screen

    system = build_system(width=160, height=60)
    h = system.help
    h.open_path("/usr/rob/src/help/exec.c")
    h.open_path("/usr/rob/src/help/help.c")

    shot = benchmark(lambda: render_screen(h))
    assert "exec.c" in shot
