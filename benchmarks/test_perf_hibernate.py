"""P7: hibernation soak — 10k nominal sessions in a 256-world budget.

The hibernation tentpole claims a host can serve far more *nominal*
users than it holds *resident* worlds: a detached session compacts to
a disk snapshot, its world is torn down, and the next attach wakes it
byte-identically.  This soak puts a number behind that — 10,000
sessions cycle through a host whose budget fits only ``MAX_LIVE``
worlds, then a wake-pressure wave holds more concurrent connections
than the budget allows so the LRU sweep must hibernate *connected*
sessions out from under their channels.  The ledger and the wake
latency histogram land in the ``hibernate`` section of
``BENCH_perf.json``, where :mod:`repro.tools.benchgate` audits the
wake ledger: every hibernation is a wake, a discard, or a snapshot
still parked on the spool.
"""

import threading

from repro.fs.mux import MuxClient, mount_remote
from repro.fs.namespace import Namespace
from repro.fs.vfs import VFS
from repro.metrics.counter import current_registry
from repro.serve import SessionHost, input_line

SESSIONS = 10_000   # nominal users cycled through the host
MAX_LIVE = 256      # the memory budget: resident worlds at any moment
WORKERS = 8         # concurrent churn connections in the cycle phase
WAKE_WAVE = 300     # concurrent re-attaches (> MAX_LIVE forces LRU)


def _session(host, name):
    """Attach *name* and return (client, mounted namespace)."""
    client = MuxClient(host.pipe(), aname=name)
    ns = Namespace(VFS())
    ns.mkdir("/s", parents=True)
    ns.mount(mount_remote(client), "/s")
    return client, ns


def _cycle(host, name) -> str:
    """One user's visit: attach, leave a mark, read back, detach."""
    client, ns = _session(host, name)
    try:
        ns.append("/s/input", input_line(
            "newwin", ("-", "-", "-", f"/tmp/{name}",
                       f"hibernate soak mark {name}\n")))
        return ns.read("/s/screen")
    finally:
        client.close()   # connection drop -> detach() -> hibernate


def _wake_check(host, name) -> str:
    """Re-attach a parked session and read its woken screen.

    Under wake pressure the LRU sweep may hibernate this session again
    between our attach and our read — that is the behavior under test,
    not a failure — so a torn visit just reconnects, the way a real
    user whose world was parked mid-look would.
    """
    for _attempt in range(5):
        client, ns = _session(host, name)
        try:
            try:
                return ns.read("/s/screen")
            except Exception:
                continue    # parked out from under us; wake it again
        finally:
            client.close()
    raise AssertionError(f"session {name} unreadable after 5 wakes")


def _fan_out(count: int, work) -> None:
    failures: list[BaseException] = []

    def one(idx: int) -> None:
        try:
            work(idx)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            failures.append(exc)

    threads = [threading.Thread(target=one, args=(i,))
               for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise failures[0]


def test_perf_hibernate_soak(benchmark, report_extra):
    """10k sessions through a MAX_LIVE budget, then a wake wave."""
    host = SessionHost(width=100, height=40, workers=WORKERS,
                       max_live=MAX_LIVE)
    try:
        def soak() -> int:
            # phase 1: churn — WORKERS threads walk all 10k sessions,
            # each visit ending in a detach that parks the world
            per_worker = SESSIONS // WORKERS

            def churn(worker: int) -> None:
                base = worker * per_worker
                for i in range(base, base + per_worker):
                    screen = _cycle(host, f"u{i}")
                    assert f"mark u{i}" in screen

            _fan_out(WORKERS, churn)

            # phase 2: wake pressure — more concurrent connections
            # than the budget fits, so the LRU sweep must hibernate
            # sessions whose channels are still open
            barrier = threading.Barrier(WAKE_WAVE)

            def wave(idx: int) -> None:
                name = f"u{idx * (SESSIONS // WAKE_WAVE)}"
                screen = _wake_check(host, name)
                assert f"mark {name}" in screen
                barrier.wait(timeout=120)

            _fan_out(WAKE_WAVE, wave)
            return SESSIONS

        cycled = benchmark.pedantic(soak, rounds=1, iterations=1)
        assert cycled == SESSIONS
        # the budget held: never more resident worlds than MAX_LIVE
        assert host.live_peak <= MAX_LIVE, (
            f"live_peak {host.live_peak} breached budget {MAX_LIVE}")
        assert len(host.sessions) <= MAX_LIVE
    finally:
        # close first: in-flight teardowns can still park sessions
        # until the server is down, and benchgate balances the final
        # counters against the still_hibernated number reported here
        host.close()
    assert host.audit() == []
    # fold only the host-level ledger (wake counters + wake_us) into
    # the report — a full drain() would carry 10k sessions' journal
    # appends into the counters and imbalance the journal benches'
    # closed append==replay+dropped loop, which these sessions are
    # not part of
    current_registry().merge(host.metrics)
    report_extra("hibernate", sessions=SESSIONS, max_live=MAX_LIVE,
                 live_peak=host.live_peak,
                 still_hibernated=len(host.hibernated))
    benchmark.extra_info["sessions"] = SESSIONS
    benchmark.extra_info["max_live"] = MAX_LIVE
    benchmark.extra_info["live_peak"] = host.live_peak
    benchmark.extra_info["still_hibernated"] = len(host.hibernated)
    median = benchmark.stats.stats.median if benchmark.stats else None
    if median:
        benchmark.extra_info["sessions_per_sec"] = round(SESSIONS / median, 1)
