"""Figure 6: messages applied to the header line of Sean's mail.

"just pointing with the left button anywhere in the header line will
do" — the script takes the message number from the first word of the
pointed-at line.
"""


def test_fig06_messages(system, benchmark, screenshot):
    h = system.help
    mail_stf = h.window_by_name("/help/mail/stf")
    h.execute_text(mail_stf, "headers")
    mbox_w = h.window_by_name("/mail/box/rob/mbox")

    def scenario():
        existing = h.window_by_name("From")
        if existing is not None:
            h.close_window(existing)
        # point anywhere in Sean's line — at the date, even
        pos = mbox_w.body.string().index("19:26")
        h.point_at(mbox_w, pos)
        h.execute_text(mail_stf, "messages")
        return h.window_by_name("From")

    msg_w = benchmark(scenario)
    assert msg_w.tag.string().startswith("From sean")
    body = msg_w.body.string()
    assert body.startswith("From sean Tue Apr 16 19:26:14 EDT 1991")
    assert "help 176153: user TLB miss (load or fetch) badvaddr=0x0" in body
    shot = screenshot("fig06_messages", h)
    assert "TLB miss" in shot


def test_fig06_delete_and_reread(system):
    """The other mail verbs: delete renumbers, reread refreshes."""
    h = system.help
    mail_stf = h.window_by_name("/help/mail/stf")
    h.execute_text(mail_stf, "headers")
    mbox_w = h.window_by_name("/mail/box/rob/mbox")
    h.point_at(mbox_w, mbox_w.body.string().index("howard"))
    h.execute_text(mail_stf, "delete")
    assert len(system.mailbox.messages()) == 6
    # delete's script reran reread, so the window already refreshed
    assert "howard" not in mbox_w.body.string()
    assert "7 deutsch" not in mbox_w.body.string()
    assert "6 deutsch" in mbox_w.body.string()
