"""Ablation: the three-rule placement heuristic vs simpler policies.

"minor changes to the heuristics often result in dramatic
improvements to the feel of the system as a whole."  We compare the
paper's heuristic against two ablated variants on a common workload
and score the *feel* proxies: how much text stays readable and how
many windows survive on screen.
"""

import random

from repro.core.column import MIN_NEW_ROWS, Column
from repro.core.frame import Frame, Rect
from repro.core.window import Window


def _score(column):
    """(visible windows, total visible body rows) — more is better."""
    visible = column.visible()
    rows = 0
    for window in visible:
        rect = column.win_rect(window)
        frame = Frame(column.text_width, max(0, rect.height - 1))
        rows += frame.rows_used(window.body.string(), window.org) \
            if rect.height > 1 else 0
    return len(visible), rows


class BottomOnlyColumn(Column):
    """Ablation A: always stack at the very bottom (rule 3 only)."""

    def place(self, window):
        window.hidden = False
        quarter = max(self.rect.height // 4, MIN_NEW_ROWS)
        window.y = max(self.rect.y0, self.rect.y1 - quarter)
        for other in self.windows:
            if not other.hidden and other.y >= window.y:
                other.hidden = True
        self.windows.append(window)
        self._normalize(priority=window)


class NaiveSplitColumn(Column):
    """Ablation B: halve the lowest window every time (rule 2 only)."""

    def place(self, window):
        window.hidden = False
        vis = self.visible()
        if not vis:
            window.y = self.rect.y0
        else:
            last = vis[-1]
            rect = self.win_rect(last)
            window.y = last.y + max(1, rect.height // 2)
        self.windows.append(window)
        self._normalize(priority=window)


def _workload(column_cls, seed=3, n=14, height=40):
    rng = random.Random(seed)
    column = column_cls(Rect(0, 1, 60, 1 + height))
    for i in range(n):
        column.place(Window(i, f"/w{i}",
                            "".join(f"l{j}\n" for j in range(rng.randrange(2, 9)))))
    return _score(column)


def test_ablation_placement(benchmark, save_artifact):
    paper = benchmark(lambda: _workload(Column))
    bottom_only = _workload(BottomOnlyColumn)
    naive_split = _workload(NaiveSplitColumn)

    rows = [
        f"{'policy':<22} {'windows shown':>14} {'text rows':>10}",
        f"{'paper 3-rule':<22} {paper[0]:>14} {paper[1]:>10}",
        f"{'bottom-25% only':<22} {bottom_only[0]:>14} {bottom_only[1]:>10}",
        f"{'halve-lowest only':<22} {naive_split[0]:>14} {naive_split[1]:>10}",
    ]
    save_artifact("ablation_placement", "\n".join(rows) + "\n")
    print("\n" + "\n".join(rows))

    # the paper's heuristic shows at least as much text and at least as
    # many windows as either ablation
    assert paper[0] >= bottom_only[0]
    assert paper[1] >= bottom_only[1]
    assert paper[0] >= naive_split[0]
    assert paper[1] >= naive_split[1]
    # and strictly beats the rule-3-only policy on text shown
    assert paper[1] > bottom_only[1]
