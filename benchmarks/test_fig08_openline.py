"""Figure 8: Open on a file:line address from the stack trace.

The stack window's directory tag gives relative names like text.c:32
their context; the window opens positioned with the line selected.
"""

from repro.tools.corpus import SRC_DIR


def test_fig08_openline(system, benchmark, screenshot):
    h = system.help
    # the stack window, built directly (fig07 benches the script route)
    trace = "strlen(s=0x0) called from textinsert+0x30 text.c:32\n"
    stack_w = h.new_window(f"{SRC_DIR}/", trace)

    def scenario():
        existing = h.window_by_name(f"{SRC_DIR}/text.c")
        if existing is not None:
            h.close_window(existing)
        h.point_at(stack_w, stack_w.body.string().index("text.c:32") + 2)
        h.exec_builtin("Open", stack_w)
        return h.window_by_name(f"{SRC_DIR}/text.c")

    text_w = benchmark(scenario)
    assert text_w is not None
    assert text_w.body.line_of(text_w.org) == 32
    selected = text_w.body.slice(text_w.body_sel.q0, text_w.body_sel.q1)
    assert selected == "\tnn = strlen((char*)s);"
    screenshot("fig08_openline", h)


def test_fig08_absolute_path_with_line(system):
    """Absolute addresses in the trace work too (the libc frame)."""
    h = system.help
    system.ns.mkdir("/sys/src/libc/mips", parents=True)
    system.ns.write("/sys/src/libc/mips/strchr.s",
                    "".join(f"/* asm {i} */\n" for i in range(1, 34))
                    + "\tMOVW 0(R3),R5\n")
    w = h.new_window("/tmp/t", "/sys/src/libc/mips/strchr.s:34 strchr+0x68")
    h.point_at(w, 5)
    h.exec_builtin("Open", w)
    asm_w = h.window_by_name("/sys/src/libc/mips/strchr.s")
    assert asm_w.body.line_of(asm_w.org) == 34
