"""P8: loadgen soak — 1000 users of recorded traffic under SLO budgets.

Every other perf bench times one op in isolation; this one times the
*system under traffic*.  :mod:`repro.tools.loadgen` replays the
recorded Figures 5-12 journals as weighted scenarios for 1000
simulated users against a 4-shard router over real TCP sockets — a
closed loop of attach, think, write input records, read screens, drop
(which hibernates the world), and a seeded cohort returning to wake
what it parked.  The per-op-class latency histograms (attach / read /
write / apply / wake), error counts and backpressure counters become
the ``loadgen`` section of ``BENCH_perf.json``, where
:mod:`repro.tools.benchgate` enforces hard p99 ceilings and an
error-rate budget: a latency regression in any op class turns the
bench gate red even when every ledger still balances.
"""

from repro.metrics.counter import current_registry
from repro.tools import benchgate
from repro.tools.loadgen import LoadGen, build_models, validate

USERS = 1000     # simulated users in the soak
SHARDS = 4       # router shards the traffic spreads over
WORKERS = 8      # concurrent closed-loop drivers
SEED = 20260808  # the schedule: same seed, byte-identical traffic


def test_perf_loadgen_soak(benchmark, report_extra):
    """1000 recorded-journal users through 4 shards, SLOs enforced."""
    models = build_models()
    lg = LoadGen(users=USERS, shards=SHARDS, seed=SEED, workers=WORKERS,
                 transport="tcp", models=models)

    report = benchmark.pedantic(lg.run, rounds=1, iterations=1)

    # the fleet itself must be clean: every op class sampled, no
    # unexpected client-visible errors, host and router ledgers
    # balanced (LoadGen.run folds its audits into report.problems)
    assert validate(report) == [], validate(report)
    for op in ("attach", "read", "write", "apply", "wake"):
        assert report.op_us[op].get("count"), f"no {op} samples"
    assert report.ops["attach"] == USERS
    assert report.live_peak <= report.max_live

    # the SLO budget table holds on this run's own numbers — the same
    # audit benchgate applies to the emitted section, asserted here so
    # a breach names the failing bench, not just the gate
    assert benchgate.audit_loadgen(report.to_dict()) == []

    # fold only the loadgen ledger (client op histograms + host-level
    # counters) into the report — a full drain() would carry every
    # session's journal appends into the counters and imbalance the
    # journal benches' closed append==replay+dropped loop
    current_registry().merge(lg.metrics)
    report_extra("loadgen", **report.to_dict())
    benchmark.extra_info["users"] = USERS
    benchmark.extra_info["shards"] = SHARDS
    benchmark.extra_info["ops_total"] = sum(report.ops.values())
    if report.duration_s:
        benchmark.extra_info["ops_per_sec"] = round(
            sum(report.ops.values()) / report.duration_s, 1)
