"""Shared fixtures for the benchmark harness.

Each figure bench rebuilds the paper's scenario, asserts the content
the figure shows, saves an ASCII screenshot under ``bench_artifacts/``
and times the operation that produces the figure.  Claim benches
measure the paper's interaction-cost statements; perf benches time the
substrates themselves.

Alongside the human-readable ``bench_artifacts/*.txt``, a benchmark
run writes ``bench_artifacts/BENCH_perf.json``: one machine-readable
record of every op's median latency in microseconds plus the display
pipeline's cache counters (layout cache hit rate overall and per bench
group, cells repainted), so future PRs have a perf trajectory to
compare against instead of re-measuring the past.
"""

import json
import pathlib
import re

import pytest

from repro import build_system, render_screen
from repro.metrics.counter import MetricsRegistry, set_default_registry

ARTIFACTS = pathlib.Path(__file__).resolve().parent.parent / "bench_artifacts"

# Seed (pre-incremental-pipeline) medians in microseconds, measured on
# the same workloads before the display pipeline landed; kept so the
# JSON always carries its own before/after comparison.
SEED_BASELINE_US = {
    "test_perf_open_large_file": 7543.2,
    "test_perf_jump_to_deep_line": 6964.3,
    "test_perf_edit_deep_in_large_file": 54.0,
    "test_perf_scroll_through_large_file": 131184.8,
    "test_perf_large_body_through_fileserver": 16.0,
    "test_perf_type_and_render": 494186.4,  # 60 keystrokes @ ~8.24 ms each
    "test_perf_sustained_session": 48201.2,
}

# per-group counter deltas, accumulated across the whole session
_counter_groups: dict[str, dict[str, int]] = {}

# session-wide totals: each test runs against a fresh registry (so
# benches are isolated from each other), and its deltas are folded in
# here for the end-of-session report
_counter_total: dict[str, int] = {}

# histograms accumulate across the whole bench session — the latency
# reports want every sample — so each bench's registry is merged into
# this one at teardown
_session_metrics = MetricsRegistry("bench-session")

# report-section extras benches deposit directly (via the report_extra
# fixture): benchmark.extra_info only reaches the report on timed runs,
# but the shard and hibernation ledgers must survive CI's
# --benchmark-disable counters-only mode too
_section_extras: dict[str, dict] = {}


def _groups_of(nodeid: str) -> list[str]:
    name = nodeid.rsplit("::", 1)[0].rsplit("/", 1)[-1]
    groups = ["other"]
    for prefix in ("test_fig", "test_perf", "test_claim", "test_ablation"):
        if name.startswith(prefix):
            groups = [prefix.removeprefix("test_")]
            break
    # The paper's mid-session walkthrough (mail -> debugger -> uses ->
    # mk) is Figures 5-12; its cache hit rate is an acceptance metric,
    # so it gets its own aggregate alongside the coarse groups.
    fig = re.match(r"test_fig(\d+)", name)
    if fig and int(fig.group(1)) >= 5:
        groups.append("fig05_12_replay")
    return groups


@pytest.fixture(autouse=True)
def _track_perf_counters(request):
    """Isolate each bench's metrics, then fold them into the session.

    Every test runs against its own fresh :class:`MetricsRegistry`
    installed as the default (a bench asserting on ``fs.open`` /
    ``fs.close`` balance can't be poisoned by an earlier bench's
    traffic) and its activity is accumulated into both its bench group
    and the session total that ``BENCH_perf.json`` reports.  The whole
    registry — histograms included, since the latency reports want
    every sample — is merged into the session accumulator afterwards.
    """
    registry = MetricsRegistry(request.node.nodeid)
    previous = set_default_registry(registry)
    yield
    set_default_registry(previous)
    after = registry.counters()
    groups = _groups_of(request.node.nodeid) + ["__total__"]
    for group in groups:
        acc = (_counter_total if group == "__total__"
               else _counter_groups.setdefault(group, {}))
        # zero-valued counters are kept: an explicit zero is a verdict
        # (host.sessions.bleed=0 means the isolation audit ran and
        # found nothing), and benchgate gates on its presence
        for key, value in after.items():
            acc[key] = acc.get(key, 0) + value
    _session_metrics.merge(registry)


def _rate(stats: dict[str, int]) -> float | None:
    hits = stats.get("layout.cache_hit", 0)
    misses = stats.get("layout.cache_miss", 0)
    return round(hits / (hits + misses), 4) if hits + misses else None


def _histogram_report(prefix: str) -> dict[str, dict[str, float]]:
    return {name: {k: round(v, 3) for k, v in stats.items()}
            for name, stats in _session_metrics.histograms(prefix).items()}


def pytest_sessionfinish(session, exitstatus):
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not _counter_total:
        return
    # With --benchmark-disable (CI's counters-only mode) the bench
    # list is empty, but the counter and histogram record is still the
    # point: the gate (repro.tools.benchgate) audits it for leaked
    # sessions and error traffic on the clean path.
    ops = {}
    # deposited extras first; timed-run extra_info refines them below
    shards_extra: dict = dict(_section_extras.get("shards", {}))
    hib_extra: dict = dict(_section_extras.get("hibernate", {}))
    for bench in bench_session.benchmarks:
        if bench.name.startswith("test_perf_shards"):
            shards_extra.update(getattr(bench, "extra_info", None) or {})
        if bench.name.startswith("test_perf_hibernate"):
            hib_extra.update(getattr(bench, "extra_info", None) or {})
        median = bench.get("median")
        if median is None:
            continue
        ops[bench.name] = {"median_us": round(median * 1e6, 3)}
        seed = SEED_BASELINE_US.get(bench.name)
        if seed is not None:
            ops[bench.name]["seed_median_us"] = seed
            ops[bench.name]["speedup_vs_seed"] = round(
                seed / (median * 1e6), 2)
        extra = dict(getattr(bench, "extra_info", None) or {})
        if extra:
            ops[bench.name]["extra_info"] = extra
    total = dict(_counter_total)
    report = {
        "mode": "timings" if ops else "counters-only",
        "ops": dict(sorted(ops.items())),
        "layout_cache_hit_rate": _rate(total),
        "group_layout_cache_hit_rate": {
            group: _rate(stats)
            for group, stats in sorted(_counter_groups.items())},
        "counters": dict(sorted(total.items())),
        "wire": {
            "server_rpc_us": _histogram_report("wire.rpc."),
            "client_rpc_us": _histogram_report("mux.rpc."),
        },
        "journal": {
            "replay_latency_us": _histogram_report("replay."),
            "journal_us": _histogram_report("journal."),
        },
        "sessions": {
            "session_us": _histogram_report("session."),
            "ledger": {key: value for key, value in sorted(total.items())
                       if key.startswith("host.")},
        },
        "shards": {
            "shard_count": shards_extra.get("shards"),
            "per_shard": shards_extra.get("per_shard"),
            "aggregate_rpcs_per_sec": shards_extra.get("rpcs_per_sec"),
            "vs_single_server": shards_extra.get("vs_single_server"),
            "meets_100k_floor": shards_extra.get("meets_100k_floor"),
            "ledger": {key: value for key, value in sorted(total.items())
                       if key.startswith("router.")},
        },
        "hibernate": {
            "sessions_cycled": hib_extra.get("sessions"),
            "max_live": hib_extra.get("max_live"),
            "live_peak": hib_extra.get("live_peak"),
            "still_hibernated": hib_extra.get("still_hibernated"),
            "wake_us": _histogram_report("host.wake"),
            "ledger": {key: value for key, value in sorted(total.items())
                       if key.startswith("host.sessions.")},
        },
        # the loadgen soak deposits its whole LoadReport (per-op-class
        # p50/p95/p99, error and backpressure counts); benchgate's SLO
        # budget table audits this section
        "loadgen": dict(_section_extras.get("loadgen", {})),
        # the chaos soak deposits its replica section (kills,
        # promotions, ship/promotion ledgers, promote/failover/lag
        # percentiles); benchgate's replica budget table audits it
        "replica": dict(_section_extras.get("replica", {})),
    }
    ARTIFACTS.mkdir(exist_ok=True)
    (ARTIFACTS / "BENCH_perf.json").write_text(
        json.dumps(report, indent=2) + "\n")


@pytest.fixture
def system():
    """A freshly booted world (Figure 4 state)."""
    return build_system(width=160, height=60)


@pytest.fixture
def report_extra():
    """Deposit ledger values straight into a BENCH_perf.json section.

    ``benchmark.extra_info`` only reaches the report when the bench
    session records timings; counters-only runs (``--benchmark-disable``)
    drop it, so benches whose ledger the gate audits deposit here too.
    """
    def put(section: str, **values) -> None:
        _section_extras.setdefault(section, {}).update(values)
    return put


@pytest.fixture
def save_artifact():
    """Write a figure reproduction to bench_artifacts/<name>.txt."""
    ARTIFACTS.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (ARTIFACTS / f"{name}.txt").write_text(text)
    return save


@pytest.fixture
def screenshot(save_artifact):
    """Save the full screen of a help session as an artifact."""
    def shot(name: str, help_app) -> str:
        text = render_screen(help_app)
        save_artifact(name, text)
        return text
    return shot
