"""Shared fixtures for the benchmark harness.

Each figure bench rebuilds the paper's scenario, asserts the content
the figure shows, saves an ASCII screenshot under ``bench_artifacts/``
and times the operation that produces the figure.  Claim benches
measure the paper's interaction-cost statements; perf benches time the
substrates themselves.
"""

import pathlib

import pytest

from repro import build_system, render_screen

ARTIFACTS = pathlib.Path(__file__).resolve().parent.parent / "bench_artifacts"


@pytest.fixture
def system():
    """A freshly booted world (Figure 4 state)."""
    return build_system(width=160, height=60)


@pytest.fixture
def save_artifact():
    """Write a figure reproduction to bench_artifacts/<name>.txt."""
    ARTIFACTS.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (ARTIFACTS / f"{name}.txt").write_text(text)
    return save


@pytest.fixture
def screenshot(save_artifact):
    """Save the full screen of a help session as an artifact."""
    def shot(name: str, help_app) -> str:
        text = render_screen(help_app)
        save_artifact(name, text)
        return text
    return shot
