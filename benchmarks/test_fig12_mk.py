"""Figure 12: cut the bad line, Put!, and mk — three middle clicks.

"I use Cut to remove the offending line, write the file back out (the
word Put! appears in the tag of a modified window) and then execute
mk in /help/cbr to compile the program (a total of three clicks of
the middle button)."
"""

from repro.core.window import Subwindow
from repro.tools.corpus import SRC_DIR


def test_fig12_mk(system, benchmark, screenshot):
    h = system.help
    exec_w = h.open_path(f"{SRC_DIR}/exec.c", line=213)
    edit_stf = h.window_by_name("/help/edit/stf")
    cbr_stf = h.window_by_name("/help/cbr/stf")
    original = exec_w.body.string()

    def scenario():
        exec_w.replace_body(original)
        for w in list(h.windows.values()):
            if w.name() == f"{SRC_DIR}/mk":
                h.close_window(w)
        start, end = exec_w.body.line_span(213)
        h.select(exec_w, start, end + 1)
        h.exec_builtin("Cut", edit_stf)          # middle click 1
        h.exec_builtin("Put!", exec_w, Subwindow.TAG)  # middle click 2
        h.execute_text(cbr_stf, "mk")            # middle click 3
        return h.window_by_name(f"{SRC_DIR}/mk")

    # the first mk ever run compiles *every* source (no objects exist
    # yet); the figure shows a warm tree recompiling exec.c alone.  A
    # loaded machine can leave the timed run at a single round, so the
    # warm-up must not depend on the round count.
    scenario()
    mk_w = benchmark(scenario)
    log = mk_w.body.string()
    assert "vc -w exec.c" in log
    assert "vl -o help" in log
    assert "-lg -lregexp -ldmalloc" in log
    assert "n = 0;" not in system.ns.read(f"{SRC_DIR}/exec.c")
    assert system.ns.exists(f"{SRC_DIR}/help")
    screenshot("fig12_mk", h)


def test_fig12_exactly_three_middle_clicks(system):
    """Count the actual presses through the event layer."""
    from repro.testing import Session
    session = Session(system)
    h = system.help
    exec_w = h.open_path(f"{SRC_DIR}/exec.c", line=213)
    edit_stf = h.window_by_name("/help/edit/stf")
    cbr_stf = h.window_by_name("/help/cbr/stf")
    start, end = exec_w.body.line_span(213)
    session.select(exec_w, start, end + 1)
    h.stats.reset()
    session.execute(edit_stf, "Cut")
    session.execute(exec_w, "Put!", sub=Subwindow.TAG)
    session.execute(cbr_stf, "mk")
    assert h.stats.middle_clicks == 3
    assert h.stats.keystrokes == 0
    assert system.ns.exists(f"{SRC_DIR}/help")


def test_fig12_rebuild_only_what_changed(system):
    """mk recompiles exec.c alone on the second run."""
    shell = system.shell(SRC_DIR)
    shell.run("mk")
    shell.run("touch exec.c")
    result = shell.run("mk")
    assert "vc -w exec.c" in result.stdout
    assert "vc -w text.c" not in result.stdout
