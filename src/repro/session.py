"""Session identity: the bundle of state one help session owns.

The paper's ``help`` is one program serving one user; the ROADMAP
grows it toward a host serving many.  Everything that distinguishes
one session from another — its namespace, its metrics ledger, its
fault plan, its journal — travels together in a
:class:`SessionContext` so no layer has to reach for process globals:
:class:`~repro.core.help.Help`, :class:`~repro.helpfs.server.HelpFS`,
:class:`~repro.shell.interp.Interp`,
:class:`~repro.journal.log.Journal` and
:class:`~repro.journal.recorder.SessionRecorder` all accept one, and
:mod:`repro.serve` builds one per attached connection.

The deep substrate (VFS traversal, frame layout, the wire codec)
still reports metrics through the module-level shim in
:mod:`repro.metrics.counter`; those calls resolve the **active**
registry at call time, so a host binds a session's context with
:meth:`SessionContext.activate` around any work it does on that
session's behalf and the whole call tree lands in the right ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.metrics.counter import MetricsRegistry, use_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fs.faults import FaultPlan
    from repro.fs.namespace import Namespace
    from repro.journal.log import Journal
    from repro.journal.recorder import SessionRecorder


@dataclass
class SessionContext:
    """One session's identity and private state, threaded everywhere.

    - ``session_id`` — names the session in ``/srv/sessions`` listings,
      journal paths and metric labels;
    - ``ns`` — the session's namespace (its own fork of the world);
    - ``metrics`` — the session's private ledger; nothing this session
      does lands in another session's counters;
    - ``fault_plan`` — deterministic fault injection scoped to this
      session alone;
    - ``journal`` / ``recorder`` — the session's write-ahead log and
      the tee that feeds it, when recording is on.
    """

    session_id: str
    ns: "Namespace"
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    fault_plan: "FaultPlan | None" = None
    journal: "Journal | None" = None
    recorder: "SessionRecorder | None" = None

    def activate(self):
        """Bind this session's registry as the active one (a ``with``).

        Module-level ``incr``/``observe`` calls made anywhere under the
        ``with`` — VFS traversal, layout caching, wire dispatch —
        credit this session's ledger instead of the process default.
        """
        return use_registry(self.metrics)

    def incr(self, name: str, n: int = 1) -> None:
        """Bump a counter in this session's ledger directly."""
        self.metrics.incr(name, n)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram sample in this session's ledger directly."""
        self.metrics.observe(name, value)
