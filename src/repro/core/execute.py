"""Middle-button execution: builtins, context rules, external commands.

"Like the left mouse button, the middle button also selects text, but
the act of releasing the button ... executes the command indicated by
that text."  This module turns an executed string into an action:

- the first word names either a **built-in** (capitalized, registered
  in :mod:`repro.core.builtins`) or an **external program**;
- external commands are resolved through the window's *directory
  context*: "if the tag line of the window containing the command has
  a file name and the command does not begin with a slash, the
  directory of the file will be prepended to the command.  If that
  command cannot be found locally, it will be searched for in the
  standard directory of program binaries";
- their standard input is an empty file, and standard/error output is
  appended to the ``Errors`` window, created on demand;
- the selected text's location rides along in the ``helpsel``
  environment variable so tools like ``decl`` can see what the user is
  pointing at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.window import Subwindow, Window

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.help import Help

# Where external commands are looked up when the directory context
# does not supply them (Plan 9's /bin).
BIN_DIR = "/bin"


@dataclass
class CommandResult:
    """What running an external command produced."""

    status: int = 0
    stdout: str = ""
    stderr: str = ""


# The runner contract: (command line with argv[0] already resolved,
# working directory, environment) -> CommandResult.  The shell
# substrate provides the real implementation; help itself neither
# knows nor cares what language the tools are written in.
Runner = Callable[[str, str, dict[str, str]], CommandResult]


@dataclass
class ExecContext:
    """Everything a built-in command gets to see."""

    help: "Help"
    window: Window            # the window the command text was executed in
    subwindow: Subwindow
    cmd: str                  # first word of the executed text
    arg: str                  # the rest, stripped
    extent: tuple[int, int] = (0, 0)  # offsets of the executed text


class Executor:
    """Dispatches executed text to builtins or external commands."""

    def __init__(self, help_app: "Help", runner: Runner | None = None) -> None:
        self.help = help_app
        self.runner = runner
        self.builtins: dict[str, Callable[[ExecContext], None]] = {}
        from repro.core import builtins as _builtins
        _builtins.register_all(self)

    def register(self, name: str,
                 fn: Callable[[ExecContext], None]) -> None:
        """Bind built-in *name* to *fn* (used by builtins and by tests)."""
        self.builtins[name] = fn

    # -- dispatch ---------------------------------------------------------

    def execute(self, window: Window, subwindow: Subwindow, text: str,
                extent: tuple[int, int] = (0, 0)) -> None:
        """Execute *text* as selected in *window*'s *subwindow*.

        A filesystem failure anywhere below (a faulted ``/mnt/help``,
        a vanished file) must not take the interface down with it: it
        is reported in the Errors window, the paper's only channel
        from a failing tool to the user, and help stays live.
        """
        from repro.fs.vfs import FsError
        text = text.strip()
        if not text:
            return
        if self.help.journal is not None:
            self.help.journal.trace("run", (text,))
        cmd, _, arg = text.partition(" ")
        ctx = ExecContext(self.help, window, subwindow, cmd, arg.strip(),
                          extent)
        try:
            builtin = self.builtins.get(cmd)
            if builtin is not None:
                builtin(ctx)
                return
            self._run_external(ctx)
        except FsError as exc:
            self.help.post_error(f"help: {exc.diagnostic()}\n")

    # -- external commands ---------------------------------------------------

    def resolve_command(self, cmd: str, context_dir: str) -> str:
        """Apply the paper's resolution rules to *cmd*.

        A command in the window's directory context wins ("the
        directory of the file will be prepended to the command");
        otherwise the name passes through unchanged for the shell to
        find in the standard directory of program binaries — or in
        its own command table, where the simulated userland lives.
        """
        from repro.fs.vfs import join
        ns = self.help.ns
        if cmd.startswith("/"):
            return join("/", cmd)
        local = join(context_dir, cmd)
        if ns.exists(local) and not ns.isdir(local):
            return local
        return cmd

    def _run_external(self, ctx: ExecContext) -> None:
        context_dir = ctx.window.directory()
        resolved = self.resolve_command(ctx.cmd, context_dir)
        if self.runner is None:
            self.help.post_error(
                f"help: {ctx.cmd}: no command runner attached\n")
            return
        cmdline = resolved + (f" {ctx.arg}" if ctx.arg else "")
        env = self.environment(ctx)
        result = self.runner(cmdline, context_dir, env)
        if result.stdout:
            self.help.post_error(result.stdout)
        if result.stderr:
            self.help.post_error(result.stderr)

    def environment(self, ctx: ExecContext) -> dict[str, str]:
        """The environment an external command runs with.

        ``helpsel`` encodes the current selection as
        ``<window-id>:<subwindow>:<q0>:<q1>`` — "help passes to an
        application the file and character offset of the mouse
        position".
        """
        env: dict[str, str] = {}
        current = self.help.current
        if current is not None:
            window, subwindow = current
            sel = window.selection(subwindow)
            env["helpsel"] = f"{window.id}:{subwindow.value}:{sel.q0}:{sel.q1}"
        env["helpdir"] = ctx.window.directory()
        return env


def parse_helpsel(value: str) -> tuple[int, str, int, int]:
    """Decode a ``helpsel`` string back to (window id, subwindow, q0, q1).

    The inverse of :meth:`Executor.environment`; the ``help/parse``
    tool uses this.  Raises ValueError on malformed input.
    """
    parts = value.split(":")
    if len(parts) != 4 or parts[1] not in ("tag", "body"):
        raise ValueError(f"bad helpsel {value!r}")
    return (int(parts[0]), parts[1], int(parts[2]), int(parts[3]))
