"""Session dump and restore (extension).

Help's descendant Acme can write its window layout to a dump file and
recreate the session later; users of this reproduction asked the same
of it, so: :func:`dump` serializes a session's columns, windows, and
unsaved bodies to text, and :func:`load` rebuilds the session.

The format is line-oriented and file-friendly (it can itself be opened
in a window):

```
help-dump 1
screen <width> <height> <ncolumns>
column <index> <x0> <x1>
window <column> <y> <hidden 0|1> <org> <dirty 0|1> <name>
tag <escaped tag text>
body <nlines>            # only for dirty/unnamed windows
<raw body lines...>
```

Clean file-backed windows are reloaded from their files; dirty windows
carry their body inline so no edit is lost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.helpfs.ctl import escape, unescape

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.help import Help

FORMAT = "help-dump 1"


class DumpError(Exception):
    """A malformed dump file."""


def dump(help_app: "Help") -> str:
    """Serialize the session's layout and unsaved text."""
    screen = help_app.screen
    out = [FORMAT,
           f"screen {screen.rect.width} {screen.rect.height} "
           f"{len(screen.columns)}"]
    for index, column in enumerate(screen.columns):
        out.append(f"column {index} {column.rect.x0} {column.rect.x1}")
    for index, column in enumerate(screen.columns):
        for window in column.tab_order():
            name = window.name()
            inline = window.dirty or not name or name.endswith("/") \
                or not help_app.ns.exists(name)
            if not inline:
                # a clean window whose body is not the file's content
                # (tool output written through the server, a truncated
                # view) must still restore byte-identical
                try:
                    inline = window.body.string() != help_app.ns.read(name)
                except Exception:
                    inline = True
            out.append(f"window {index} {window.y} {int(window.hidden)} "
                       f"{window.org} {int(window.dirty)} {name}")
            out.append(f"tag {escape(window.tag.string())}")
            if inline:
                body = window.body.string()
                lines = body.split("\n")
                out.append(f"body {len(lines)}")
                out.extend(lines)
            else:
                out.append("body -")
    return "\n".join(out) + "\n"


def save(help_app: "Help", path: str = "/usr/rob/help.dump") -> None:
    """Write the dump to a file in the namespace."""
    help_app.ns.write(path, dump(help_app))


def load(help_app: "Help", text: str) -> None:
    """Recreate a dumped session into *help_app*.

    Existing windows are closed first.  Windows are recreated column
    by column at their dumped rows; clean file windows reload from the
    namespace, dirty ones get their dumped bodies (and stay dirty).
    """
    lines = text.split("\n")
    if not lines or lines[0] != FORMAT:
        raise DumpError("not a help dump file")
    for window in list(help_app.windows.values()):
        help_app.close_window(window)
    i = 1
    if i >= len(lines) or not lines[i].startswith("screen "):
        raise DumpError("missing screen line")
    _, width, height, ncols = lines[i].split()
    if int(ncols) != len(help_app.screen.columns):
        from repro.core.screen import Screen
        help_app.screen = Screen(int(width), int(height), int(ncols))
    else:
        help_app.screen.resize(int(width), int(height))
    i += 1
    while i < len(lines) and lines[i].startswith("column "):
        i += 1  # column extents are restored by resize proportions
    while i < len(lines):
        line = lines[i]
        if not line.strip():
            i += 1
            continue
        if not line.startswith("window "):
            raise DumpError(f"unexpected dump line {line!r}")
        fields = line.split(" ", 6)
        if len(fields) < 6:
            raise DumpError(f"short window line {line!r}")
        _, col_idx, y, hidden, org, dirty = fields[:6]
        name = fields[6] if len(fields) > 6 else ""
        i += 1
        if i >= len(lines) or not lines[i].startswith("tag "):
            raise DumpError("window without tag line")
        tag_text = unescape(lines[i][4:])
        i += 1
        if i >= len(lines) or not lines[i].startswith("body "):
            raise DumpError("window without body line")
        body_head = lines[i][5:]
        i += 1
        if body_head == "-":
            body = help_app.ns.read(name)
        else:
            n = int(body_head)
            body = "\n".join(lines[i:i + n])
            i += n
        column = help_app.screen.columns[
            min(int(col_idx), len(help_app.screen.columns) - 1)]
        window = help_app.new_window(name, body, column=column)
        window.tag.set_string(tag_text)
        window.tag_sel.set(0, 0)
        window.y = int(y)
        window.hidden = bool(int(hidden))
        window.org = int(org)
        if int(dirty):
            # set the flag directly: mark_dirty() would insert "Put!"
            # into a dumped tag that (deliberately) lacks it, breaking
            # byte-identical restore
            window.dirty = True
        column._normalize()


def restore(help_app: "Help", path: str = "/usr/rob/help.dump") -> None:
    """Load a dump from a file in the namespace."""
    load(help_app, help_app.ns.read(path))
