"""The screen: columns side by side, a header strip, and hit testing.

The screen owns the geometry: a one-row strip across the top whose
squares let columns expand horizontally ("A similar row across the top
of the columns allows the columns to expand"), and below it the
columns, each with its own tab tower and windows.

It also implements the cross-column part of window movement: the user
"points at the tag of a window, presses the right button, drags the
window to where it is desired, and releases"; the drop lands in
whatever column contains the release point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.column import Column
from repro.core.frame import Frame, Rect
from repro.core.window import Subwindow, Window


class Region(enum.Enum):
    """What a screen position hits."""

    HEADER = "header"      # the column-expand strip across the top
    TAB = "tab"            # a square in a column's tab tower
    TAG = "tag"            # a window's tag line
    BODY = "body"          # a window's body
    BACKGROUND = "background"  # empty column space


@dataclass(frozen=True)
class Hit:
    """The result of resolving a screen position.

    For TAG/BODY hits, *pos* is the character offset in the subwindow's
    text that the point indicates.
    """

    region: Region
    column: Column | None = None
    window: Window | None = None
    pos: int = 0

    @property
    def subwindow(self) -> Subwindow | None:
        if self.region is Region.TAG:
            return Subwindow.TAG
        if self.region is Region.BODY:
            return Subwindow.BODY
        return None


class Screen:
    """Screen geometry: header row at the top, columns beneath.

    *ncolumns* defaults to the paper's "usually two side-by-side
    columns"; widths start equal and may be changed by
    :meth:`expand_column`.
    """

    def __init__(self, width: int = 100, height: int = 40,
                 ncolumns: int = 2) -> None:
        if width < 2 * ncolumns or height < 3:
            raise ValueError(f"screen {width}x{height} too small")
        self.rect = Rect(0, 0, width, height)
        self.columns: list[Column] = []
        self._expanded: int | None = None
        edges = self._equal_edges(ncolumns)
        for i in range(ncolumns):
            self.columns.append(
                Column(Rect(edges[i], 1, edges[i + 1], height)))

    # -- geometry -----------------------------------------------------------

    def _equal_edges(self, n: int) -> list[int]:
        width = self.rect.width
        return [self.rect.x0 + (width * i) // n for i in range(n)] + [self.rect.x1]

    def _apply_edges(self, edges: list[int]) -> None:
        for column, (x0, x1) in zip(self.columns, zip(edges, edges[1:])):
            column.resize(Rect(x0, 1, x1, self.rect.y1))

    def expand_column(self, index: int) -> None:
        """Header-strip click: toggle giving column *index* most of the width.

        Expanded, the column takes ~75% of the screen; clicking its
        square again restores equal widths.
        """
        if not 0 <= index < len(self.columns):
            raise IndexError(f"no column {index}")
        if self._expanded == index:
            self._expanded = None
            self._apply_edges(self._equal_edges(len(self.columns)))
            return
        self._expanded = index
        n = len(self.columns)
        if n == 1:
            return
        wide = (self.rect.width * 3) // 4
        narrow = (self.rect.width - wide) // (n - 1)
        edges = [self.rect.x0]
        for i in range(n):
            edges.append(edges[-1] + (wide if i == index else narrow))
        edges[-1] = self.rect.x1
        self._apply_edges(edges)

    def column_at(self, x: int) -> Column | None:
        """The column whose horizontal span contains *x*."""
        for column in self.columns:
            if column.rect.x0 <= x < column.rect.x1:
                return column
        return None

    def column_of(self, window: Window) -> Column | None:
        """The column currently holding *window*."""
        for column in self.columns:
            if window in column.windows:
                return column
        return None

    def all_windows(self) -> list[Window]:
        """Every window on the screen, column by column."""
        out: list[Window] = []
        for column in self.columns:
            out.extend(column.tab_order())
        return out

    # -- hit testing ------------------------------------------------------------

    def hit(self, x: int, y: int) -> Hit:
        """Resolve screen cell (x, y) to a region, window and text offset."""
        if not self.rect.contains(x, y):
            return Hit(Region.BACKGROUND)
        if y == self.rect.y0:
            return Hit(Region.HEADER, column=self.column_at(x))
        column = self.column_at(x)
        if column is None:
            return Hit(Region.BACKGROUND)
        if x == column.rect.x0:
            window = column.tab_at(y)
            return Hit(Region.TAB, column=column, window=window)
        window = column.window_at(y)
        if window is None:
            return Hit(Region.BACKGROUND, column=column)
        rect = column.win_rect(window)
        assert rect is not None
        col_in_text = x - column.body_x0
        if y == rect.y0:
            frame = Frame(column.text_width, 1)
            pos = frame.char_of_point(window.tag, 0, 0, col_in_text)
            return Hit(Region.TAG, column=column, window=window, pos=pos)
        frame = Frame(column.text_width, rect.height - 1)
        pos = frame.char_of_point(window.body, window.org,
                                  y - rect.y0 - 1, col_in_text)
        return Hit(Region.BODY, column=column, window=window, pos=pos)

    # -- window movement ------------------------------------------------------------

    def move_window(self, window: Window, x: int, y: int) -> None:
        """Right-button drop of *window* at (x, y).

        Moves between columns when the drop point lies in another
        column; the receiving column does the local rearrangement.
        """
        src = self.column_of(window)
        dst = self.column_at(x) or src
        if dst is None:
            return
        if src is not None and src is not dst:
            src.remove(window)
        dst.move_to(window, max(y, dst.rect.y0))

    def resize(self, width: int, height: int) -> None:
        """Give the whole screen a new size, re-tiling the columns.

        Column width proportions are preserved; every window is
        refitted by its column (tags stay visible or windows hide, per
        the usual rule).
        """
        if width < 2 * len(self.columns) or height < 3:
            raise ValueError(f"screen {width}x{height} too small")
        old_width = self.rect.width
        fractions = [column.rect.width / old_width
                     for column in self.columns]
        self.rect = Rect(0, 0, width, height)
        edges = [0]
        for fraction in fractions[:-1]:
            edges.append(edges[-1] + max(2, int(width * fraction)))
        edges.append(width)
        self._apply_edges(edges)

    def remove_window(self, window: Window) -> None:
        """Take *window* off the screen entirely (Close!)."""
        column = self.column_of(window)
        if column is not None:
            column.remove(window)
