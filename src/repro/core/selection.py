"""Selection expansion: the automation and defaults rules as functions.

Two of the paper's four design rules live here.

*Automation*: "If the text for selection or execution is the null
string, help invokes automatic actions to expand it to a file name or
similar context-dependent block of text."

*Defaults*: "help interprets a middle mouse button click (not double
click) anywhere in a word as a selection of the whole word"; "if Open
is applied to a null selection in a file name that does not begin with
a slash, the directory name is extracted from the file name in the tag
of the window and prepended".

And the guard on both: "Making any non-null selection disables all
such automatic actions: the resulting text is then exactly what is
selected."
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.text import Text
from repro.fs.vfs import join


def expand_execution(text: Text, q0: int, q1: int) -> tuple[int, int, str]:
    """The text a middle-button gesture at ``q0..q1`` executes.

    A sweep executes exactly what was swept; a click expands to the
    whole word under the point.  Returns ``(q0, q1, string)``.
    """
    if q0 != q1:
        return (q0, q1, text.slice(q0, q1))
    w0, w1 = text.command_at(q0)
    return (w0, w1, text.slice(w0, w1))


def expand_operand(text: Text, q0: int, q1: int) -> tuple[int, int, str]:
    """The operand a command takes from a selection at ``q0..q1``.

    A non-null selection is literal; a null selection expands to the
    file-name-like token around the point (which may carry a ``:line``
    suffix), including the name just *before* the point — Figure 3's
    "the selection is automatically the null string at the end of the
    file name".
    """
    if q0 != q1:
        return (q0, q1, text.slice(q0, q1))
    f0, f1 = text.filename_at(q0)
    return (f0, f1, text.slice(f0, f1))


# A file address is a name optionally suffixed ":N" for a 1-based line:
# "help.c:27".  The paper notes the real syntax allowed general
# locations; line numbers are all it uses and all we implement.
_ADDRESS = re.compile(r"^(?P<name>.*?)(?::(?P<line>\d+))?$", re.DOTALL)


@dataclass(frozen=True)
class FileAddress:
    """A file name with an optional line number."""

    name: str
    line: int | None = None

    def __str__(self) -> str:
        return self.name if self.line is None else f"{self.name}:{self.line}"


def parse_address(s: str) -> FileAddress:
    """Split ``name:27`` into a :class:`FileAddress`.

    >>> parse_address('text.c:32')
    FileAddress(name='text.c', line=32)
    >>> parse_address('/lib/font/bit/pelm/9.0').line is None
    True
    """
    match = _ADDRESS.match(s.strip())
    assert match is not None
    name = match.group("name")
    line = match.group("line")
    # A bare "name." followed by digits could be a version suffix like
    # "9.0"; only a colon separates a line, so that case never reaches
    # here — the regex demands the colon.
    return FileAddress(name, int(line) if line is not None else None)


def resolve_name(name: str, context_dir: str) -> str:
    """Absolute path for *name* in a window whose context is *context_dir*.

    Names beginning with ``/`` stand alone; anything else gets the
    window's directory prepended ("that Open prepends the directory
    name gives each window a context").
    """
    if name.startswith("/"):
        from repro.fs.vfs import normalize
        return normalize(name)
    return join(context_dir, name)
