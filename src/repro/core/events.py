"""The three-button mouse and keyboard model.

The paper's interface grammar, in full:

- **left** button selects text (press, sweep, release);
- **middle** selects text *for execution* — releasing executes it, and
  a click (no sweep) anywhere in a word executes the whole word;
- **right** rearranges windows (press in a tag, drag, release);
- **chords**: while the left button is still held after a selection,
  clicking middle executes Cut and clicking right executes Paste; one
  may click middle then right, still holding left, to cut-and-paste
  (snarfing the text for later).

Typing is not a gesture: "newline is just a character."

:class:`MouseMachine` turns a raw press/drag/release stream into the
semantic :class:`Gesture` records above.  The machine is deliberately
tiny — the *brevity* rule says there are no other gestures to parse.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Button(enum.IntFlag):
    """Mouse buttons as a bitmask (several may be down during a chord)."""

    NONE = 0
    LEFT = 1
    MIDDLE = 2
    RIGHT = 4


@dataclass(frozen=True)
class Point:
    """A screen position in character cells."""

    x: int
    y: int


@dataclass(frozen=True)
class Mouse:
    """A raw mouse sample: position plus currently held buttons."""

    x: int
    y: int
    buttons: Button = Button.NONE


class GestureKind(enum.Enum):
    """Semantic interpretation of a completed (or chorded) gesture."""

    SELECT = "select"        # left sweep released: select start..end
    EXECUTE = "execute"      # middle sweep released: execute start..end
    MOVE = "move"            # right drag released: move window start -> end
    SWEEP = "sweep"          # in-progress left sweep (live selection update)
    CHORD_CUT = "chord-cut"      # middle clicked while left held
    CHORD_PASTE = "chord-paste"  # right clicked while left held


@dataclass(frozen=True)
class Gesture:
    """One semantic mouse action delivered to the application."""

    kind: GestureKind
    start: Point
    end: Point

    @property
    def is_click(self) -> bool:
        """True when the button never moved: a click, not a sweep."""
        return self.start == self.end


@dataclass
class MouseMachine:
    """State machine from raw button transitions to gestures.

    Feed it :meth:`press`, :meth:`drag` and :meth:`release`; each call
    returns the (possibly empty) list of gestures it completed.  The
    machine tracks exactly one *primary* button — the first one pressed
    — and treats later presses as chords (left primary) or ignores them
    (the original help leaves middle/right chords undefined).
    """

    primary: Button = Button.NONE
    start: Point | None = None
    current: Point | None = None
    held: Button = Button.NONE
    _chorded: bool = field(default=False, repr=False)

    def press(self, x: int, y: int, button: Button) -> list[Gesture]:
        """A button went down at (x, y)."""
        if button not in (Button.LEFT, Button.MIDDLE, Button.RIGHT):
            raise ValueError(f"not a single button: {button!r}")
        self.held |= button
        if self.primary is Button.NONE:
            self.primary = button
            self.start = Point(x, y)
            self.current = Point(x, y)
            self._chorded = False
            return []
        # A secondary press: only left-primary chords mean anything.
        if self.primary is Button.LEFT and self.start is not None:
            self._chorded = True
            assert self.current is not None
            if button is Button.MIDDLE:
                return [Gesture(GestureKind.CHORD_CUT, self.start, self.current)]
            if button is Button.RIGHT:
                return [Gesture(GestureKind.CHORD_PASTE, self.start, self.current)]
        return []

    def drag(self, x: int, y: int) -> list[Gesture]:
        """The mouse moved with at least one button down."""
        if self.primary is Button.NONE or self.start is None:
            return []
        self.current = Point(x, y)
        if self.primary is Button.LEFT and not self._chorded:
            return [Gesture(GestureKind.SWEEP, self.start, self.current)]
        return []

    def release(self, x: int, y: int, button: Button) -> list[Gesture]:
        """A button came up at (x, y)."""
        self.held &= ~button
        if button is not self.primary or self.start is None:
            return []
        start, end = self.start, Point(x, y)
        chorded = self._chorded
        self.primary = Button.NONE
        self.start = self.current = None
        self._chorded = False
        if chorded:
            return []  # the chord already acted; the release is spent
        if button is Button.LEFT:
            return [Gesture(GestureKind.SELECT, start, end)]
        if button is Button.MIDDLE:
            return [Gesture(GestureKind.EXECUTE, start, end)]
        return [Gesture(GestureKind.MOVE, start, end)]

    def click(self, x: int, y: int, button: Button) -> list[Gesture]:
        """Convenience: press and release at the same point."""
        out = self.press(x, y, button)
        out += self.release(x, y, button)
        return out

    def sweep(self, x0: int, y0: int, x1: int, y1: int,
              button: Button) -> list[Gesture]:
        """Convenience: press at (x0, y0), drag, release at (x1, y1)."""
        out = self.press(x0, y0, button)
        out += self.drag(x1, y1)
        out += self.release(x1, y1, button)
        return out


# -- button names -------------------------------------------------------------

_BUTTON_NAMES = {Button.LEFT: "left", Button.MIDDLE: "middle",
                 Button.RIGHT: "right"}
_BUTTONS_BY_NAME = {name: button for button, name in _BUTTON_NAMES.items()}


def button_name(button: Button) -> str:
    """The canonical name of a single button (journal records use it)."""
    name = _BUTTON_NAMES.get(button)
    if name is None:
        raise ValueError(f"not a single button: {button!r}")
    return name


def button_from(name: str) -> Button:
    """The inverse of :func:`button_name`."""
    try:
        return _BUTTONS_BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown button name {name!r}") from None
