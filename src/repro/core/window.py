"""Windows: a tag line over a body of editable text.

"Each window has two subwindows, a single tag line across the top and
a body of text.  The tag typically contains the name of the file whose
text appears in the body."

Windows do not know where they are on screen — the column they live in
assigns extents (see :mod:`repro.core.column`).  They do own:

- the two :class:`~repro.core.text.Text` documents (tag and body),
- one selection per subwindow ("Each subwindow has its own selection"),
- the body origin (scroll position),
- the dirty flag that makes ``Put!`` appear in the tag.

The tag is plain editable text; the conventional command words
(``Close!``, ``Get!``, and ``Put!`` while dirty) are just words there,
bound to actions only when executed — nothing about them is special to
the window.
"""

from __future__ import annotations

import enum

from repro.core.text import Mark, Text

# Command words help writes into a fresh tag.  "By convention,
# commands ending in an exclamation mark take no arguments; they are
# window operations that apply to the window in which they are
# executed."
TAG_SUFFIX = "Close! Get!"
PUT_WORD = "Put!"


class Subwindow(enum.Enum):
    """Which half of a window a position refers to."""

    TAG = "tag"
    BODY = "body"


class Window:
    """One help window: numbered, named by its tag, holding a body."""

    def __init__(self, wid: int, name: str = "", body: str = "",
                 tag_suffix: str = TAG_SUFFIX) -> None:
        self.id = wid
        self.tag = Text(f"{name} {tag_suffix}".strip())
        self.body = Text(body)
        self.tag_sel = self.tag.add_mark(Mark(0, 0))
        self.body_sel = self.body.add_mark(Mark(0, 0))
        # the scroll origin is a mark so edits carry it along: deleting
        # text above the view must not leave org pointing past the end
        self._org_mark = self.body.add_mark(Mark(0, 0))
        self.dirty = False    # body modified since last Put!/Get!
        self.hidden = False   # covered completely (tab still shows it)
        self.y = 0            # top row (tag) in screen coordinates
        # shell-window state (the paper's "support for traditional
        # shell windows", implemented as an extension): text typed
        # after input_start runs when a newline completes the line
        self.is_shell = False
        self.shell_input_start = 0

    @property
    def org(self) -> int:
        """Body offset of the first displayed row."""
        return self._org_mark.q0

    @org.setter
    def org(self, value: int) -> None:
        self._org_mark.set(max(0, min(value, len(self.body))))

    # -- naming and context -------------------------------------------------

    def name(self) -> str:
        """The window's name: the first word of the tag.

        Window-operation words end in ``!`` by convention, so a tag
        beginning with one (an unnamed window's ``Close! Get!``) has
        no name.
        """
        first_line = self.tag.string().split("\n", 1)[0]
        parts = first_line.split()
        if not parts or parts[0].endswith("!"):
            return ""
        return parts[0]

    def is_directory(self) -> bool:
        """Directory windows carry a trailing slash in the tag."""
        return self.name().endswith("/")

    def directory(self) -> str:
        """The directory context commands executed here run in.

        "The various commands ... derive the directory in which to
        execute from the tag line of the window."  A directory window
        is its own context; a file window's context is its parent.
        """
        name = self.name()
        if not name.startswith("/"):
            return "/"
        if self.is_directory():
            from repro.fs.vfs import normalize
            return normalize(name)
        from repro.fs.vfs import dirname
        return dirname(name)

    def text(self, which: Subwindow) -> Text:
        """The Text of the given subwindow."""
        return self.tag if which is Subwindow.TAG else self.body

    def selection(self, which: Subwindow) -> Mark:
        """The selection Mark of the given subwindow."""
        return self.tag_sel if which is Subwindow.TAG else self.body_sel

    # -- tag maintenance -------------------------------------------------------

    def set_name(self, name: str, extra: str = "") -> None:
        """Rewrite the tag for *name*, keeping the conventional words.

        *extra* adds tool-specific words after the name (the Errors
        window, for instance, has none of the file commands).
        """
        words = [name] if name else []
        if self.dirty:
            words.append(PUT_WORD)
        if extra:
            words.append(extra)
        words.append(TAG_SUFFIX)
        self.tag.set_string(" ".join(words))
        self.tag_sel.set(0, 0)

    def mark_dirty(self) -> None:
        """Body changed: surface ``Put!`` in the tag if not already there."""
        if self.dirty:
            return
        self.dirty = True
        tag = self.tag.string()
        if PUT_WORD in tag.split():
            return
        name = self.name()
        insert_at = len(name) if tag.startswith(name) else 0
        self.tag.insert(insert_at, f" {PUT_WORD}" if insert_at else f"{PUT_WORD} ")

    def mark_clean(self) -> None:
        """Body saved or reloaded: retract ``Put!`` from the tag."""
        if not self.dirty:
            return
        self.dirty = False
        tag = self.tag.string()
        idx = tag.find(f" {PUT_WORD}")
        if idx >= 0:
            self.tag.delete(idx, idx + len(PUT_WORD) + 1)
            return
        idx = tag.find(f"{PUT_WORD} ")
        if idx >= 0:
            self.tag.delete(idx, idx + len(PUT_WORD) + 1)

    # -- editing ----------------------------------------------------------------

    def type_text(self, which: Subwindow, s: str) -> None:
        """Type *s* into a subwindow: replace its selection, caret after.

        "Typed text replaces the selection in the subwindow under the
        mouse."  Newline is just a character.
        """
        text = self.text(which)
        sel = self.selection(which)
        with text.group():
            q0 = sel.q0
            text.delete(sel.q0, sel.q1)
            text.insert(q0, s)
        sel.set(q0 + len(s))
        if which is Subwindow.BODY and s:
            self.mark_dirty()

    def delete_selection(self, which: Subwindow) -> str:
        """Remove the subwindow's selected text, returning it."""
        text = self.text(which)
        sel = self.selection(which)
        removed = text.delete(sel.q0, sel.q1)
        if removed and which is Subwindow.BODY:
            self.mark_dirty()
        return removed

    def insert_at_selection(self, which: Subwindow, s: str) -> None:
        """Insert *s* at the selection start, selecting what was pasted."""
        text = self.text(which)
        sel = self.selection(which)
        q0 = sel.q0
        text.replace(sel.q0, sel.q1, s)
        sel.set(q0, q0 + len(s))
        if which is Subwindow.BODY and s:
            self.mark_dirty()

    def append(self, s: str) -> None:
        """Append *s* to the body (the ``bodyapp`` file's operation)."""
        if not s:
            return
        self.body.insert(len(self.body), s)

    def replace_body(self, s: str, dirty: bool = False) -> None:
        """Replace the whole body, resetting scroll and selection."""
        self.body.set_string(s)
        self.body_sel.set(0, 0)
        self.org = 0
        if dirty:
            self.mark_dirty()
        else:
            self.mark_clean()

    # -- scrolling ------------------------------------------------------------------

    def show_line(self, line_no: int) -> None:
        """Scroll so 1-based *line_no* is the top displayed line and select it.

        Implements the ``file.c:27`` feature: "the window will be
        positioned so the indicated line is visible and selected."
        """
        self.org = self.body.pos_of_line(line_no)
        start, end = self.body.line_span(line_no)
        self.body_sel.set(start, end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<window {self.id} {self.name()!r}>"
