"""Character-cell frames: laying text out in a rectangle.

The original ``help`` drew text with Plan 9's ``libframe`` (the crash
in the paper's example is inside ``frinsert``).  Our display is a grid
of character cells, so a frame is the pure function from (text, origin,
width, height) to a list of display lines, plus the two coordinate
maps every editor needs:

- *point to char*: where in the text did the user click?
- *char to point*: at which cell does offset *q* appear?

Long lines wrap, exactly as in the original; the origin is always the
offset of the first character of a display line.

Every method that takes text accepts either a plain string or a
:class:`~repro.core.text.Text` document.  The string path is the
original pure function, unchanged.  The document path is the fast one
production code uses: it lays out from a **bounded slice** of the
buffer (at most ``height * (width + 1)`` characters — a row can
consume at most ``width`` characters plus one newline), memoizes the
result keyed by ``(edit version, org, width, height)`` on the
document, and answers line arithmetic from the document's maintained
newline index instead of rescanning.  Cache hits and misses are
tallied in :mod:`repro.metrics.counter` so the speedup is observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.metrics.counter import incr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.text import Text

TextLike = Union[str, "Text"]


@dataclass(frozen=True)
class Rect:
    """A rectangle of character cells, half-open: ``x0 <= x < x1``."""

    x0: int
    y0: int
    x1: int
    y1: int

    @property
    def width(self) -> int:
        return max(0, self.x1 - self.x0)

    @property
    def height(self) -> int:
        return max(0, self.y1 - self.y0)

    @property
    def empty(self) -> bool:
        return self.width == 0 or self.height == 0

    def contains(self, x: int, y: int) -> bool:
        """True if cell (x, y) lies inside."""
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def intersects(self, other: "Rect") -> bool:
        """True if the rectangles share at least one cell."""
        return (self.x0 < other.x1 and other.x0 < self.x1
                and self.y0 < other.y1 and other.y0 < self.y1)

    def inset_rows(self, top: int = 0, bottom: int = 0) -> "Rect":
        """A copy with *top* rows removed above and *bottom* below."""
        return Rect(self.x0, self.y0 + top, self.x1, self.y1 - bottom)


@dataclass(frozen=True)
class DisplayLine:
    """One laid-out row: text offsets ``start..end`` shown at row *row*.

    *end* excludes the newline (if the line ended in one); *hard* is
    True when the row ends because of a newline rather than wrapping.
    """

    row: int
    start: int
    end: int
    hard: bool


class Frame:
    """Lays out a window body (or tag) in ``width`` x ``height`` cells."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 0:
            raise ValueError(f"bad frame size {width}x{height}")
        self.width = width
        self.height = height

    def layout(self, text: TextLike, org: int = 0) -> list[DisplayLine]:
        """Display lines for *text* starting at offset *org*.

        Stops after ``height`` rows.  An empty tail (org at end of
        text) still yields one empty row so the cursor has a home.

        With a document, the result is memoized on the document keyed
        by ``(version, org, width, height)`` and computed from a
        bounded slice; treat the returned list as immutable.
        """
        if isinstance(text, str):
            return self._layout_region(text, 0, org, len(text))
        return self._layout_doc(text, org)

    def _layout_doc(self, doc: "Text", org: int) -> list[DisplayLine]:
        key = (org, self.width, self.height)
        version = doc.version
        cached = doc._layout_cache.get(key)
        if cached is not None and cached[0] == version:
            incr("layout.cache_hit")
            return cached[1]  # type: ignore[return-value]
        incr("layout.cache_miss")
        # a row consumes at most width characters plus one newline
        bound = org + self.height * (self.width + 1)
        chunk = doc.slice(org, bound)
        lines = self._layout_region(chunk, org, org, len(doc))
        cache = doc._layout_cache
        if len(cache) >= 256:
            cache.clear()
        cache[key] = (version, lines)
        return lines

    def _layout_region(self, s: str, base: int, org: int,
                       total: int) -> list[DisplayLine]:
        """Lay out from *org* given *s* = the text of ``base..base+len(s)``.

        *total* is the length of the whole text; offsets in the result
        are absolute.
        """
        lines: list[DisplayLine] = []
        pos = org
        width = self.width
        for row in range(self.height):
            if pos > total:
                break
            rel = pos - base
            # Search one past the width: a newline exactly at the wrap
            # column ends the row rather than forcing an empty wrap line.
            nl = s.find("\n", rel, rel + width + 1)
            if nl >= 0:
                lines.append(DisplayLine(row, pos, base + nl, hard=True))
                pos = base + nl + 1
            elif pos + width < total:
                lines.append(DisplayLine(row, pos, pos + width, hard=False))
                pos += width
            else:
                lines.append(DisplayLine(row, pos, total, hard=True))
                pos = total + 1
        return lines

    def visible_span(self, text: TextLike, org: int = 0) -> tuple[int, int]:
        """Offsets ``(org, end)`` of the text visible from *org*."""
        lines = self.layout(text, org)
        if not lines:
            return (org, org)
        last = lines[-1]
        end = last.end + (1 if last.hard and last.end < len(text) else 0)
        return (org, end)

    def rows_used(self, text: TextLike, org: int = 0) -> int:
        """How many rows the text from *org* occupies (max ``height``)."""
        return len(self.layout(text, org))

    def char_of_point(self, text: TextLike, org: int, row: int, col: int) -> int:
        """Text offset of a click at cell (*col*, *row*).

        Clicks beyond a line's end map to the line's last position;
        clicks below the laid-out text map to its end — the forgiving
        behaviour a mouse-first interface needs.
        """
        lines = self.layout(text, org)
        if not lines:
            return org
        if row >= len(lines):
            return lines[-1].end
        line = lines[max(0, row)]
        return min(line.start + max(0, col), line.end)

    def point_of_char(self, text: TextLike, org: int,
                      pos: int) -> tuple[int, int] | None:
        """Cell (row, col) where offset *pos* is displayed, or None.

        Offsets on a newline report the cell just past the line's last
        character (where the caret would sit).
        """
        for line in self.layout(text, org):
            if line.start <= pos <= line.end:
                return (line.row, pos - line.start)
        return None

    def origin_for_line(self, text: TextLike, line_no: int) -> int:
        """Origin that puts 1-based *line_no* on the top row.

        Wrapping is ignored here — origins always start hard lines,
        which matches how ``Open file.c:27`` positions a window.
        """
        if line_no <= 1:
            return 0
        if not isinstance(text, str):
            # past the last newline the origin sticks at the final
            # line's start, exactly like the scanning loop below
            return text.pos_of_line(min(line_no, text.newline_count() + 1))
        pos = 0
        for _ in range(line_no - 1):
            nl = text.find("\n", pos)
            if nl < 0:
                return pos
            pos = nl + 1
        return pos

    def scroll_origins(self, text: TextLike) -> list[int]:
        """Offsets of every hard line start — the legal origins."""
        if not isinstance(text, str):
            buf = text._buf
            return [0] + [buf.newline_position(i) + 1
                          for i in range(buf.newline_count())]
        origins = [0]
        pos = text.find("\n")
        while pos >= 0:
            origins.append(pos + 1)
            pos = text.find("\n", pos + 1)
        if origins[-1] > len(text):
            origins.pop()
        return origins

    def scroll(self, text: TextLike, org: int, lines: int) -> int:
        """Origin after scrolling *lines* display rows (negative = up)."""
        if lines == 0:
            return org
        if lines > 0:
            layout = self.layout(text, org)
            for line in layout:
                if lines == 0:
                    break
                org = line.end + (1 if line.hard else 0)
                lines -= 1
            return min(org, len(text))
        if not isinstance(text, str):
            return self._scroll_up_doc(text, org, lines)
        # Scrolling up: walk hard-line starts before org, then re-wrap.
        starts = [o for o in self.scroll_origins(text) if o <= org]
        rows: list[int] = []
        prev_start = starts[-1] if starts else 0
        # expand wrapped rows of preceding hard lines until we have enough
        idx = len(starts) - 1
        while idx >= 0 and len(rows) < -lines:
            start = starts[idx]
            end = org if idx == len(starts) - 1 else starts[idx + 1] - 1
            row_starts = list(range(start, max(end, start + 1), self.width))
            if idx == len(starts) - 1:
                row_starts = [r for r in row_starts if r < org] or []
            rows = row_starts + rows
            idx -= 1
        if not rows:
            return prev_start if org > 0 else 0
        return rows[max(0, len(rows) + lines)]

    def _scroll_up_doc(self, doc: "Text", org: int, lines: int) -> int:
        """Scroll-up via the newline index: O(rows scrolled), not O(file).

        Replays the string algorithm above, but walks hard lines
        backwards from the one containing *org* and keeps only the row
        starts that can still be the answer.
        """
        need = -lines
        rows: list[int] = []
        cur = doc.line_of(org)
        first = True
        while cur >= 1 and len(rows) < need:
            start = doc.pos_of_line(cur)
            end = org if first else doc.pos_of_line(cur + 1) - 1
            r = range(start, max(end, start + 1), self.width)
            if first:
                # only row starts strictly before org count
                r = r[:max(0, (org - start + self.width - 1) // self.width)]
            remaining = need - len(rows)
            rows = list(r[max(0, len(r) - remaining):]) + rows
            first = False
            cur -= 1
        if not rows:
            return doc.pos_of_line(doc.line_of(org)) if org > 0 else 0
        return rows[max(0, len(rows) - need)]
