"""The assembled ``help`` application.

This is the program the paper describes: "a self-contained program,
more like a shell than a library, that joins users and applications."
A :class:`Help` instance owns

- a :class:`~repro.fs.namespace.Namespace` through which *everything*
  is read and written,
- the :class:`~repro.core.screen.Screen` of columns and windows,
- the cut (*snarf*) buffer and the **current selection** — "the one
  with the most recent selection or typed text",
- the :class:`~repro.core.execute.Executor` binding middle-button text
  to builtins and external commands,
- an :class:`~repro.metrics.counter.InteractionStats` tally, because
  the paper's evaluation counts clicks and keystrokes.

Events arrive either raw (``mouse_press``/``mouse_drag``/
``mouse_release``/``type_text``, exactly what a display server would
deliver) or through the semantic conveniences built on them
(``left_click``, ``middle_click``, ``sweep`` ...) that tests and
examples use.  Both paths go through the same
:class:`~repro.core.events.MouseMachine`, so chords and sweeps behave
identically however they are driven.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.core.column import Column
from repro.core.events import (
    Button,
    Gesture,
    GestureKind,
    MouseMachine,
    Point,
    button_name,
)
from repro.core.execute import ExecContext, Executor, Runner
from repro.core.screen import Region, Screen
from repro.core.selection import expand_execution
from repro.core.window import Subwindow, Window
from repro.fs.namespace import Namespace
from repro.metrics.counter import InteractionStats

# Name of the window external command output lands in.
ERRORS = "Errors"

_BUTTON_NAMES = {Button.LEFT: "left", Button.MIDDLE: "middle",
                 Button.RIGHT: "right"}


def _opt(value) -> str:
    """A journal token for an optional field: '-' absent, '=v' present."""
    return "-" if value is None else f"={value}"


class Help:
    """One running help session."""

    def __init__(self, ns: Namespace | None = None, width: int = 100,
                 height: int = 40, ncolumns: int = 2,
                 runner: Runner | None = None,
                 tools_dir: str = "/help", context=None) -> None:
        # context is a repro.session.SessionContext; a session-scoped
        # Help takes its namespace (and metrics ledger) from it, a
        # bare Help still accepts the namespace positionally.
        if ns is None:
            if context is None:
                raise TypeError("Help needs a namespace or a context")
            ns = context.ns
        self.context = context
        self.ns = ns
        self.screen = Screen(width, height, ncolumns)
        self.windows: dict[int, Window] = {}
        self._next_id = 1
        self.snarf = ""
        self.current: tuple[Window, Subwindow] | None = None
        self.running = True
        self.tools_dir = tools_dir
        self.machine = MouseMachine()
        self.mouse = Point(0, 0)
        self.executor = Executor(self, runner)
        self.stats = InteractionStats()
        # a repro.journal.recorder.SessionRecorder, installed by
        # attach() (or carried in by the session context)
        self.journal = None if context is None else context.recorder

    @property
    def metrics(self):
        """This session's ledger (the process default when unscoped)."""
        if self.context is not None:
            return self.context.metrics
        from repro.metrics.counter import current_registry
        return current_registry()

    def _record(self, kind: str, *fields):
        """The journal tee around one mutating entry point.

        With no recorder attached this is free; with one, the record is
        appended (and, at top level, flushed) *before* the method body
        runs — the write-ahead ordering crash recovery depends on.
        """
        if self.journal is None:
            return nullcontext()
        return self.journal.recording(kind, fields)

    # -- boot ---------------------------------------------------------------

    def boot(self) -> None:
        """Load the boot window and the tools column (Figure 4).

        "When help starts it loads a set of 'tools' ... into the right
        hand column of its initially two-column screen.  These are
        files with names like /help/edit/stf ... Each is a plain text
        file that lists the names of the commands available as parts
        of the tool."
        """
        self.new_window("help/Boot", column=self.screen.columns[0],
                        tag_suffix="Exit")
        tools_column = self.screen.columns[-1]
        if not self.ns.isdir(self.tools_dir):
            return
        for name in sorted(self.ns.listdir(self.tools_dir)):
            stf = f"{self.tools_dir}/{name}/stf"
            if self.ns.exists(stf) and not self.ns.isdir(stf):
                self.new_window(stf, self.ns.read(stf), column=tools_column)

    # -- window management ----------------------------------------------------

    def new_window(self, name: str, body: str = "",
                   near: Window | None = None,
                   column: Column | None = None,
                   tag_suffix: str | None = None) -> Window:
        """Create a window, placed by the paper's heuristic.

        The column is, in order of preference: the explicit *column*,
        the column of *near*, the column of the current selection
        ("near the current selected text"), or the least crowded one.
        """
        with self._record(
                "newwin",
                _opt(None if column is None
                     else self.screen.columns.index(column)),
                _opt(None if near is None else near.id),
                _opt(tag_suffix), name, body):
            window = (Window(self._next_id, name, body)
                      if tag_suffix is None
                      else Window(self._next_id, name, body, tag_suffix))
            self._next_id += 1
            target = column
            if target is None and near is not None:
                target = self.screen.column_of(near)
            if target is None and self.current is not None:
                target = self.screen.column_of(self.current[0])
            if target is None:
                target = min(self.screen.columns, key=lambda c: len(c.windows))
            target.place(window)
            self.windows[window.id] = window
            return window

    def close_window(self, window: Window) -> None:
        """Remove *window* from the screen and forget it."""
        with self._record("close", window.id):
            self.screen.remove_window(window)
            self.windows.pop(window.id, None)
            if self.current is not None and self.current[0] is window:
                self.current = None

    def window_by_name(self, name: str) -> Window | None:
        """The first window whose tag names *name* (files are unique)."""
        for window in self.windows.values():
            if window.name() == name:
                return window
        return None

    def make_visible(self, window: Window) -> None:
        """Guarantee *window* shows, as a tab click would."""
        column = self.screen.column_of(window)
        if column is not None:
            column.make_visible(window)

    # -- files ----------------------------------------------------------------

    def directory_listing(self, path: str) -> str:
        """The body text of a directory window: entries, dirs slashed."""
        from repro.fs.vfs import join
        lines = []
        for name in self.ns.listdir(path):
            suffix = "/" if self.ns.isdir(join(path, name)) else ""
            lines.append(name + suffix)
        return "".join(line + "\n" for line in lines)

    def open_path(self, path: str, line: int | None = None,
                  near: Window | None = None) -> Window | None:
        """The Open operation on a resolved absolute *path*.

        Directories get a listing body and a trailing slash in the tag
        (Figure 1); an already-open file's window is just made visible;
        a ``line`` positions and selects that line (Figure 8).
        """
        with self._record("open", path, _opt(line),
                          _opt(None if near is None else near.id)):
            if self.ns.isdir(path):
                name = path if path.endswith("/") else path + "/"
                existing = self.window_by_name(name)
                if existing is not None:
                    self.make_visible(existing)
                    return existing
                return self.new_window(name, self.directory_listing(path),
                                       near=near)
            existing = self.window_by_name(path)
            if existing is not None:
                self.make_visible(existing)
                if line is not None:
                    existing.show_line(line)
                return existing
            if not self.ns.exists(path):
                self.post_error(f"help: '{path}' does not exist\n")
                return None
            window = self.new_window(path, self.ns.read(path), near=near)
            if line is not None:
                window.show_line(line)
            return window

    # -- the Errors window ----------------------------------------------------

    def errors_window(self) -> Window:
        """The Errors window, created on demand.

        "The standard and error outputs are directed to a special
        window, called Errors, that will be created automatically if
        needed."
        """
        existing = self.window_by_name(ERRORS)
        if existing is None:
            existing = self.new_window(ERRORS, tag_suffix="Close!")
        return existing

    def post_error(self, text: str) -> None:
        """Append *text* to the Errors window (and keep it visible)."""
        if not text:
            return
        window = self.errors_window()
        window.append(text)
        self.make_visible(window)

    # -- selection ------------------------------------------------------------

    def select(self, window: Window, q0: int, q1: int,
               subwindow: Subwindow = Subwindow.BODY) -> None:
        """Set a subwindow's selection and make it the current one."""
        with self._record("select", window.id, subwindow.value, q0, q1):
            text = window.text(subwindow)
            lo = max(0, min(q0, len(text)))
            hi = max(0, min(q1, len(text)))
            window.selection(subwindow).set(min(lo, hi), max(lo, hi))
            self.current = (window, subwindow)

    def point_at(self, window: Window, pos: int,
                 subwindow: Subwindow = Subwindow.BODY) -> None:
        """A null selection at *pos*: what a bare left click leaves."""
        self.select(window, pos, pos, subwindow)

    def selected_text(self) -> str:
        """The text of the current selection ('' if none)."""
        if self.current is None:
            return ""
        window, sub = self.current
        sel = window.selection(sub)
        return window.text(sub).slice(sel.q0, sel.q1)

    # -- execution ------------------------------------------------------------

    def execute_text(self, window: Window, text: str,
                     subwindow: Subwindow = Subwindow.BODY) -> None:
        """Execute *text* as though middle-swept in *window*.

        The programmatic twin of the middle button, used by the help
        file server's ``event`` path and by tests.
        """
        with self._record("exec", window.id, subwindow.value, text):
            self.stats.note(
                f"execute:{text.split()[0] if text.split() else ''}")
            self.executor.execute(window, subwindow, text)

    def exec_builtin(self, name: str, window: Window,
                     subwindow: Subwindow = Subwindow.BODY,
                     arg: str = "") -> None:
        """Invoke built-in *name* directly (chords use this for Cut/Paste)."""
        with self._record("builtin", name, window.id, subwindow.value, arg):
            fn = self.executor.builtins[name]
            fn(ExecContext(self, window, subwindow, name, arg))

    # -- raw events -----------------------------------------------------------

    def mouse_press(self, x: int, y: int, button: Button) -> None:
        """A mouse button went down."""
        with self._record("mouse-press", x, y, button_name(button)):
            self.mouse = Point(x, y)
            self.stats.press(_BUTTON_NAMES.get(button, "?"))
            gestures = self.machine.press(x, y, button)
            if (button is Button.LEFT and self.machine.primary is Button.LEFT
                    and not gestures):
                # A left press starts a selection immediately: chords that
                # fire before any drag must see the null selection here.
                hit = self.screen.hit(x, y)
                if hit.window is not None and hit.subwindow is not None:
                    self.select(hit.window, hit.pos, hit.pos, hit.subwindow)
            for gesture in gestures:
                self._handle(gesture)

    def mouse_drag(self, x: int, y: int) -> None:
        """The mouse moved with a button held."""
        with self._record("mouse-drag", x, y):
            self.mouse = Point(x, y)
            for gesture in self.machine.drag(x, y):
                self._handle(gesture)

    def mouse_release(self, x: int, y: int, button: Button) -> None:
        """A mouse button came up."""
        with self._record("mouse-release", x, y, button_name(button)):
            self.mouse = Point(x, y)
            for gesture in self.machine.release(x, y, button):
                self._handle(gesture)

    def mouse_move(self, x: int, y: int) -> None:
        """The mouse moved with no buttons (typing targets follow it)."""
        with self._record("mouse-move", x, y):
            self.mouse = Point(x, y)

    def type_text(self, s: str) -> None:
        """Type *s* into the subwindow under the mouse.

        "Typed text replaces the selection in the subwindow under the
        mouse.  Note that typing does not execute commands: newline is
        just a character."
        """
        with self._record("type", s):
            self.stats.keys(len(s))
            hit = self.screen.hit(self.mouse.x, self.mouse.y)
            if hit.window is not None and hit.subwindow is not None:
                target, sub = hit.window, hit.subwindow
            elif self.current is not None:
                target, sub = self.current
            else:
                return
            target.type_text(sub, s)
            self.current = (target, sub)
            if target.is_shell and sub is Subwindow.BODY and "\n" in s:
                self._shell_lines(target)

    def _shell_lines(self, window: Window) -> None:
        """Run completed input lines of a shell window.

        Everything between the prompt (``shell_input_start``) and a
        typed newline is a command; its output lands in the window,
        followed by a fresh prompt.
        """
        if self.executor.runner is None:
            return
        while True:
            body = window.body.string()
            start = min(window.shell_input_start, len(body))
            newline = body.find("\n", start)
            if newline < 0:
                return
            command = body[start:newline]
            window.shell_input_start = newline + 1
            if command.strip():
                result = self.executor.runner(
                    command, window.directory(), {"helpdir": window.directory()})
                window.append(result.stdout)
                window.append(result.stderr)
            window.append("% ")
            window.shell_input_start = len(window.body)
            window.body_sel.set(len(window.body))
            window.mark_clean()

    # -- semantic conveniences ------------------------------------------------

    def left_click(self, x: int, y: int) -> None:
        """Press and release the left button at (x, y)."""
        self.mouse_press(x, y, Button.LEFT)
        self.mouse_release(x, y, Button.LEFT)

    def middle_click(self, x: int, y: int) -> None:
        """Press and release the middle button at (x, y)."""
        self.mouse_press(x, y, Button.MIDDLE)
        self.mouse_release(x, y, Button.MIDDLE)

    def sweep(self, x0: int, y0: int, x1: int, y1: int,
              button: Button = Button.LEFT) -> None:
        """Press at (x0, y0), drag to and release at (x1, y1)."""
        self.mouse_press(x0, y0, button)
        self.mouse_drag(x1, y1)
        self.mouse_release(x1, y1, button)

    def right_drag(self, x0: int, y0: int, x1: int, y1: int) -> None:
        """Drag a window by its tag from (x0, y0) to (x1, y1)."""
        self.sweep(x0, y0, x1, y1, Button.RIGHT)

    # -- gesture handling -----------------------------------------------------

    def _handle(self, gesture: Gesture) -> None:
        kind = gesture.kind
        if kind in (GestureKind.SWEEP, GestureKind.SELECT):
            self._handle_select(gesture)
        elif kind is GestureKind.EXECUTE:
            self._handle_execute(gesture)
        elif kind is GestureKind.MOVE:
            self._handle_move(gesture)
        elif kind is GestureKind.CHORD_CUT:
            # press and drag have already maintained the live selection
            if self.current is not None:
                self.stats.note("chord:cut")
                self.exec_builtin("Cut", *self.current)
        elif kind is GestureKind.CHORD_PASTE:
            if self.current is not None:
                self.stats.note("chord:paste")
                self.exec_builtin("Paste", *self.current)

    def _handle_select(self, gesture: Gesture) -> None:
        start = self.screen.hit(gesture.start.x, gesture.start.y)
        if start.region is Region.HEADER:
            if gesture.kind is GestureKind.SELECT and start.column is not None:
                self.screen.expand_column(
                    self.screen.columns.index(start.column))
            return
        if start.region is Region.TAB:
            if gesture.kind is not GestureKind.SELECT or start.column is None:
                return
            if start.window is not None:
                start.column.make_visible(start.window)
            else:
                self._scroll_click(start.column, gesture.start.y, up=True)
            return
        if start.window is None or start.subwindow is None:
            return
        end = self.screen.hit(gesture.end.x, gesture.end.y)
        q0 = start.pos
        q1 = end.pos if (end.window is start.window
                         and end.subwindow is start.subwindow) else q0
        self.select(start.window, min(q0, q1), max(q0, q1), start.subwindow)

    def _handle_execute(self, gesture: Gesture) -> None:
        start = self.screen.hit(gesture.start.x, gesture.start.y)
        if start.region is Region.TAB and start.column is not None:
            if start.window is None:
                self._scroll_click(start.column, gesture.start.y, up=False)
            return
        if start.window is None or start.subwindow is None:
            return
        text = start.window.text(start.subwindow)
        if gesture.is_click:
            q0, q1, command = expand_execution(text, start.pos, start.pos)
        else:
            end = self.screen.hit(gesture.end.x, gesture.end.y)
            pos1 = end.pos if (end.window is start.window
                               and end.subwindow is start.subwindow) else start.pos
            q0, q1 = min(start.pos, pos1), max(start.pos, pos1)
            q0, q1, command = expand_execution(text, q0, q1)
        self.stats.note(f"execute:{command.split()[0] if command.split() else ''}")
        self.executor.execute(start.window, start.subwindow, command, (q0, q1))

    def _handle_move(self, gesture: Gesture) -> None:
        start = self.screen.hit(gesture.start.x, gesture.start.y)
        if start.region is not Region.TAG or start.window is None:
            return
        self.screen.move_window(start.window, gesture.end.x, gesture.end.y)

    def _scroll_click(self, column: Column, y: int, up: bool) -> None:
        """A click in the tab strip beside a window's body scrolls it.

        Left scrolls toward the beginning, middle toward the end, by
        the number of rows between the window top and the click — the
        8 1/2-style scroll bar the paper's "only text, scroll bars,
        one simple kind of window" sentence implies.
        """
        window = column.window_at(y)
        if window is None:
            return
        rect = column.win_rect(window)
        frame = column.body_frame(window)
        if rect is None or frame is None:
            return
        amount = max(1, y - rect.y0)
        delta = -amount if up else amount
        window.org = frame.scroll(window.body, window.org, delta)

    def resize(self, width: int, height: int) -> None:
        """Resize the display (a reparented terminal, a new monitor)."""
        with self._record("resize", width, height):
            self.screen.resize(width, height)

    def hover(self, x: int, y: int) -> str:
        """What pointing at (x, y) would tell the user, without a click.

        The paper's own improvement idea for the tab tower: "perhaps
        the file name of each window should pop up alongside the tabs
        when the mouse is nearby."  Over a tab square this returns the
        window's name (hidden windows marked); elsewhere it returns ''.
        """
        hit = self.screen.hit(x, y)
        if hit.region is not Region.TAB or hit.window is None:
            return ""
        name = hit.window.name() or f"(window {hit.window.id})"
        return f"{name} (hidden)" if hit.window.hidden else name

    def scroll(self, window: Window, lines: int) -> None:
        """Scroll *window*'s body by *lines* rows (negative scrolls up)."""
        with self._record("scroll", window.id, lines):
            column = self.screen.column_of(window)
            if column is None:
                return
            frame = column.body_frame(window)
            if frame is None:
                return
            window.org = frame.scroll(window.body, window.org, lines)

    def replace_body(self, window: Window, text: str,
                     dirty: bool = False) -> None:
        """Replace *window*'s whole body (the programmatic file rewrite).

        The recordable twin of :meth:`repro.core.window.Window.replace_body`
        — tools and tests that rewrite a body wholesale should come
        through here so the journal sees the mutation.
        """
        with self._record("replace-body", window.id, int(dirty), text):
            window.replace_body(text, dirty=dirty)
