"""The built-in commands: Open, Cut, Paste, Snarf, New, and friends.

"By convention, capitalized commands represent built-in functions" and
"commands ending in an exclamation mark take no arguments; they are
window operations that apply to the window in which they are
executed."

A built-in is *not* a button: "Cut is not a 'button' in the usual
window system sense; it is just a word, wherever it appears, that is
bound to some action."  The binding lives here.

``Undo`` and ``Redo`` are this reproduction's extensions — the paper
lists undo first among the features "overdue" for the rewrite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.selection import expand_operand, parse_address, resolve_name
from repro.core.window import Subwindow, Window

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.execute import ExecContext, Executor

_REGISTRY: dict[str, Callable[["ExecContext"], None]] = {}


def builtin(name: str) -> Callable[[Callable[["ExecContext"], None]],
                                   Callable[["ExecContext"], None]]:
    """Register a function as the built-in command *name*."""
    def wrap(fn: Callable[["ExecContext"], None]) -> Callable[["ExecContext"], None]:
        _REGISTRY[name] = fn
        return fn
    return wrap


def register_all(executor: "Executor") -> None:
    """Install every built-in into *executor*."""
    for name, fn in _REGISTRY.items():
        executor.register(name, fn)


def _target(ctx: "ExecContext") -> tuple[Window, Subwindow]:
    """The window/subwindow a selection-oriented command acts on.

    That is the *current selection* — "the one with the most recent
    selection or typed text" — falling back to where the command was
    executed.
    """
    if ctx.help.current is not None:
        return ctx.help.current
    return (ctx.window, ctx.subwindow)


# -- editing -----------------------------------------------------------------


@builtin("Cut")
def cmd_cut(ctx: "ExecContext") -> None:
    """Delete the current selection, remembering it in the cut buffer."""
    window, sub = _target(ctx)
    removed = window.delete_selection(sub)
    if removed:
        ctx.help.snarf = removed


@builtin("Snarf")
def cmd_snarf(ctx: "ExecContext") -> None:
    """Remember the current selection without deleting it."""
    window, sub = _target(ctx)
    sel = window.selection(sub)
    grabbed = window.text(sub).slice(sel.q0, sel.q1)
    if grabbed:
        ctx.help.snarf = grabbed


@builtin("Paste")
def cmd_paste(ctx: "ExecContext") -> None:
    """Replace the current selection with the cut buffer's contents."""
    window, sub = _target(ctx)
    window.insert_at_selection(sub, ctx.help.snarf)


@builtin("Undo")
def cmd_undo(ctx: "ExecContext") -> None:
    """Undo the last body edit in the current window (extension)."""
    window, _ = _target(ctx)
    if not window.body.undo():
        ctx.help.post_error("help: nothing to undo\n")


@builtin("Redo")
def cmd_redo(ctx: "ExecContext") -> None:
    """Redo the last undone body edit in the current window (extension)."""
    window, _ = _target(ctx)
    if not window.body.redo():
        ctx.help.post_error("help: nothing to redo\n")


# -- files and windows --------------------------------------------------------


@builtin("Open")
def cmd_open(ctx: "ExecContext") -> None:
    """Open a file, directory, or ``file:line`` address in a window.

    With an argument (``Open /usr/rob/lib/profile``) the argument is
    the address.  Without one, the address comes from the current
    selection — expanded to the surrounding file name when null — and
    relative names get the selection's window directory prepended.
    """
    if ctx.arg:
        address_text = ctx.arg
        context_dir = ctx.window.directory()
        near: Window | None = ctx.window
    else:
        window, sub = _target(ctx)
        sel = window.selection(sub)
        _, _, address_text = expand_operand(window.text(sub), sel.q0, sel.q1)
        context_dir = window.directory()
        near = window
    if not address_text:
        ctx.help.post_error("help: Open: no file name\n")
        return
    address = parse_address(address_text)
    path = resolve_name(address.name, context_dir)
    ctx.help.open_path(path, line=address.line, near=near)


@builtin("New")
def cmd_new(ctx: "ExecContext") -> None:
    """Create a fresh empty window near the one executing the command."""
    ctx.help.new_window("", near=ctx.window)


@builtin("Close!")
def cmd_close(ctx: "ExecContext") -> None:
    """Delete the window the command was executed in."""
    ctx.help.close_window(ctx.window)


@builtin("Get!")
def cmd_get(ctx: "ExecContext") -> None:
    """Reload the window's body from the file (or directory) it names."""
    window = ctx.window
    name = window.name()
    if not name:
        ctx.help.post_error("help: Get!: window has no file name\n")
        return
    ns = ctx.help.ns
    bare = name.rstrip("/") or "/"
    if ns.isdir(bare):
        window.replace_body(ctx.help.directory_listing(bare))
        return
    if not ns.exists(bare):
        ctx.help.post_error(f"help: '{bare}' does not exist\n")
        return
    window.replace_body(ns.read(bare))


@builtin("Put!")
def cmd_put(ctx: "ExecContext") -> None:
    """Write the window's body back to the file named in its tag."""
    window = ctx.window
    name = window.name()
    if not name or name.endswith("/"):
        ctx.help.post_error("help: Put!: window has no plain file name\n")
        return
    try:
        ctx.help.ns.write(name, window.body.string())
    except Exception as exc:  # FsError carries a user-facing message
        ctx.help.post_error(f"help: Put!: {exc}\n")
        return
    window.mark_clean()


@builtin("Write")
def cmd_write(ctx: "ExecContext") -> None:
    """Write the *current selection's* window back to its file.

    The edit tool's spelling of Put! for use from the tools column:
    point into a window, then click Write in ``/help/edit/stf``.
    """
    window, _ = _target(ctx)
    name = window.name()
    if not name or name.endswith("/"):
        ctx.help.post_error("help: Write: window has no plain file name\n")
        return
    try:
        ctx.help.ns.write(name, window.body.string())
    except Exception as exc:
        ctx.help.post_error(f"help: Write: {exc}\n")
        return
    window.mark_clean()


@builtin("Clone!")
def cmd_clone(ctx: "ExecContext") -> None:
    """A second window on the same file (extension).

    The paper's rewrite wish list includes "multiple windows per
    file"; Clone! copies the window's name and body into a fresh
    window with an independent selection and scroll position.
    """
    window = ctx.window
    clone = ctx.help.new_window(window.name(), window.body.string(),
                                near=window)
    clone.org = window.org
    if window.dirty:
        clone.mark_dirty()


@builtin("Shell")
def cmd_shell(ctx: "ExecContext") -> None:
    """A traditional shell window (extension).

    Named ``<dir>/-rc`` so the window's directory context is where
    the shell runs; lines typed after the prompt execute when the
    newline lands — the one deliberate exception to "newline is just
    a character", which the paper's own wish list asks for.
    """
    window, _ = _target(ctx)
    directory = window.directory()
    shell_w = ctx.help.new_window(f"{directory}/-rc", near=window,
                                  tag_suffix="Close!")
    shell_w.is_shell = True
    shell_w.append("% ")
    shell_w.shell_input_start = len(shell_w.body)
    shell_w.body_sel.set(len(shell_w.body))
    ctx.help.current = (shell_w, Subwindow.BODY)


@builtin("Dump")
def cmd_dump(ctx: "ExecContext") -> None:
    """Write the session layout to a dump file (extension).

    ``Dump /path`` chooses the file; the default is
    ``/usr/rob/help.dump``.  ``Load`` restores it.
    """
    from repro.core import dump as dumpmod
    path = ctx.arg.strip() or "/usr/rob/help.dump"
    try:
        dumpmod.save(ctx.help, path)
    except Exception as exc:
        ctx.help.post_error(f"help: Dump: {exc}\n")


@builtin("Load")
def cmd_load(ctx: "ExecContext") -> None:
    """Recreate a dumped session (extension)."""
    from repro.core import dump as dumpmod
    path = ctx.arg.strip() or "/usr/rob/help.dump"
    try:
        dumpmod.restore(ctx.help, path)
    except Exception as exc:
        ctx.help.post_error(f"help: Load: {exc}\n")


@builtin("Exit")
def cmd_exit(ctx: "ExecContext") -> None:
    """Shut help down."""
    ctx.help.running = False


# -- searching ---------------------------------------------------------------


def _search(ctx: "ExecContext", literal: bool) -> None:
    window, sub = _target(ctx)
    needle = ctx.arg.strip("'\"")
    if not needle:
        sel = window.selection(sub)
        needle = window.text(sub).slice(sel.q0, sel.q1)
    if not needle:
        ctx.help.post_error("help: search: nothing to search for\n")
        return
    text = window.body
    start = window.body_sel.q1
    if literal:
        found = text.find(needle, start) or text.find(needle, 0)
    else:
        found = text.find_pattern(needle, start) or text.find_pattern(needle, 0)
    if found is None:
        ctx.help.post_error(f"help: '{needle}' not found\n")
        return
    window.body_sel.set(*found)
    window.show_line(text.line_of(found[0]))
    window.body_sel.set(*found)  # show_line reselects the line; restore
    ctx.help.current = (window, Subwindow.BODY)


@builtin("Text")
def cmd_text(ctx: "ExecContext") -> None:
    """Select the next literal occurrence of the argument (or selection)."""
    _search(ctx, literal=True)


@builtin("Pattern")
def cmd_pattern(ctx: "ExecContext") -> None:
    """Select the next regular-expression match of the argument."""
    _search(ctx, literal=False)
