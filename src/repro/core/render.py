"""ASCII screenshots of a help screen.

The paper's twelve figures are bitmaps of text screens; this renderer
reproduces them as character grids so the figure benchmarks can save
comparable artifacts.  Conventions:

- row 0 is the header strip; each column's expand square is ``#``;
- the left edge of each column carries the tab tower: ``#`` per
  window (visible or hidden, in order), then ``|`` down the column;
- each window's tag row is drawn between ``[`` and ``]`` so windows
  are visually separated the way the originals' borders separate them;
- the current selection can be marked in a footer (reverse video has
  no ASCII equivalent that preserves the grid).

Rendering is **damage tracked**: each ``Help`` instance keeps a
persistent canvas, and a repaint only redraws windows whose signature
— ``(tag version, body version, scroll origin, extent, width)`` —
changed since the canvas was last painted.  Any *structural* change
(column edges, window set, visibility, tag rows, screen size) repaints
everything, because geometry moves are rare and cheap relative to
getting partial-clear bookkeeping wrong.  ``render_screen(...,
full=True)`` bypasses and ignores the cache entirely; golden and
figure tests use it to prove the damage-tracked output is
byte-identical to a from-scratch paint.  Cells repainted and
full/damage render counts land in :mod:`repro.metrics.counter`.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

from repro.core.frame import Frame
from repro.metrics.counter import incr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.column import Column
    from repro.core.help import Help
    from repro.core.window import Window


class _ScreenCache:
    """Persistent canvas plus the signatures it was painted from."""

    __slots__ = ("canvas", "structure", "window_sigs")

    def __init__(self, canvas: list[list[str]], structure: object,
                 window_sigs: dict[int, object]) -> None:
        self.canvas = canvas
        self.structure = structure
        self.window_sigs = window_sigs


_screen_caches: "weakref.WeakKeyDictionary[Help, _ScreenCache]" = \
    weakref.WeakKeyDictionary()


def _structure_sig(help_app: "Help") -> object:
    """Everything that decides *where* things draw (not their text)."""
    screen = help_app.screen
    return (screen.rect,
            tuple((column.rect,
                   tuple(w.id for w in column.tab_order()),
                   tuple((w.id, w.y) for w in column.visible()))
                  for column in screen.columns))


def _window_sig(column: "Column", window: "Window") -> object:
    """Everything that decides what one window's cells look like."""
    rect = column.win_rect(window)
    return (window.tag.version, window.body.version, window.org,
            rect, column.text_width, column.body_x0)


def render_screen(help_app: "Help", footer: bool = True,
                  full: bool = False) -> str:
    """The whole screen as a character grid, one string.

    With ``full=True`` the persistent canvas is neither used nor
    touched: the grid is painted from scratch, which regression tests
    compare against the damage-tracked output.
    """
    rect = help_app.screen.rect
    cache = None if full else _screen_caches.get(help_app)
    structure = _structure_sig(help_app)
    if full or cache is None or cache.structure != structure:
        canvas = [[" "] * rect.width for _ in range(rect.height)]
        for column in help_app.screen.columns:
            _render_column(help_app, column, canvas)
        incr("render.full")
        incr("render.cells_repainted", rect.width * rect.height)
        if not full:
            sigs = {window.id: _window_sig(column, window)
                    for column in help_app.screen.columns
                    for window in column.visible()}
            _screen_caches[help_app] = _ScreenCache(canvas, structure, sigs)
    else:
        canvas = cache.canvas
        incr("render.damage")
        for column in help_app.screen.columns:
            for window in column.visible():
                sig = _window_sig(column, window)
                if cache.window_sigs.get(window.id) != sig:
                    _repaint_window(column, window, canvas)
                    cache.window_sigs[window.id] = sig
    lines = ["".join(row).rstrip() for row in canvas]
    out = "\n".join(lines)
    if footer:
        out += "\n" + _footer(help_app)
    return out


def _render_column(help_app: "Help", column, canvas: list[list[str]]) -> None:
    rect = column.rect
    # header square for this column
    canvas[0][rect.x0] = "#"
    # tab tower
    order = column.tab_order()
    for i in range(rect.y0, rect.y1):
        x = rect.x0
        canvas[i][x] = "#" if i - rect.y0 < len(order) else "|"
    # windows
    for window in column.visible():
        _paint_window(column, window, canvas)


def _paint_window(column, window, canvas: list[list[str]]) -> None:
    """Draw one window's tag row and body into the canvas."""
    wrect = column.win_rect(window)
    if wrect is None:
        return
    width = column.text_width
    tag = window.tag.string().split("\n", 1)[0]
    _put(canvas, wrect.y0, column.body_x0, ("[" + tag)[:width].ljust(width, " "))
    if width >= 1:
        end_x = column.body_x0 + width - 1
        if canvas[wrect.y0][end_x] == " ":
            canvas[wrect.y0][end_x] = "]"
    if wrect.height > 1:
        frame = Frame(width, wrect.height - 1)
        for line in frame.layout(window.body, window.org):
            text = window.body.slice(line.start, line.end)
            _put(canvas, wrect.y0 + 1 + line.row, column.body_x0, text[:width])


def _repaint_window(column, window, canvas: list[list[str]]) -> None:
    """Damage repaint: blank the window's rect, then draw it fresh."""
    wrect = column.win_rect(window)
    if wrect is None:
        return
    blank = [" "] * wrect.width
    for y in range(wrect.y0, wrect.y1):
        canvas[y][wrect.x0:wrect.x1] = blank
    incr("render.cells_repainted", wrect.width * wrect.height)
    incr("render.windows_repainted")
    _paint_window(column, window, canvas)


def _put(canvas: list[list[str]], row: int, x0: int, s: str) -> None:
    if not 0 <= row < len(canvas):
        return
    for i, ch in enumerate(s):
        x = x0 + i
        if 0 <= x < len(canvas[row]):
            canvas[row][x] = ch if ch != "\t" else " "


def _footer(help_app: "Help") -> str:
    current = help_app.current
    if current is None:
        return "-- no selection --"
    window, sub = current
    sel = window.selection(sub)
    text = window.text(sub).slice(sel.q0, sel.q1)
    shown = text if len(text) <= 40 else text[:37] + "..."
    shown = shown.replace("\n", "\\n")
    return (f"-- selection: window {window.id} ({window.name() or 'unnamed'}) "
            f"{sub.value} {sel.q0}..{sel.q1} {shown!r} --")


def render_window(help_app: "Help", window: "Window") -> str:
    """Just one window (tag plus visible body), as the screen shows it."""
    column = help_app.screen.column_of(window)
    if column is None:
        return ""
    wrect = column.win_rect(window)
    if wrect is None:
        return f"[{window.tag.string()}] (hidden)"
    width = column.text_width
    lines = [window.tag.string().split(chr(10), 1)[0][:width]]
    if wrect.height > 1:
        frame = Frame(width, wrect.height - 1)
        for line in frame.layout(window.body, window.org):
            lines.append(window.body.slice(line.start, line.end)[:width])
    return "\n".join(lines)
