"""ASCII screenshots of a help screen.

The paper's twelve figures are bitmaps of text screens; this renderer
reproduces them as character grids so the figure benchmarks can save
comparable artifacts.  Conventions:

- row 0 is the header strip; each column's expand square is ``#``;
- the left edge of each column carries the tab tower: ``#`` per
  window (visible or hidden, in order), then ``|`` down the column;
- each window's tag row is drawn between ``[`` and ``]`` so windows
  are visually separated the way the originals' borders separate them;
- the current selection can be marked in a footer (reverse video has
  no ASCII equivalent that preserves the grid).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.frame import Frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.help import Help
    from repro.core.window import Window


def render_screen(help_app: "Help", footer: bool = True) -> str:
    """The whole screen as a character grid, one string."""
    rect = help_app.screen.rect
    canvas = [[" "] * rect.width for _ in range(rect.height)]
    for column in help_app.screen.columns:
        _render_column(help_app, column, canvas)
    lines = ["".join(row).rstrip() for row in canvas]
    out = "\n".join(lines)
    if footer:
        out += "\n" + _footer(help_app)
    return out


def _render_column(help_app: "Help", column, canvas: list[list[str]]) -> None:
    rect = column.rect
    # header square for this column
    canvas[0][rect.x0] = "#"
    # tab tower
    order = column.tab_order()
    for i in range(rect.y0, rect.y1):
        x = rect.x0
        canvas[i][x] = "#" if i - rect.y0 < len(order) else "|"
    # windows
    for window in column.visible():
        wrect = column.win_rect(window)
        if wrect is None:
            continue
        width = column.text_width
        tag = window.tag.string().split("\n", 1)[0]
        _put(canvas, wrect.y0, column.body_x0, ("[" + tag)[:width].ljust(width, " "))
        if width >= 1:
            end_x = column.body_x0 + width - 1
            if canvas[wrect.y0][end_x] == " ":
                canvas[wrect.y0][end_x] = "]"
        if wrect.height > 1:
            frame = Frame(width, wrect.height - 1)
            for line in frame.layout(window.body.string(), window.org):
                text = window.body.slice(line.start, line.end)
                _put(canvas, wrect.y0 + 1 + line.row, column.body_x0, text[:width])


def _put(canvas: list[list[str]], row: int, x0: int, s: str) -> None:
    if not 0 <= row < len(canvas):
        return
    for i, ch in enumerate(s):
        x = x0 + i
        if 0 <= x < len(canvas[row]):
            canvas[row][x] = ch if ch != "\t" else " "


def _footer(help_app: "Help") -> str:
    current = help_app.current
    if current is None:
        return "-- no selection --"
    window, sub = current
    sel = window.selection(sub)
    text = window.text(sub).slice(sel.q0, sel.q1)
    shown = text if len(text) <= 40 else text[:37] + "..."
    shown = shown.replace("\n", "\\n")
    return (f"-- selection: window {window.id} ({window.name() or 'unnamed'}) "
            f"{sub.value} {sel.q0}..{sel.q1} {shown!r} --")


def render_window(help_app: "Help", window: "Window") -> str:
    """Just one window (tag plus visible body), as the screen shows it."""
    column = help_app.screen.column_of(window)
    if column is None:
        return ""
    wrect = column.win_rect(window)
    if wrect is None:
        return f"[{window.tag.string()}] (hidden)"
    width = column.text_width
    lines = [window.tag.string().split(chr(10), 1)[0][:width]]
    if wrect.height > 1:
        frame = Frame(width, wrect.height - 1)
        for line in frame.layout(window.body.string(), window.org):
            lines.append(window.body.slice(line.start, line.end)[:width])
    return "\n".join(lines)
