"""The text engine: gap buffer, undo, and position-tracking marks.

The original ``help`` stored window contents in a C text structure
(``text.c`` in the paper's Figure 7 stack trace).  This module provides
the equivalent: a :class:`GapBuffer` for efficient local editing, and a
:class:`Text` document on top that adds

- grouped **undo/redo** — the paper's Discussion lists undo first among
  the "mundane but important features" the rewrite should gain, so this
  reproduction includes it;
- **marks** that ride along with edits, used for selections and for the
  addresses handed to client programs through ``/mnt/help``;
- the **character-class scans** behind the automatic expansion rules:
  middle-click anywhere in a word selects the word, pointing into a
  file name grabs the whole name (``file.c:27`` syntax included).

Positions are character offsets; the half-open range ``q0..q1`` follows
the original's naming.
"""

from __future__ import annotations

import re
from bisect import bisect_left, bisect_right
from typing import Iterable


class GapBuffer:
    """A classic gap buffer over characters.

    Edits near the gap are O(length of edit); moving the gap costs the
    distance moved.  This is the same structure bitmap-terminal editors
    of the era used, and it keeps the interactive benchmarks honest.

    Two pieces of bookkeeping ride along for the display pipeline:

    - a monotonically increasing **edit generation** (:attr:`version`),
      bumped by every content change, which layout caches and the
      damage-tracked renderer use as their invalidation stamp;
    - a **maintained newline index**, split at the gap exactly like the
      characters are: positions before the gap are stored absolute,
      positions after the gap as distance from the end of the text, so
      an edit at the gap never shifts either list.  Line arithmetic
      (``nlines``/``line_of``/``pos_of_line``) becomes O(log lines)
      instead of rescanning the whole document.
    """

    def __init__(self, text: str = "", gap: int = 64) -> None:
        self._min_gap = max(1, gap)
        self._buf: list[str] = list(text) + [""] * self._min_gap
        self._gap_start = len(text)
        self._gap_end = len(self._buf)
        # whole-contents cache: layout, search and the file server all
        # ask for the full text repeatedly between edits, and a large
        # file must not pay O(n) for each of those asks
        self._text_cache: str | None = text
        self._version = 0
        # newline index, built lazily on first use (opening a file must
        # not pay for an index nothing has asked for yet): ascending
        # absolute offsets before the gap, and ascending distance from
        # the text end after the gap.  Once built it is maintained
        # incrementally through every edit and gap move.
        self._nl_before: list[int] | None = None
        self._nl_after: list[int] = []

    def _nl_lists(self) -> tuple[list[int], list[int]]:
        """The (before, after) newline lists, building them on demand."""
        if self._nl_before is None:
            positions = [m.start() for m in re.finditer("\n", self.text())]
            split = bisect_left(positions, self._gap_start)
            n = len(self)
            self._nl_before = positions[:split]
            self._nl_after = [n - p for p in reversed(positions[split:])]
        return self._nl_before, self._nl_after

    def __len__(self) -> int:
        return len(self._buf) - (self._gap_end - self._gap_start)

    @property
    def version(self) -> int:
        """Edit generation: bumped by every insert/delete that changes text."""
        return self._version

    def _move_gap(self, pos: int) -> None:
        if pos < self._gap_start:
            span = self._gap_start - pos
            dst = self._gap_end - span
            self._buf[dst:self._gap_end] = self._buf[pos:self._gap_start]
            self._gap_start = pos
            self._gap_end = dst
            # newlines in the moved span now live after the gap; text
            # offsets are gap-invariant, only the storage side changes
            if self._nl_before is not None:
                n = len(self)
                before, after = self._nl_before, self._nl_after
                while before and before[-1] >= pos:
                    after.append(n - before.pop())
        elif pos > self._gap_start:
            span = pos - self._gap_start
            src_end = self._gap_end + span
            self._buf[self._gap_start:self._gap_start + span] = \
                self._buf[self._gap_end:src_end]
            self._gap_start += span
            self._gap_end = src_end
            if self._nl_before is not None:
                n = len(self)
                before, after = self._nl_before, self._nl_after
                cut = n - pos
                while after and after[-1] > cut:
                    before.append(n - after.pop())

    # -- newline index queries ---------------------------------------------

    def newline_count(self) -> int:
        """Total number of newlines in the buffer."""
        before, after = self._nl_lists()
        return len(before) + len(after)

    def newline_position(self, i: int) -> int:
        """Text offset of the 0-based *i*-th newline."""
        before, after = self._nl_lists()
        if i < len(before):
            return before[i]
        # _nl_after ascends in distance-from-end, i.e. descends in offset
        return len(self) - after[len(before) + len(after) - 1 - i]

    def newlines_before(self, pos: int) -> int:
        """Number of newlines at text offsets strictly below *pos*."""
        before, after = self._nl_lists()
        count = bisect_left(before, pos)
        # after the gap: offset p < pos  <=>  distance n - p > n - pos
        count += len(after) - bisect_right(after, len(self) - pos)
        return count

    def _grow(self, need: int) -> None:
        gap = self._gap_end - self._gap_start
        if gap >= need:
            return
        extra = max(need - gap, self._min_gap, len(self._buf) // 2)
        self._buf[self._gap_end:self._gap_end] = [""] * extra
        self._gap_end += extra

    def insert(self, pos: int, s: str) -> None:
        """Insert *s* so that its first character lands at offset *pos*."""
        n = len(self._buf) - (self._gap_end - self._gap_start)
        if not 0 <= pos <= n:
            raise IndexError(f"insert at {pos} outside 0..{n}")
        if not s:
            return
        self._text_cache = None
        self._version += 1
        if pos != self._gap_start:
            self._move_gap(pos)
        k = len(s)
        if self._gap_end - self._gap_start < k:
            self._grow(k)
        if k == 1:
            # the keystroke path: no list(s) allocation, no slice assign
            self._buf[self._gap_start] = s
            self._gap_start += 1
            if s == "\n" and self._nl_before is not None:
                self._nl_before.append(pos)
            return
        self._buf[self._gap_start:self._gap_start + k] = list(s)
        self._gap_start += k
        # inserted newlines land before the gap; existing entries are
        # unaffected (before-gap offsets < pos, after-gap distances from
        # the end are invariant under an insert at the gap)
        if self._nl_before is not None and "\n" in s:
            idx = s.find("\n")
            while idx >= 0:
                self._nl_before.append(pos + idx)
                idx = s.find("\n", idx + 1)

    def delete(self, start: int, end: int) -> str:
        """Remove and return the characters in ``start..end``."""
        n = len(self._buf) - (self._gap_end - self._gap_start)
        if not 0 <= start <= end <= n:
            raise IndexError(f"delete {start}..{end} outside 0..{n}")
        if start == end:
            return ""
        self._text_cache = None
        self._version += 1
        if start != self._gap_start:
            self._move_gap(start)
        # the doomed span sits just after the gap: its newlines hold the
        # largest distances-from-end on the after list
        if self._nl_before is not None:
            cut = n - end
            after = self._nl_after
            while after and after[-1] > cut:
                after.pop()
        count = end - start
        gap_end = self._gap_end
        if count == 1:
            removed = self._buf[gap_end]
        else:
            removed = "".join(self._buf[gap_end:gap_end + count])
        self._gap_end = gap_end + count
        return removed

    def slice(self, start: int, end: int) -> str:
        """The characters in ``start..end`` (clamped to the buffer)."""
        start = max(0, start)
        end = min(len(self), end)
        if start >= end:
            return ""
        parts: list[str] = []
        if start < self._gap_start:
            parts.append("".join(self._buf[start:min(end, self._gap_start)]))
        if end > self._gap_start:
            lo = max(start, self._gap_start)
            parts.append("".join(
                self._buf[self._gap_end + (lo - self._gap_start):
                          self._gap_end + (end - self._gap_start)]))
        return "".join(parts)

    def char_at(self, pos: int) -> str:
        """The single character at *pos* ('' past the end)."""
        return self.slice(pos, pos + 1)

    def text(self) -> str:
        """The entire contents as one string (cached between edits)."""
        if self._text_cache is None:
            self._text_cache = self.slice(0, len(self))
        return self._text_cache


class Mark:
    """A position (or range) that follows the text through edits.

    Inserts before the mark shift it; deletes spanning it clamp it to
    the deletion point.  An insert *at* ``q0 == q1`` keeps an empty
    mark before the inserted text unless ``trailing`` is set (the
    typing cursor wants to ride after what was just typed).
    """

    def __init__(self, q0: int = 0, q1: int | None = None,
                 trailing: bool = False) -> None:
        self.q0 = q0
        self.q1 = q0 if q1 is None else q1
        self.trailing = trailing

    def set(self, q0: int, q1: int | None = None) -> None:
        """Move the mark to ``q0..q1`` (a point if *q1* is omitted)."""
        self.q0 = q0
        self.q1 = q0 if q1 is None else q1

    @property
    def empty(self) -> bool:
        return self.q0 == self.q1

    def _adjust_insert(self, pos: int, n: int) -> None:
        if pos < self.q0 or (pos == self.q0 and self.trailing and self.empty):
            self.q0 += n
        if pos < self.q1 or (pos == self.q1 and self.trailing):
            self.q1 += n

    def _adjust_delete(self, start: int, end: int) -> None:
        n = end - start
        q0 = self.q0
        if q0 >= end:
            self.q0 = q0 - n
        elif q0 > start:
            self.q0 = start
        q1 = self.q1
        if q1 >= end:
            self.q1 = q1 - n
        elif q1 > start:
            self.q1 = start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mark({self.q0}, {self.q1})"


# Characters that belong to a file name when help expands a null
# selection pointing into one.  The original accepted anything that
# could plausibly appear in a Plan 9 path plus the :line suffix.
_FILECHARS = re.compile(r"[A-Za-z0-9_\-./+:]")
_WORDCHARS = re.compile(r"[A-Za-z0-9_]")
# Command words include what file names do, plus the ! of window
# operations: a middle click anywhere in "Close!" must execute all of
# it, and a click in "/help/mail/headers" must execute the whole path.
_EXECCHARS = re.compile(r"[A-Za-z0-9_\-./+:!]")


class Text:
    """An editable document with undo, marks, and expansion scans."""

    def __init__(self, text: str = "") -> None:
        self._buf = GapBuffer(text)
        self._marks: list[Mark] = []
        self._undo: list[list[tuple[str, int, str]]] = []
        self._redo: list[list[tuple[str, int, str]]] = []
        self._open_group: list[tuple[str, int, str]] | None = None
        # (org, width, height) -> (version, lines); owned by Frame's
        # layout memoization (see repro.core.frame), stored here because
        # the document outlives the transient Frame objects
        self._layout_cache: dict[tuple[int, int, int], tuple[int, object]] = {}

    # -- basic access -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def version(self) -> int:
        """Edit generation; any content change makes it strictly larger."""
        return self._buf.version

    def newline_count(self) -> int:
        """Number of newlines, from the maintained index (O(1))."""
        return self._buf.newline_count()

    def string(self) -> str:
        """The full contents."""
        return self._buf.text()

    def slice(self, q0: int, q1: int) -> str:
        """The contents of ``q0..q1``."""
        return self._buf.slice(q0, q1)

    def char_at(self, pos: int) -> str:
        """Character at *pos* ('' past the end)."""
        return self._buf.char_at(pos)

    # -- marks --------------------------------------------------------------

    def add_mark(self, mark: Mark) -> Mark:
        """Register *mark* so edits keep it pointing at the same text."""
        self._marks.append(mark)
        return mark

    def drop_mark(self, mark: Mark) -> None:
        """Stop tracking *mark*."""
        self._marks.remove(mark)

    # -- editing ------------------------------------------------------------

    def insert(self, pos: int, s: str) -> None:
        """Insert *s* at *pos*, recording it for undo."""
        if not s:
            return
        self._buf.insert(pos, s)
        for mark in self._marks:
            mark._adjust_insert(pos, len(s))
        self._record(("ins", pos, s))

    def delete(self, q0: int, q1: int) -> str:
        """Delete ``q0..q1``, returning the removed text."""
        if q0 >= q1:
            return ""
        removed = self._buf.delete(q0, q1)
        for mark in self._marks:
            mark._adjust_delete(q0, q1)
        self._record(("del", q0, removed))
        return removed

    def replace(self, q0: int, q1: int, s: str) -> None:
        """Replace ``q0..q1`` with *s* as a single undoable group."""
        with self.group():
            self.delete(q0, q1)
            self.insert(q0, s)

    def set_string(self, s: str) -> None:
        """Replace the whole document (one undo group)."""
        self.replace(0, len(self), s)

    # -- undo / redo ----------------------------------------------------------

    def group(self) -> "_UndoGroup":
        """Context manager grouping edits into one undo step::

            with text.group():
                text.delete(a, b)
                text.insert(a, 'new')
        """
        return _UndoGroup(self)

    def _record(self, op: tuple[str, int, str]) -> None:
        self._redo.clear()
        if self._open_group is not None:
            self._open_group.append(op)
        else:
            # a lone op is stored bare: wrapping it in a one-element
            # list would add a GC-tracked container per keystroke, and
            # the undo log is the fastest-growing allocation in an
            # editing session
            self._undo.append(op)

    def _apply_inverse(self, ops) -> list[tuple[str, int, str]]:
        if type(ops) is tuple:
            ops = [ops]
        inverse: list[tuple[str, int, str]] = []
        for kind, pos, s in reversed(ops):
            if kind == "ins":
                self._buf.delete(pos, pos + len(s))
                for mark in self._marks:
                    mark._adjust_delete(pos, pos + len(s))
                inverse.append(("del", pos, s))
            else:
                self._buf.insert(pos, s)
                for mark in self._marks:
                    mark._adjust_insert(pos, len(s))
                inverse.append(("ins", pos, s))
        inverse.reverse()
        return inverse

    def undo(self) -> bool:
        """Undo the most recent group; False if nothing to undo."""
        if not self._undo:
            return False
        ops = self._undo.pop()
        self._redo.append(self._apply_inverse(ops))
        return True

    def redo(self) -> bool:
        """Redo the most recently undone group; False if none."""
        if not self._redo:
            return False
        ops = self._redo.pop()
        self._undo.append(self._apply_inverse(ops))
        return True

    @property
    def can_undo(self) -> bool:
        return bool(self._undo)

    @property
    def can_redo(self) -> bool:
        return bool(self._redo)

    # -- line arithmetic -----------------------------------------------------

    def nlines(self) -> int:
        """Number of lines (a trailing newline does not start a new one)."""
        n = len(self)
        if n == 0:
            return 0
        newlines = self._buf.newline_count()
        return newlines + (0 if self.char_at(n - 1) == "\n" else 1)

    def line_of(self, pos: int) -> int:
        """1-based line number containing offset *pos*."""
        return self._buf.newlines_before(min(pos, len(self))) + 1

    def pos_of_line(self, line: int) -> int:
        """Offset of the first character of 1-based *line* (clamped)."""
        if line <= 1:
            return 0
        if line - 2 >= self._buf.newline_count():
            return len(self)
        return self._buf.newline_position(line - 2) + 1

    def line_span(self, line: int) -> tuple[int, int]:
        """Offsets ``(start, end)`` of 1-based *line*, newline excluded."""
        start = self.pos_of_line(line)
        k = self._buf.newlines_before(start)
        if k >= self._buf.newline_count():
            return (start, len(self))
        return (start, self._buf.newline_position(k))

    # -- expansion scans -------------------------------------------------------

    def _scan(self, pos: int, pattern: re.Pattern[str]) -> tuple[int, int]:
        q0 = pos
        while q0 > 0 and pattern.match(self.char_at(q0 - 1)):
            q0 -= 1
        q1 = pos
        while q1 < len(self) and pattern.match(self.char_at(q1)):
            q1 += 1
        return q0, q1

    def word_at(self, pos: int) -> tuple[int, int]:
        """Extent of the word containing *pos* (empty range if none).

        This is the rule that makes a middle *click* anywhere in
        ``Cut`` execute the whole word.
        """
        return self._scan(pos, _WORDCHARS)

    def command_at(self, pos: int) -> tuple[int, int]:
        """Extent of the command word containing *pos*.

        Like :meth:`word_at` but including ``!`` and path characters,
        so clicking in ``Close!`` or in ``/help/mail/headers``
        executes the whole thing.
        """
        return self._scan(pos, _EXECCHARS)

    def filename_at(self, pos: int) -> tuple[int, int]:
        """Extent of the file-name-like token containing or ending at *pos*.

        Pointing with a null selection *after* the final character of a
        name still grabs it (Figure 3: "the selection is automatically
        the null string at the end of the file name, so just click
        Open").
        """
        q0, q1 = self._scan(pos, _FILECHARS)
        if q0 == q1 and pos > 0:
            q0, q1 = self._scan(pos - 1, _FILECHARS)
        return q0, q1

    # -- searching ---------------------------------------------------------------

    def find(self, needle: str, start: int = 0) -> tuple[int, int] | None:
        """First literal occurrence of *needle* at or after *start*."""
        if not needle:
            return None
        idx = self.string().find(needle, start)
        if idx < 0:
            return None
        return (idx, idx + len(needle))

    def find_pattern(self, pattern: str, start: int = 0) -> tuple[int, int] | None:
        """First regexp match of *pattern* at or after *start*.

        Used by the edit tool's ``Pattern`` command.
        """
        try:
            match = re.compile(pattern).search(self.string(), start)
        except re.error:
            return None
        if match is None or match.start() == match.end():
            return None
        return (match.start(), match.end())

    def lines(self) -> Iterable[str]:
        """Iterate over lines without newlines."""
        return self.string().split("\n")


class _UndoGroup:
    """Groups edits made inside a ``with`` block into one undo step."""

    def __init__(self, text: Text) -> None:
        self._text = text
        self._nested = False

    def __enter__(self) -> Text:
        if self._text._open_group is not None:
            self._nested = True
        else:
            self._text._open_group = []
        return self._text

    def __exit__(self, *exc: object) -> None:
        if self._nested:
            return
        ops = self._text._open_group
        self._text._open_group = None
        if ops:
            self._text._undo.append(ops)
