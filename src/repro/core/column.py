"""Columns: vertical stacks of windows with the paper's placement rules.

"The help screen is tiled with windows of editable text, arranged in
(usually) two side-by-side columns."  Within a column, every window has
a top row (its tag); its extent runs to the next visible window's top
or the column bottom.  Windows may be *hidden* — covered completely —
and remain reachable through the tower of tabs at the column's left
edge ("one per window ... visible or invisible, in order from top to
bottom").

The placement heuristic is transcribed from the paper's Discussion
section, where Pike spells out the fixed version:

1. place the new window at the bottom of the column: tag immediately
   below the lowest visible text already in the column;
2. if that would leave too little of the new window visible, cover
   half of the lowest window;
3. if still too little, position it over the bottom 25% of the column
   (in a character-cell display every boundary falls on a whole line,
   satisfying the "covers no partial line" adjustment for free),
   hiding windows entirely when necessary.

"Help attempts to make at least the tag of a window fully visible; if
this is impossible, it covers the window completely."
"""

from __future__ import annotations

from repro.core.frame import Frame, Rect
from repro.core.window import Window

# "Too little visible": the threshold below which the heuristic moves
# to its next rule.  The paper leaves the number to taste; tag plus two
# body lines is the smallest window you can usefully read.
MIN_NEW_ROWS = 3


class Column:
    """One column of windows plus its tab tower.

    The tab strip occupies the leftmost cell column of ``rect``;
    windows draw in ``rect.x0 + 1 .. rect.x1``.
    """

    def __init__(self, rect: Rect) -> None:
        self.rect = rect
        self.windows: list[Window] = []
        # row-keyed spatial index (tab order, row -> window, extents),
        # rebuilt only when the fingerprint of window geometry changes
        self._spatial_cache: tuple | None = None

    # -- geometry -----------------------------------------------------------

    @property
    def body_x0(self) -> int:
        """First cell column windows may use (right of the tab strip)."""
        return self.rect.x0 + 1

    @property
    def text_width(self) -> int:
        """Width available to window text."""
        return max(1, self.rect.x1 - self.body_x0)

    def visible(self) -> list[Window]:
        """Visible windows, top to bottom."""
        return sorted((w for w in self.windows if not w.hidden),
                      key=lambda w: w.y)

    def _spatial(self) -> tuple:
        """The hit-testing index: ``(fingerprint, order, rows, rects)``.

        ``order`` is every window sorted by tag row, ``rows`` buckets
        each column row to the visible window occupying it, ``rects``
        maps window identity to its screen extent.  The fingerprint —
        the column rect plus each window's (identity, row, hidden) —
        makes the cache self-invalidating: any placement, move, hide or
        resize produces a different fingerprint, so hit testing is O(1)
        per query without hooks in the mutators.
        """
        fingerprint = (self.rect.x0, self.rect.x1, self.rect.y0,
                       self.rect.y1,
                       tuple((id(w), w.y, w.hidden) for w in self.windows))
        cached = self._spatial_cache
        if cached is not None and cached[0] == fingerprint:
            return cached
        order = sorted(self.windows, key=lambda w: w.y)
        vis = [w for w in order if not w.hidden]
        rects: dict[int, Rect] = {}
        rows: list[Window | None] = [None] * max(0, self.rect.height)
        y0 = self.rect.y0
        for i, window in enumerate(vis):
            bottom = vis[i + 1].y if i + 1 < len(vis) else self.rect.y1
            rects[id(window)] = Rect(self.body_x0, window.y,
                                     self.rect.x1, bottom)
            for y in range(window.y, bottom):
                rows[y - y0] = window
        cached = (fingerprint, order, rows, rects)
        self._spatial_cache = cached
        return cached

    def win_rect(self, window: Window) -> Rect | None:
        """The screen extent of *window*, or None if hidden."""
        if window.hidden:
            return None
        return self._spatial()[3].get(id(window))

    def body_frame(self, window: Window) -> Frame | None:
        """A Frame sized for *window*'s body area (below the tag row)."""
        rect = self.win_rect(window)
        if rect is None or rect.height < 1:
            return None
        return Frame(self.text_width, rect.height - 1)

    # -- invariants ---------------------------------------------------------------

    def _normalize(self, priority: Window | None = None) -> None:
        """Restore the layout invariant after any movement.

        Visible windows get strictly increasing tag rows inside the
        column; a window that cannot keep even its tag on screen is
        covered completely.  *priority* wins ties at the same row.
        """
        vis = sorted((w for w in self.windows if not w.hidden),
                     key=lambda w: (w.y, 0 if w is priority else 1))
        prev = self.rect.y0 - 1
        for window in vis:
            y = max(window.y, prev + 1)
            if y > self.rect.y1 - 1:
                window.hidden = True
            else:
                window.y = y
                prev = y
        self.windows.sort(key=lambda w: w.y)

    def _lowest_used_row(self) -> int:
        """One past the lowest row showing text (the rule-1 target)."""
        vis = self.visible()
        if not vis:
            return self.rect.y0
        last = vis[-1]
        rect = self.win_rect(last)
        assert rect is not None
        used = 0
        if rect.height > 1:
            # lay out at most the window's own height of the body — a
            # megabyte body must not be measured in full just to find
            # where the next window's tag goes
            frame = Frame(self.text_width, rect.height - 1)
            layout = frame.layout(last.body, last.org)
            used = len(layout)
            # The row after a trailing newline holds no text; don't
            # count it (an entirely empty body still uses its one row).
            if used > 1 and layout[-1].start == layout[-1].end:
                used -= 1
        return min(last.y + 1 + used, self.rect.y1)

    # -- the placement heuristic ------------------------------------------------

    def place(self, window: Window) -> None:
        """Add *window* at the position the paper's heuristic chooses."""
        window.hidden = False
        bottom = self.rect.y1
        # Rule 1: tag immediately below the lowest visible text.
        y = self._lowest_used_row()
        if bottom - y < MIN_NEW_ROWS:
            # Rule 2: cover half of the lowest window.
            vis = self.visible()
            if vis:
                last_rect = self.win_rect(vis[-1])
                assert last_rect is not None
                y = vis[-1].y + max(1, last_rect.height // 2)
            if bottom - y < MIN_NEW_ROWS:
                # Rule 3: occupy the bottom 25% of the column.
                quarter = max(self.rect.height // 4, MIN_NEW_ROWS)
                y = max(self.rect.y0, bottom - quarter)
                for other in self.windows:
                    if not other.hidden and other.y >= y:
                        other.hidden = True
        window.y = y
        self.windows.append(window)
        self._normalize(priority=window)

    # -- user operations ---------------------------------------------------------

    def make_visible(self, window: Window) -> None:
        """Tab click: show *window* "from the tag to the bottom of the column".

        Everything below its tag row is covered completely.
        """
        if window not in self.windows:
            raise ValueError(f"window {window.id} not in this column")
        window.hidden = False
        window.y = max(self.rect.y0, min(window.y, self.rect.y1 - 1))
        for other in self.windows:
            if other is not window and not other.hidden and other.y >= window.y:
                other.hidden = True
        self._normalize(priority=window)

    def move_to(self, window: Window, y: int) -> None:
        """Drop *window* (already in or newly joining this column) at row *y*.

        Does "whatever local rearrangement is necessary": the drop row
        is clamped into the column and neighbours shuffle or hide to
        keep every visible tag on screen.
        """
        if window not in self.windows:
            self.windows.append(window)
        window.hidden = False
        window.y = max(self.rect.y0, min(y, self.rect.y1 - 1))
        self._normalize(priority=window)

    def remove(self, window: Window) -> None:
        """Take *window* out of the column (Close! or a cross-column move)."""
        self.windows.remove(window)

    def resize(self, rect: Rect) -> None:
        """Give the column a new extent, re-fitting its windows."""
        self.rect = rect
        for window in self.windows:
            window.y = max(rect.y0, min(window.y, rect.y1 - 1))
        self._normalize()

    # -- hit testing ------------------------------------------------------------------

    def tab_order(self) -> list[Window]:
        """Windows in tab order: top to bottom, hidden ones in place."""
        return list(self._spatial()[1])

    def tab_at(self, y: int) -> Window | None:
        """The window whose tab square sits at screen row *y*."""
        index = y - self.rect.y0
        order = self._spatial()[1]
        if 0 <= index < len(order):
            return order[index]
        return None

    def window_at(self, y: int) -> Window | None:
        """The visible window occupying screen row *y*."""
        rows = self._spatial()[2]
        index = y - self.rect.y0
        if 0 <= index < len(rows):
            return rows[index]
        return None
