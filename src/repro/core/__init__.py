"""The paper's primary contribution: the ``help`` system itself.

``help`` "combines aspects of window systems, shells, and editors".
The decomposition here mirrors the original's source files (the stack
trace in Figure 7 names them: ``text.c``, ``ctrl.c``, ``exec.c``,
``errs.c``, ``page.c``, ``file.c`` ...):

- :mod:`repro.core.text` — the text engine (gap buffer, undo, marks);
- :mod:`repro.core.frame` — character-cell layout of text in a rectangle;
- :mod:`repro.core.selection` — selections and the automatic
  null-selection expansion rules;
- :mod:`repro.core.window` / :mod:`repro.core.column` /
  :mod:`repro.core.screen` — tag+body windows tiled into columns, with
  the paper's placement heuristic;
- :mod:`repro.core.events` — the three-button mouse and keyboard model,
  including chords;
- :mod:`repro.core.execute` / :mod:`repro.core.builtins` — middle-button
  execution, context rules, built-in commands;
- :mod:`repro.core.help` — the assembled application;
- :mod:`repro.core.render` — ASCII screenshots (regenerates the figures).
"""

__all__ = ["Help", "Button", "Mouse", "render_screen"]


def __getattr__(name: str):
    """Lazy re-exports, so ``repro.core.text`` imports without the rest."""
    if name == "Help":
        from repro.core.help import Help
        return Help
    if name in ("Button", "Mouse"):
        from repro.core import events
        return getattr(events, name)
    if name == "render_screen":
        from repro.core.render import render_screen
        return render_screen
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
