"""Plan 9 ``bind``/``mount``: per-process namespaces over a shared VFS.

The profile in the paper's Figure 2 begins::

    bind -c $home/tmp /tmp
    bind -a $home/bin/rc /bin
    bind -a $home/bin/$cputype /bin

A *namespace* is a mount table layered on a :class:`repro.fs.vfs.VFS`:
each entry maps a canonical path to an ordered stack of nodes, and a
directory with several nodes in its stack behaves as a *union
directory* — lookups try each member in order, listings merge.
``bind -b`` places the new directory before the old, ``-a`` after, and
a plain bind replaces it, exactly as in Plan 9.

Namespaces fork cheaply (the mount table is copied, the VFS is shared),
which is how each simulated process gets its own view.
"""

from __future__ import annotations

import enum
import fnmatch

from repro.fs.errors import (
    Exists,
    FsError,
    Invalid,
    IsADirectory,
    NotADirectory,
    NotFound,
    Busy,
    Permission,
)
from repro.fs.vfs import (
    VFS,
    Dir,
    File,
    FileHandle,
    Node,
    basename,
    dirname,
    join,
    normalize,
    split_path,
)


class BindFlag(enum.Enum):
    """Ordering of a bind relative to what is already at the mount point."""

    REPLACE = "replace"  # bind src dst
    BEFORE = "before"    # bind -b src dst
    AFTER = "after"      # bind -a src dst


class UnionDir(Dir):
    """A read-through view of several directories stacked by bind.

    Lookup returns the first member's child; :meth:`entries` merges all
    members, first occurrence of a name winning.  New files are created
    in the first real directory of the stack.
    """

    def __init__(self, name: str, stack: list[Node]) -> None:
        super().__init__(name)
        self.stack = stack

    def lookup(self, name: str) -> Node | None:
        for member in self.stack:
            if isinstance(member, Dir):
                child = member.lookup(name)
                if child is not None:
                    return child
        return None

    def entries(self) -> list[Node]:
        seen: dict[str, Node] = {}
        for member in self.stack:
            if isinstance(member, Dir):
                for entry in member.entries():
                    seen.setdefault(entry.name, entry)
        return list(seen.values())

    def create_target(self) -> Dir:
        """The directory new files land in (first real dir of the stack)."""
        for member in self.stack:
            if isinstance(member, Dir):
                return member
        raise NotADirectory(f"'{self.name}': no directory to create in",
                            path=self.name, op="create")


class Namespace:
    """A view of a :class:`VFS` through a mount table.

    All path operations the rest of the system performs — the shell,
    the tools, ``help`` itself — go through a Namespace, so a bind or
    a mounted file server is visible everywhere, just as on Plan 9.
    """

    def __init__(self, vfs: VFS) -> None:
        self.vfs = vfs
        self._mounts: dict[str, list[Node]] = {}
        # journal hook: called with (op, canonical path) on every
        # mutation routed through this namespace (write-open, mkdir,
        # remove) — see repro.journal.recorder.SessionRecorder.fs_trace
        self.on_mutation = None

    def fork(self) -> "Namespace":
        """A child namespace sharing the VFS but with its own mount table."""
        child = Namespace(self.vfs)
        child._mounts = {path: list(stack) for path, stack in self._mounts.items()}
        child.on_mutation = self.on_mutation
        return child

    def _mutated(self, op: str, path: str) -> None:
        if self.on_mutation is not None:
            self.on_mutation(op, normalize(path))

    # -- bind / mount -----------------------------------------------------

    def bind(self, src: str, dst: str, flag: BindFlag = BindFlag.REPLACE) -> None:
        """Make *src* visible at *dst* (``bind src dst``).

        Both paths must already resolve.  With :data:`BindFlag.BEFORE`
        or :data:`BindFlag.AFTER` and directory operands, *dst* becomes
        a union directory.
        """
        src_node = self.walk(src)
        dst_node = self.walk(dst)
        if src_node.is_dir != dst_node.is_dir:
            raise Invalid(f"bind: '{src}' and '{dst}' differ in kind",
                          path=normalize(dst), op="bind")
        self._install(normalize(dst), self._flatten(src_node), dst_node, flag)

    def mount(self, node: Node, dst: str, flag: BindFlag = BindFlag.REPLACE) -> None:
        """Attach a server-provided *node* (e.g. a synthetic tree) at *dst*.

        The mount point must exist; mounting a directory over a
        directory with BEFORE/AFTER creates a union, like ``bind``.
        This is how ``/mnt/help`` appears in the namespace.
        """
        dst_node = self.walk(dst)
        self._install(normalize(dst), [node], dst_node, flag)

    def unmount(self, dst: str) -> None:
        """Drop every bind or mount at *dst*."""
        canon = normalize(dst)
        if canon not in self._mounts:
            raise NotFound(f"'{canon}' not mounted", path=canon, op="unmount")
        del self._mounts[canon]

    def _flatten(self, node: Node) -> list[Node]:
        if isinstance(node, UnionDir):
            return list(node.stack)
        return [node]

    def _install(self, canon: str, new: list[Node], dst_node: Node,
                 flag: BindFlag) -> None:
        current = self._mounts.get(canon)
        if current is None:
            current = self._flatten(dst_node)
        if flag is BindFlag.REPLACE:
            stack = new
        elif flag is BindFlag.BEFORE:
            stack = new + current
        else:
            stack = current + new
        self._mounts[canon] = stack

    def mount_table(self) -> dict[str, list[Node]]:
        """A copy of the mount table, for inspection (``ns`` command)."""
        return {path: list(stack) for path, stack in self._mounts.items()}

    # -- resolution -------------------------------------------------------

    def _view(self, canon: str, underlying: Node | None) -> Node | None:
        stack = self._mounts.get(canon)
        if stack is None:
            return underlying
        if len(stack) == 1:
            return stack[0]
        if any(member.is_dir for member in stack):
            return UnionDir(basename(canon) or "/", stack)
        return stack[0]

    def resolve(self, path: str) -> Node | None:
        """Resolve *path* through the mount table, or None if missing."""
        canon = normalize(path)
        cur = self._view("/", self.vfs.root)
        cur_canon = "/"
        for comp in split_path(canon):
            if cur is None or not isinstance(cur, Dir):
                return None
            child = cur.lookup(comp)
            cur_canon = join(cur_canon, comp)
            cur = self._view(cur_canon, child)
        return cur

    def walk(self, path: str) -> Node:
        """Resolve *path*, raising :class:`FsError` if it does not exist."""
        node = self.resolve(path)
        if node is None:
            raise NotFound(path=normalize(path), op="walk")
        return node

    def exists(self, path: str) -> bool:
        """True if *path* resolves through this namespace."""
        return self.resolve(path) is not None

    def isdir(self, path: str) -> bool:
        """True if *path* resolves to a directory."""
        node = self.resolve(path)
        return node is not None and node.is_dir

    # -- I/O through the namespace -----------------------------------------

    def open(self, path: str, mode: str = "r") -> FileHandle:
        """Open the file at *path*; synthetic files get their own session.

        Modes are those of :meth:`repro.fs.vfs.VFS.open`.  Writing to a
        missing path creates a plain file in the enclosing directory
        (which for a union directory is its first member).
        """
        if mode in ("w", "a"):
            self._mutated("write", path)
        node = self.resolve(path)
        if node is None:
            if mode in ("w", "a"):
                return FileHandle(self._create_node(path), mode, self.vfs.clock)
            raise NotFound(path=normalize(path), op="open")
        if node.is_dir:
            raise IsADirectory(path=normalize(path), op="open")
        opener = getattr(node, "open", None)
        if opener is None:
            raise Permission(f"'{normalize(path)}' cannot be opened",
                             path=normalize(path), op="open")
        handle = opener(mode)
        if isinstance(handle, FileHandle):
            handle._clock = self.vfs.clock
        return handle

    def _create_node(self, path: str) -> File:
        parent = self.walk(dirname(path))
        if isinstance(parent, UnionDir):
            parent = parent.create_target()
        if not isinstance(parent, Dir):
            raise NotADirectory(path=dirname(path), op="create")
        node = File(basename(path))
        node.mtime = self.vfs.clock.tick()
        parent.attach(node)
        return node

    def read(self, path: str) -> str:
        """Full contents of the file at *path*."""
        with self.open(path) as f:
            return f.read()

    def write(self, path: str, data: str) -> None:
        """Replace the contents of the file at *path*, creating it."""
        with self.open(path, "w") as f:
            f.write(data)

    def append(self, path: str, data: str) -> None:
        """Append *data* to the file at *path*, creating it."""
        with self.open(path, "a") as f:
            f.write(data)

    def create(self, path: str, data: str = "") -> None:
        """Create or truncate the file at *path* with *data*."""
        self.write(path, data)

    def mkdir(self, path: str, parents: bool = False) -> None:
        """Create a directory; resolves the parent through the namespace."""
        if self.exists(path):
            if parents and self.isdir(path):
                return
            raise Exists(path=normalize(path), op="mkdir")
        parent_path = dirname(path)
        if not self.exists(parent_path):
            if not parents:
                raise NotFound(path=parent_path, op="mkdir")
            self.mkdir(parent_path, parents=True)
        parent = self.walk(parent_path)
        if isinstance(parent, UnionDir):
            parent = parent.create_target()
        if not isinstance(parent, Dir):
            raise NotADirectory(path=parent_path, op="mkdir")
        node = Dir(basename(path))
        node.mtime = self.vfs.clock.tick()
        parent.attach(node)
        self._mutated("mkdir", path)

    def remove(self, path: str) -> None:
        """Remove a file or empty directory (unmounting is separate)."""
        canon = normalize(path)
        if canon in self._mounts:
            raise Busy(f"'{canon}' is a mount point", path=canon, op="remove")
        node = self.walk(canon)
        if isinstance(node, Dir) and node.entries():
            raise Busy(f"'{canon}' not empty", path=canon, op="remove")
        parent = self.walk(dirname(canon))
        if isinstance(parent, UnionDir):
            for member in parent.stack:
                if isinstance(member, Dir) and member.lookup(basename(canon)):
                    member.detach(basename(canon))
                    self._mutated("remove", canon)
                    return
            raise NotFound(path=canon, op="remove")
        if not isinstance(parent, Dir):
            raise NotADirectory(path=dirname(canon), op="remove")
        parent.detach(basename(canon))
        self._mutated("remove", canon)

    def listdir(self, path: str) -> list[str]:
        """Sorted entry names of the directory at *path* (unions merged)."""
        node = self.walk(path)
        if not isinstance(node, Dir):
            raise NotADirectory(path=normalize(path), op="listdir")
        return sorted(entry.name for entry in node.entries())

    def mtime(self, path: str) -> int:
        """Logical mtime of the node at *path*."""
        return self.walk(path).mtime

    def glob(self, pattern: str) -> list[str]:
        """Expand ``*``/``?``/``[...]`` in any component of *pattern*.

        Resolution happens through the namespace, so globs see unions
        and mounted servers.  No matches → empty list (rc passes the
        pattern through unchanged; the shell layer handles that).
        """
        pattern = normalize(pattern)
        matches = ["/"]
        for comp in split_path(pattern):
            new: list[str] = []
            for base in matches:
                node = self.resolve(base)
                if not isinstance(node, Dir):
                    continue
                if "*" in comp or "?" in comp or "[" in comp:
                    for entry in node.entries():
                        if fnmatch.fnmatchcase(entry.name, comp):
                            new.append(join(base, entry.name))
                else:
                    if node.lookup(comp) is not None:
                        new.append(join(base, comp))
            matches = new
        return sorted(matches)
