"""The wire protocol: 9P-style tagged messages with size-prefixed frames.

The paper's ``help`` is a *file server*: "processes on the CPU server
access the screen through the file server", and a remote machine gets
the whole user interface just by mounting it.  Until now our servers
were in-process method calls; this module gives them a wire format so
a server can live in another thread, another process, or behind a real
socket, and :mod:`repro.fs.mux` can multiplex many client sessions
over one transport.

Framing
-------

Every message travels as one frame::

    size[4] type[1] tag[2] payload...

``size`` is a little-endian u32 counting the *entire* frame including
itself (as in 9P); ``type`` selects a message class below; ``tag``
identifies the request so replies can arrive out of order.  Inside the
payload, strings are ``len[2]`` + UTF-8 bytes, data blocks are
``len[4]`` + UTF-8 bytes, and lists carry a ``count[2]`` prefix.

Each T-message (request) has a matching R-message (reply) with type
``T+1``; any request may instead be answered by :class:`Rerror`, which
carries the :mod:`repro.fs.errors` taxonomy over the wire — ``kind``,
``op``, ``path`` and message — so the client can re-raise the exact
error class the server raised.

Malformed input — a truncated frame, an unknown type, a size field
exceeding :data:`MAX_MESSAGE` — raises
:class:`~repro.fs.errors.Invalid`; transports treat that as a fatal
protocol error on the connection.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.fs.errors import TAXONOMY, FsError, Invalid

#: Largest frame either side will accept (size field included).  Big
#: enough for a whole window body, small enough to bound buffering.
MAX_MESSAGE = 1 << 20

#: Reads/writes are sequential by default; a non-negative offset in
#: :class:`Tread` seeks first (the wire form of ``session.seek``).
SEQUENTIAL = -1

_HEADER = struct.Struct("<IBH")  # size, type, tag

#: Bytes in the fixed frame header (size + type + tag).
HEADER_SIZE = _HEADER.size

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")

_KIND_TO_ERROR = {cls.kind: cls for cls in TAXONOMY}


def _pack_str(s: str) -> bytes:
    raw = s.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise Invalid(f"string too long for wire ({len(raw)} bytes)",
                      path="?", op="encode")
    return struct.pack("<H", len(raw)) + raw


def _pack_data(s: str) -> bytes:
    raw = s.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


class _Cursor:
    """A bounds-checked reader over one frame's payload.

    Works over any bytes-like buffer — ``bytes``, ``bytearray`` or a
    ``memoryview`` into a transport's receive buffer — without copying:
    integers unpack in place via ``unpack_from`` and strings decode
    straight from a slice of the underlying buffer, so a frame costs no
    intermediate ``bytes`` objects beyond its decoded field values.
    """

    __slots__ = ("buf", "pos", "end")

    def __init__(self, buf, pos: int, end: int) -> None:
        self.buf = buf
        self.pos = pos
        self.end = end

    def _advance(self, n: int) -> int:
        pos = self.pos
        if pos + n > self.end:
            raise Invalid("truncated message payload", path="?", op="decode")
        self.pos = pos + n
        return pos

    def take(self, n: int) -> bytes:
        pos = self._advance(n)
        return bytes(self.buf[pos:pos + n])

    def u8(self) -> int:
        return self.buf[self._advance(1)]

    def u16(self) -> int:
        return _U16.unpack_from(self.buf, self._advance(2))[0]

    def u32(self) -> int:
        return _U32.unpack_from(self.buf, self._advance(4))[0]

    def i32(self) -> int:
        return _I32.unpack_from(self.buf, self._advance(4))[0]

    def i64(self) -> int:
        return _I64.unpack_from(self.buf, self._advance(8))[0]

    def string(self) -> str:
        n = self.u16()
        pos = self._advance(n)
        return str(self.buf[pos:pos + n], "utf-8")

    def data(self) -> str:
        n = self.u32()
        pos = self._advance(n)
        return str(self.buf[pos:pos + n], "utf-8")


@dataclass
class Message:
    """Base of every wire message; subclasses define ``type`` and fields."""

    type = 0  # overridden per subclass
    tag: int = 0

    def pack_payload(self) -> bytes:
        return b""

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Message":
        return cls(tag=tag)

    @property
    def op(self) -> str:
        """The op name ('attach', 'walk', ...) this message belongs to."""
        return _TYPE_TO_OP[self.type]


@dataclass
class Tattach(Message):
    """Introduce a connection: bind *fid* to the server's root."""

    type = 100
    fid: int = 0
    uname: str = ""
    aname: str = ""

    def pack_payload(self) -> bytes:
        return (struct.pack("<I", self.fid) + _pack_str(self.uname)
                + _pack_str(self.aname))

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Tattach":
        return cls(tag=tag, fid=cur.u32(), uname=cur.string(),
                   aname=cur.string())


@dataclass
class Rattach(Message):
    type = 101
    is_dir: bool = True
    mtime: int = 0

    def pack_payload(self) -> bytes:
        return struct.pack("<Bq", int(self.is_dir), self.mtime)

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Rattach":
        return cls(tag=tag, is_dir=bool(cur.u8()), mtime=cur.i64())


@dataclass
class Twalk(Message):
    """Resolve *names* starting at *fid*, binding the result to *newfid*."""

    type = 110
    fid: int = 0
    newfid: int = 0
    names: list[str] = field(default_factory=list)

    def pack_payload(self) -> bytes:
        out = struct.pack("<IIH", self.fid, self.newfid, len(self.names))
        for name in self.names:
            out += _pack_str(name)
        return out

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Twalk":
        fid, newfid, n = cur.u32(), cur.u32(), cur.u16()
        return cls(tag=tag, fid=fid, newfid=newfid,
                   names=[cur.string() for _ in range(n)])


@dataclass
class Rwalk(Message):
    """Walk result.  ``found=False`` is a *clean miss* — the final
    component does not exist — mirroring the local convention that
    ``resolve()`` returns None instead of raising, so existence probes
    over the wire do not manufacture errors.  Structural failures
    (walking through a non-directory) still come back as Rerror."""

    type = 111
    found: bool = True
    is_dir: bool = False
    mtime: int = 0

    def pack_payload(self) -> bytes:
        return struct.pack("<BBq", int(self.found), int(self.is_dir),
                           self.mtime)

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Rwalk":
        return cls(tag=tag, found=bool(cur.u8()), is_dir=bool(cur.u8()),
                   mtime=cur.i64())


@dataclass
class Topen(Message):
    """Open *fid* with a mode string ('r', 'w', 'a', 'rw')."""

    type = 112
    fid: int = 0
    mode: str = "r"

    def pack_payload(self) -> bytes:
        return struct.pack("<I", self.fid) + _pack_str(self.mode)

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Topen":
        return cls(tag=tag, fid=cur.u32(), mode=cur.string())


@dataclass
class Ropen(Message):
    type = 113

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Ropen":
        return cls(tag=tag)


@dataclass
class Tread(Message):
    """Read up to *count* chars (-1 = the rest) at *offset* (-1 = here)."""

    type = 116
    fid: int = 0
    offset: int = SEQUENTIAL
    count: int = -1

    def pack_payload(self) -> bytes:
        return struct.pack("<Iqi", self.fid, self.offset, self.count)

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Tread":
        return cls(tag=tag, fid=cur.u32(), offset=cur.i64(), count=cur.i32())


@dataclass
class Rread(Message):
    type = 117
    data: str = ""

    def pack_payload(self) -> bytes:
        return _pack_data(self.data)

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Rread":
        return cls(tag=tag, data=cur.data())


@dataclass
class Twrite(Message):
    type = 118
    fid: int = 0
    data: str = ""

    def pack_payload(self) -> bytes:
        return struct.pack("<I", self.fid) + _pack_data(self.data)

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Twrite":
        return cls(tag=tag, fid=cur.u32(), data=cur.data())


@dataclass
class Rwrite(Message):
    type = 119
    count: int = 0

    def pack_payload(self) -> bytes:
        return struct.pack("<I", self.count)

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Rwrite":
        return cls(tag=tag, count=cur.u32())


@dataclass
class Tclunk(Message):
    """Release *fid*, closing any session opened on it."""

    type = 120
    fid: int = 0

    def pack_payload(self) -> bytes:
        return struct.pack("<I", self.fid)

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Tclunk":
        return cls(tag=tag, fid=cur.u32())


@dataclass
class Rclunk(Message):
    type = 121

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Rclunk":
        return cls(tag=tag)


@dataclass
class StatEntry:
    """One node's metadata; directories also list their children."""

    name: str = ""
    is_dir: bool = False
    mtime: int = 0

    def pack(self) -> bytes:
        return (_pack_str(self.name)
                + struct.pack("<Bq", int(self.is_dir), self.mtime))

    @classmethod
    def unpack(cls, cur: _Cursor) -> "StatEntry":
        return cls(name=cur.string(), is_dir=bool(cur.u8()), mtime=cur.i64())


@dataclass
class Tstat(Message):
    type = 124
    fid: int = 0

    def pack_payload(self) -> bytes:
        return struct.pack("<I", self.fid)

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Tstat":
        return cls(tag=tag, fid=cur.u32())


@dataclass
class Rstat(Message):
    """The node's own stat plus, for directories, its children's."""

    type = 125
    stat: StatEntry = field(default_factory=StatEntry)
    children: list[StatEntry] = field(default_factory=list)

    def pack_payload(self) -> bytes:
        out = self.stat.pack() + struct.pack("<H", len(self.children))
        for child in self.children:
            out += child.pack()
        return out

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Rstat":
        stat = StatEntry.unpack(cur)
        n = cur.u16()
        return cls(tag=tag, stat=stat,
                   children=[StatEntry.unpack(cur) for _ in range(n)])


@dataclass
class Tship(Message):
    """Ship journal bytes for session *sid* to a replica standby.

    The replica feed (:mod:`repro.serve.replica`) is push-based: the
    primary streams each session's journal over an ordinary wire
    connection, one Tship per durable flush.  *verb* says what the
    bytes mean:

    * ``reset`` — *data* replaces the standby's copy of the journal
      (full text: header + snapshot group + suffix).  Sent when a
      session is created, adopted, or compacted.
    * ``append`` — *data* extends the standby's copy (suffix records,
      whole lines).  Sent on every journal flush.
    * ``state`` — *meta* carries the session's park state (``live`` or
      ``parked``); no data.
    * ``drop`` — the session closed for good; the standby forgets it.
    * ``ping`` — heartbeat; carries nothing, proves the primary lives.

    *seq* is the journal sequence number of the last record covered by
    this frame — the watermark the standby echoes back in
    :class:`Rship` once the bytes are durably appended.  *crc* is
    CRC-32 over the UTF-8 *data* bytes, checked before the append; a
    mismatch is answered with Rerror, never a silent corruption.
    """

    type = 114
    sid: str = ""
    verb: str = "ping"
    seq: int = 0
    crc: int = 0
    meta: str = ""
    data: str = ""

    def pack_payload(self) -> bytes:
        return (_pack_str(self.sid) + _pack_str(self.verb)
                + struct.pack("<qI", self.seq, self.crc)
                + _pack_str(self.meta) + _pack_data(self.data))

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Tship":
        return cls(tag=tag, sid=cur.string(), verb=cur.string(),
                   seq=cur.i64(), crc=cur.u32(), meta=cur.string(),
                   data=cur.data())


@dataclass
class Rship(Message):
    """The standby's ack: *ack* is its durable watermark for the
    session — the journal seq through which every shipped record is
    safely appended.  A sync-mode primary only acknowledges a client
    write after this reply arrives."""

    type = 115
    ack: int = 0

    def pack_payload(self) -> bytes:
        return struct.pack("<q", self.ack)

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Rship":
        return cls(tag=tag, ack=cur.i64())


@dataclass
class Rerror(Message):
    """Any request's failure reply: the error taxonomy, serialized."""

    type = 107
    kind: str = "io"
    errop: str = ""
    path: str = ""
    message: str = ""

    def pack_payload(self) -> bytes:
        return (_pack_str(self.kind) + _pack_str(self.errop)
                + _pack_str(self.path) + _pack_str(self.message))

    @classmethod
    def unpack_payload(cls, cur: _Cursor, tag: int) -> "Rerror":
        return cls(tag=tag, kind=cur.string(), errop=cur.string(),
                   path=cur.string(), message=cur.string())

    @classmethod
    def from_exc(cls, tag: int, exc: BaseException) -> "Rerror":
        """Serialize *exc* (taxonomy errors keep kind/op/path)."""
        if isinstance(exc, FsError):
            return cls(tag=tag, kind=exc.kind, errop=exc.op or "",
                       path=exc.path or "", message=str(exc))
        return cls(tag=tag, kind="io", errop="", path="", message=str(exc))

    def to_exc(self) -> FsError:
        """Rehydrate the taxonomy error this reply carries.

        The constructor of the rebuilt error bumps ``fs.error.<kind>``
        on the *client* side too — a remote failure is still a failure
        the client observed.
        """
        cls = _KIND_TO_ERROR.get(self.kind, FsError)
        return cls(self.message or None, path=self.path or None,
                   op=self.errop or None)


MESSAGES: tuple[type[Message], ...] = (
    Tattach, Rattach, Twalk, Rwalk, Topen, Ropen, Tread, Rread,
    Twrite, Rwrite, Tclunk, Rclunk, Tstat, Rstat, Tship, Rship, Rerror,
)

_TYPE_TO_CLASS: dict[int, type[Message]] = {m.type: m for m in MESSAGES}
_TYPE_TO_OP = {
    Tattach.type: "attach", Rattach.type: "attach",
    Twalk.type: "walk", Rwalk.type: "walk",
    Topen.type: "open", Ropen.type: "open",
    Tread.type: "read", Rread.type: "read",
    Twrite.type: "write", Rwrite.type: "write",
    Tclunk.type: "clunk", Rclunk.type: "clunk",
    Tstat.type: "stat", Rstat.type: "stat",
    Tship.type: "ship", Rship.type: "ship",
    Rerror.type: "error",
}


def encode(msg: Message) -> bytes:
    """One complete frame for *msg* (size + type + tag + payload)."""
    if not 0 <= msg.tag <= 0xFFFF:
        raise Invalid(f"tag {msg.tag} out of range", path="?", op="encode")
    payload = msg.pack_payload()
    size = _HEADER.size + len(payload)
    if size > MAX_MESSAGE:
        raise Invalid(f"message too large ({size} bytes)",
                      path="?", op="encode")
    return _HEADER.pack(size, msg.type, msg.tag) + payload


def header(buf, start: int = 0) -> tuple[int, int, int] | None:
    """Peek the ``(size, type, tag)`` of the frame at *start*.

    Returns None when fewer than :data:`HEADER_SIZE` bytes are
    available.  No validation — use :func:`decode` for that — but cheap
    enough for routers and pipelined clients to scan frame boundaries
    without materializing messages.
    """
    if len(buf) - start < HEADER_SIZE:
        return None
    return _HEADER.unpack_from(buf, start)


def decode(buf, start: int = 0) -> tuple[Message | None, int]:
    """Decode one frame from *buf* at *start*.

    *buf* may be ``bytes``, ``bytearray`` or a ``memoryview``; passing
    a view over the transport's receive buffer decodes the frame
    zero-copy (field values are materialized, the frame itself is
    never re-sliced into an intermediate ``bytes``).

    Returns ``(message, next_start)``; ``(None, start)`` when the
    buffer holds only a partial frame (read more and retry).  Raises
    :class:`~repro.fs.errors.Invalid` for frames that can never become
    valid: an undersized or oversized size field, an unknown message
    type, or a payload shorter than its own length fields claim.
    """
    avail = len(buf) - start
    if avail < _HEADER.size:
        return None, start
    size, mtype, tag = _HEADER.unpack_from(buf, start)
    if size < _HEADER.size:
        raise Invalid(f"frame size {size} smaller than header",
                      path="?", op="decode")
    if size > MAX_MESSAGE:
        raise Invalid(f"frame size {size} exceeds maximum {MAX_MESSAGE}",
                      path="?", op="decode")
    if avail < size:
        return None, start
    cls = _TYPE_TO_CLASS.get(mtype)
    if cls is None:
        raise Invalid(f"unknown message type {mtype}", path="?", op="decode")
    end = start + size
    cur = _Cursor(buf, start + _HEADER.size, end)
    msg = cls.unpack_payload(cur, tag)
    if cur.pos != end:
        raise Invalid(f"frame has {end - cur.pos} trailing bytes",
                      path="?", op="decode")
    return msg, end


__all__ = ["MAX_MESSAGE", "SEQUENTIAL", "HEADER_SIZE", "Message",
           "StatEntry", "Tattach", "Rattach", "Twalk", "Rwalk", "Topen",
           "Ropen", "Tread", "Rread", "Twrite", "Rwrite", "Tclunk",
           "Rclunk", "Tstat", "Rstat", "Tship", "Rship", "Rerror",
           "MESSAGES", "encode", "decode", "header"]
