"""In-memory filesystem: files, directories, handles, and a logical clock.

This module is the lowest layer of the Plan 9 substrate.  It knows
nothing about ``bind``/``mount`` (see :mod:`repro.fs.namespace`) or
synthetic files (see :mod:`repro.fs.server`); it provides plain nodes
and the path utilities shared by the higher layers.

Paths are Plan 9 style: ``/`` separated, absolute paths begin with
``/``, and ``.`` / ``..`` components are resolved lexically by
:func:`normalize`.  File contents are text.
"""

from __future__ import annotations

from typing import Iterator

from repro.fs.errors import (
    Closed,
    Exists,
    FsError,
    Invalid,
    IsADirectory,
    NotADirectory,
    NotFound,
    Busy,
    Permission,
)
from repro.metrics.counter import incr


def split_path(path: str) -> list[str]:
    """Split *path* into components, dropping empty ones.

    >>> split_path('/usr/rob//src/')
    ['usr', 'rob', 'src']
    """
    return [c for c in path.split("/") if c]


def normalize(path: str) -> str:
    """Lexically normalize *path* to a canonical absolute form.

    ``.`` components are dropped and ``..`` pops the previous
    component (stopping at the root).  The result always begins with
    ``/`` and never ends with one (except the root itself).

    >>> normalize('/usr/rob/../ken/./src')
    '/usr/ken/src'
    >>> normalize('//')
    '/'
    """
    out: list[str] = []
    for comp in split_path(path):
        if comp == ".":
            continue
        if comp == "..":
            if out:
                out.pop()
            continue
        out.append(comp)
    return "/" + "/".join(out)


def join(base: str, name: str) -> str:
    """Join *name* onto directory *base*; absolute *name* wins.

    >>> join('/usr/rob', 'src')
    '/usr/rob/src'
    >>> join('/usr/rob', '/bin/rc')
    '/bin/rc'
    """
    if name.startswith("/"):
        return normalize(name)
    return normalize(base + "/" + name)


def basename(path: str) -> str:
    """Final component of *path* ('' for the root)."""
    parts = split_path(path)
    return parts[-1] if parts else ""


def dirname(path: str) -> str:
    """Directory part of *path* ('/' for top-level names)."""
    parts = split_path(path)
    if len(parts) <= 1:
        return "/"
    return "/" + "/".join(parts[:-1])


class Node:
    """Base class for filesystem nodes.

    Every node records its *name*, its *mtime* (a tick from the owning
    :class:`VFS`'s logical clock, or 0 for detached nodes) and whether
    it is a directory.  Nodes deliberately do not hold parent
    pointers: the same node may be bound at several places in a
    namespace, so identity lives in the mount table, not the node.
    """

    is_dir = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.mtime = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dir" if self.is_dir else "file"
        return f"<{kind} {self.name!r}>"


class File(Node):
    """A regular text file."""

    def __init__(self, name: str, data: str = "") -> None:
        super().__init__(name)
        self.data = data

    def open(self, mode: str) -> "FileHandle":
        """Open the file; see :meth:`VFS.open` for mode semantics."""
        return FileHandle(self, mode)


class Dir(Node):
    """A directory: an ordered mapping of names to child nodes.

    Subclasses (notably :class:`repro.fs.server.SynthDir`) may override
    :meth:`lookup` and :meth:`entries` to compute children on demand.
    """

    is_dir = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._children: dict[str, Node] = {}

    def lookup(self, name: str) -> Node | None:
        """Return the child called *name*, or None."""
        return self._children.get(name)

    def entries(self) -> list[Node]:
        """All children in insertion order."""
        return list(self._children.values())

    def attach(self, node: Node) -> Node:
        """Add (or replace) *node* as a child under its own name."""
        self._children[node.name] = node
        return node

    def detach(self, name: str) -> None:
        """Remove the child called *name*.

        Raises :class:`FsError` if there is no such child.
        """
        if name not in self._children:
            raise NotFound(path=name, op="remove")
        del self._children[name]

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def __iter__(self) -> Iterator[Node]:
        return iter(self.entries())


class FileHandle:
    """An open file: a position plus read/write access to the node.

    Handles are returned by :meth:`VFS.open` and
    :meth:`Namespace.open`.  They support the context-manager protocol
    so caller code reads like ordinary Python I/O::

        with ns.open('/usr/rob/lib/profile') as f:
            text = f.read()
    """

    def __init__(self, node: File, mode: str, clock: "Clock | None" = None) -> None:
        if mode not in ("r", "w", "a", "rw"):
            raise Invalid(f"bad open mode '{mode}'", path=node.name, op="open")
        self.node = node
        self.mode = mode
        self.closed = False
        self._clock = clock
        if mode == "w":
            node.data = ""
        self.pos = len(node.data) if mode == "a" else 0
        incr("fs.open")

    def _check(self, want: str) -> None:
        op = "read" if want == "r" else "write"
        if self.closed:
            raise Closed(path=self.node.name, op=op)
        if want == "r" and self.mode not in ("r", "rw"):
            raise Permission(f"'{self.node.name}' not open for reading",
                             path=self.node.name, op=op)
        if want == "w" and self.mode == "r":
            raise Permission(f"'{self.node.name}' not open for writing",
                             path=self.node.name, op=op)

    def read(self, n: int = -1) -> str:
        """Read up to *n* characters (all remaining if n < 0)."""
        self._check("r")
        incr("fs.read")
        data = self.node.data
        if n < 0:
            out = data[self.pos:]
            self.pos = len(data)
        else:
            out = data[self.pos:self.pos + n]
            self.pos += len(out)
        return out

    def readlines(self) -> list[str]:
        """Read the rest of the file and split it keeping newlines."""
        return self.read().splitlines(keepends=True)

    def write(self, s: str) -> int:
        """Write *s* at the current position, extending the file."""
        self._check("w")
        incr("fs.write")
        data = self.node.data
        self.node.data = data[:self.pos] + s + data[self.pos + len(s):]
        self.pos += len(s)
        if self._clock is not None:
            self.node.mtime = self._clock.tick()
        return len(s)

    def seek(self, pos: int) -> None:
        """Move the read/write position to *pos* (clamped to the file)."""
        self.pos = max(0, min(pos, len(self.node.data)))

    def close(self) -> None:
        """Close the handle; closing twice is a no-op."""
        if self.closed:
            return
        self.closed = True
        incr("fs.close")

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Clock:
    """Monotonic logical clock; one tick per mutation.

    ``mk`` (and the paper's proposed inverted builder) compare file
    modification times; a logical clock makes those comparisons
    deterministic in tests.
    """

    def __init__(self) -> None:
        self.now = 0

    def tick(self) -> int:
        self.now += 1
        return self.now


class VFS:
    """A tree of :class:`Node` objects rooted at ``/``.

    The VFS is the *storage* layer; user code normally goes through a
    :class:`repro.fs.namespace.Namespace`, which adds bind/mount.  The
    two share this path API, so a Namespace over an empty mount table
    behaves exactly like its VFS.
    """

    def __init__(self) -> None:
        self.root = Dir("/")
        self.clock = Clock()

    # -- path resolution ------------------------------------------------

    def walk(self, path: str) -> Node:
        """Resolve *path* to a node, raising :class:`FsError` if absent."""
        node = self.resolve(path)
        if node is None:
            raise NotFound(path=normalize(path), op="walk")
        return node

    def resolve(self, path: str) -> Node | None:
        """Resolve *path* to a node, or None if any component is missing."""
        node: Node = self.root
        for comp in split_path(normalize(path)):
            if not isinstance(node, Dir):
                return None
            child = node.lookup(comp)
            if child is None:
                return None
            node = child
        return node

    def exists(self, path: str) -> bool:
        """True if *path* resolves to a node."""
        return self.resolve(path) is not None

    def isdir(self, path: str) -> bool:
        """True if *path* resolves to a directory."""
        node = self.resolve(path)
        return node is not None and node.is_dir

    # -- creation / removal ---------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> Dir:
        """Create directory *path*; with *parents*, create missing ancestors.

        Creating an existing directory is an error unless *parents* is
        set (matching ``mkdir -p``).
        """
        parts = split_path(normalize(path))
        node: Dir = self.root
        for i, comp in enumerate(parts):
            child = node.lookup(comp)
            last = i == len(parts) - 1
            if child is None:
                if not last and not parents:
                    raise NotFound(path=dirname(path), op="mkdir")
                child = node.attach(Dir(comp))
                child.mtime = self.clock.tick()
            elif last and not parents:
                raise Exists(path=normalize(path), op="mkdir")
            if not isinstance(child, Dir):
                raise NotADirectory(path=comp, op="mkdir")
            node = child
        return node

    def create(self, path: str, data: str = "") -> File:
        """Create (or truncate) the file at *path* with *data*."""
        parent = self.walk(dirname(path))
        if not isinstance(parent, Dir):
            raise NotADirectory(path=dirname(path), op="create")
        name = basename(path)
        existing = parent.lookup(name)
        if existing is not None:
            if existing.is_dir:
                raise IsADirectory(path=normalize(path), op="create")
            assert isinstance(existing, File)
            existing.data = data
            existing.mtime = self.clock.tick()
            return existing
        node = File(name, data)
        node.mtime = self.clock.tick()
        parent.attach(node)
        return node

    def remove(self, path: str) -> None:
        """Remove the file or (empty) directory at *path*."""
        node = self.walk(path)
        if isinstance(node, Dir) and node.entries():
            raise Busy(f"'{normalize(path)}' not empty",
                       path=normalize(path), op="remove")
        parent = self.walk(dirname(path))
        assert isinstance(parent, Dir)
        parent.detach(basename(path))

    # -- convenience I/O --------------------------------------------------

    def open(self, path: str, mode: str = "r") -> FileHandle:
        """Open the file at *path*.

        Modes: ``'r'`` read, ``'w'`` truncate-write, ``'a'`` append,
        ``'rw'`` read/write without truncation.  ``'w'`` and ``'a'``
        create the file if missing.
        """
        node = self.resolve(path)
        if node is None:
            if mode in ("w", "a"):
                node = self.create(path)
            else:
                raise NotFound(path=normalize(path), op="open")
        if node.is_dir:
            raise IsADirectory(path=normalize(path), op="open")
        assert isinstance(node, File)
        return FileHandle(node, mode, self.clock)

    def read(self, path: str) -> str:
        """Return the full contents of the file at *path*."""
        with self.open(path) as f:
            return f.read()

    def write(self, path: str, data: str) -> None:
        """Replace the contents of the file at *path* (creating it)."""
        with self.open(path, "w") as f:
            f.write(data)

    def append(self, path: str, data: str) -> None:
        """Append *data* to the file at *path* (creating it)."""
        with self.open(path, "a") as f:
            f.write(data)

    def listdir(self, path: str) -> list[str]:
        """Sorted names of the entries in the directory at *path*."""
        node = self.walk(path)
        if not isinstance(node, Dir):
            raise NotADirectory(path=normalize(path), op="listdir")
        return sorted(e.name for e in node.entries())

    def mtime(self, path: str) -> int:
        """Logical mtime of the node at *path*."""
        return self.walk(path).mtime

    def touch(self, path: str) -> None:
        """Bump the mtime of *path*, creating an empty file if missing."""
        node = self.resolve(path)
        if node is None:
            node = self.create(path)
        else:
            node.mtime = self.clock.tick()

    def glob(self, pattern: str) -> list[str]:
        """Expand a shell glob *pattern* against the tree.

        Supports ``*`` and ``?`` in any component (the subset rc uses;
        the paper's examples are all of the ``*.c`` form).  Returns
        sorted full paths; a pattern with no matches returns ``[]``.
        """
        import fnmatch

        pattern = normalize(pattern)
        matches = ["/"]
        for comp in split_path(pattern):
            new: list[str] = []
            for base in matches:
                node = self.resolve(base)
                if not isinstance(node, Dir):
                    continue
                if "*" in comp or "?" in comp or "[" in comp:
                    for entry in node.entries():
                        if fnmatch.fnmatchcase(entry.name, comp):
                            new.append(join(base, entry.name))
                else:
                    if node.lookup(comp) is not None:
                        new.append(join(base, comp))
            matches = new
        return sorted(matches)
