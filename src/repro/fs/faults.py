"""Deterministic fault injection for file-server trees.

The ROADMAP asks the system to handle "as many scenarios as you can
imagine"; this module makes the bad scenarios *reproducible*.  A
:class:`FaultPlan` is a schedule of :class:`Fault` rules — each names
an operation (``open``/``read``/``write``/``close``), a path pattern,
and which matching occurrence should fail — and :func:`wrap` grafts
the plan over any :class:`~repro.fs.vfs.Node` tree::

    plan = FaultPlan(
        Fault(op='write', path='*/ctl', at=2),          # 2nd ctl write
        Fault(op='read', path='/mnt/help/index', short=4),
    )
    ns.mount(wrap(helpfs.root, plan, base='/mnt/help'), '/mnt/help')

Everything stays deterministic: rules fire by op-count, never by time
or randomness, so a failing schedule is a regression test.  Injected
errors are ordinary taxonomy errors (:mod:`repro.fs.errors`) carrying
the faulted path and op, and every trigger bumps the
``fs.fault.injected`` counter alongside the ``fs.error.<kind>``
counter the error itself records — tests assert the counters match
the schedule.

Short reads (``short=N``) truncate the data instead of raising: the
reader sees the first *N* characters and must cope with a partial
result, the file-server analogue of a short ``read(2)``.

Crash faults (``crash=True``) kill the simulated process: the
triggering write lands only a torn prefix of its data (``short``
characters, default half), the op raises
:class:`~repro.fs.errors.Crashed`, and the plan goes *dead* — every
later op on it raises ``Crashed`` too, because a dead process answers
nothing.  This is how journal crash-recovery scenarios are staged.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from repro.fs.errors import Crashed, FsError, IOFault
from repro.fs.vfs import Dir, File, Node, join
from repro.metrics.counter import incr

OPS = ("open", "read", "write", "close")


@dataclass
class Fault:
    """One scheduled failure.

    ``op``      which operation to sabotage (one of :data:`OPS`);
    ``path``    fnmatch pattern over canonical paths (``'*/ctl'``);
    ``at``      1-based index of the matching op that fails — ``0``
                means *every* matching op fails;
    ``kind``    the taxonomy error class to raise;
    ``short``   for reads: return only the first *short* characters
                instead of raising; for crashing writes: how many
                characters land before the process dies;
    ``crash``   the process dies at this op: a write tears mid-record
                (``short`` characters if given, else half), the plan
                goes *dead*, and every later op raises
                :class:`~repro.fs.errors.Crashed`;
    ``message`` optional override for the error message.
    """

    op: str
    path: str = "*"
    at: int = 1
    kind: type[FsError] = IOFault
    short: int | None = None
    crash: bool = False
    message: str | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown faultable op {self.op!r}")


@dataclass
class FaultPlan:
    """An ordered schedule of faults with per-rule op counters."""

    faults: list[Fault]
    _seen: list[int] = field(default_factory=list, repr=False)
    fired: list[int] = field(default_factory=list, repr=False)

    def __init__(self, *faults: Fault) -> None:
        self.faults = list(faults)
        self._seen = [0] * len(self.faults)
        self.fired = [0] * len(self.faults)
        self.dead = False   # a crash fault fired; the process is gone

    def reset(self) -> None:
        """Zero the op counters so the schedule replays from the start."""
        self._seen = [0] * len(self.faults)
        self.fired = [0] * len(self.faults)
        self.dead = False

    @property
    def injected(self) -> int:
        """Total number of faults triggered so far."""
        return sum(self.fired)

    def check(self, op: str, path: str) -> Fault | None:
        """Record one *op* on *path*; raise if a rule says so.

        Returns the triggering rule for non-raising modifiers (short
        reads) so the caller can apply them, or None.
        """
        if self.dead:
            # closing a handle to a dead process is a no-op (as after
            # EIO); raising here would mask the crash that killed it
            if op == "close":
                return None
            raise Crashed(path=path, op=op)
        modifier: Fault | None = None
        to_raise: Fault | None = None
        # every matching rule counts the op, even when an earlier rule
        # is about to kill it — rules fire by *attempted* op index
        for i, fault in enumerate(self.faults):
            if fault.op != op or not fnmatch.fnmatchcase(path, fault.path):
                continue
            self._seen[i] += 1
            if fault.at != 0 and self._seen[i] != fault.at:
                continue
            self.fired[i] += 1
            incr("fs.fault.injected")
            if fault.crash:
                # the plan dies; a crashing *write* is handed back so
                # the session can tear the record before raising
                self.dead = True
                if op == "write":
                    if modifier is None:
                        modifier = fault
                elif to_raise is None:
                    to_raise = fault
            elif fault.short is not None and op == "read":
                if modifier is None:
                    modifier = fault
            elif to_raise is None:
                to_raise = fault
        if to_raise is not None:
            if to_raise.crash:
                raise Crashed(to_raise.message, path=path, op=op)
            raise to_raise.kind(to_raise.message, path=path, op=op)
        return modifier


class FaultyFile(File):
    """A file whose opens and handles consult a :class:`FaultPlan`."""

    def __init__(self, inner: File, plan: FaultPlan, path: str) -> None:
        Node.__init__(self, inner.name)
        self._inner = inner
        self._plan = plan
        self._path = path
        self.mtime = inner.mtime

    @property
    def data(self) -> str:  # type: ignore[override]
        return self._inner.data

    def open(self, mode: str) -> "FaultySession":
        self._plan.check("open", self._path)
        return FaultySession(self._inner.open(mode), self._plan, self._path)


class FaultySession:
    """Wraps any handle or session, injecting faults per the plan."""

    def __init__(self, inner, plan: FaultPlan, path: str) -> None:
        self._inner = inner
        self._plan = plan
        self._path = path
        self._done = False

    def read(self, n: int = -1) -> str:
        rule = self._plan.check("read", self._path)
        data = self._inner.read(n)
        if rule is not None and rule.short is not None:
            return data[:rule.short]
        return data

    def readlines(self) -> list[str]:
        return self.read().splitlines(keepends=True)

    def write(self, s: str) -> int:
        rule = self._plan.check("write", self._path)
        if rule is not None and rule.crash:
            torn = s[:rule.short] if rule.short is not None else s[:len(s) // 2]
            if torn:
                self._inner.write(torn)
            raise Crashed(rule.message, path=self._path, op="write")
        return self._inner.write(s)

    def seek(self, pos: int) -> None:
        self._inner.seek(pos)

    def close(self) -> None:
        """Close-time faults still close the underlying handle."""
        if self._done:
            return
        self._done = True
        try:
            self._plan.check("close", self._path)
        finally:
            self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    @property
    def mode(self) -> str:
        return self._inner.mode

    @property
    def pos(self) -> int:
        return self._inner.pos

    def __enter__(self) -> "FaultySession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class FaultyDir(Dir):
    """A directory view that wraps every child in the fault layer."""

    def __init__(self, inner: Dir, plan: FaultPlan, path: str) -> None:
        super().__init__(inner.name)
        self._inner = inner
        self._plan = plan
        self._path = path

    def _wrap(self, node: Node) -> Node:
        return wrap(node, self._plan, base=join(self._path, node.name))

    def lookup(self, name: str) -> Node | None:
        child = self._inner.lookup(name)
        return None if child is None else self._wrap(child)

    def entries(self) -> list[Node]:
        return [self._wrap(child) for child in self._inner.entries()]

    def attach(self, node: Node) -> Node:
        return self._inner.attach(node)

    def detach(self, name: str) -> None:
        self._inner.detach(name)


def wrap(node: Node, plan: FaultPlan, base: str = "/") -> Node:
    """The fault-injecting view of *node*, reporting paths under *base*.

    *base* should be the path the tree will be mounted at, so injected
    errors and rule patterns read like real namespace paths
    (``/mnt/help/7/body``).  The underlying tree is never modified —
    unmounting the wrapped view restores normal service.
    """
    if isinstance(node, Dir):
        return FaultyDir(node, plan, base)
    if isinstance(node, File):
        return FaultyFile(node, plan, base)
    return node
