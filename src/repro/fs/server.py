"""Synthetic files and directories: the file-server mechanism.

``help`` "provides its client processes access to its structure by
presenting a file service".  On Plan 9 that service speaks 9P; here a
server is simply a tree of nodes whose contents are *computed*:

- a :class:`SynthFile` produces its text on open (``read_fn``) and
  hands writes to a callback (``write_fn``), or supplies a custom
  session factory (``open_fn``) when per-open state matters — opening
  ``/mnt/help/new/ctl`` must create a window and let the opener read
  the new window's name back;
- a :class:`SynthDir` lists and looks up its children through
  callbacks, so ``/mnt/help`` can grow a numbered directory every time
  a window is created.

Such trees are grafted into a namespace with
:meth:`repro.fs.namespace.Namespace.mount`, after which ordinary reads
and writes reach the server — exactly the property the paper exploits
to let shell scripts drive the user interface.
"""

from __future__ import annotations

from typing import Callable

from repro.fs.errors import Closed, Invalid, Permission
from repro.fs.vfs import Dir, File, Node
from repro.metrics.counter import current_registry, incr, use_registry


class SynthSession:
    """Per-open state of a synthetic file.

    The default session snapshots the producer's text at open time (so
    a reader sees a consistent view even while the window changes) and
    forwards each write, line-buffered, to the consumer.  Servers that
    need different semantics subclass or replace it via ``open_fn``.

    Every session knows the *name* of the file it was opened on, so
    its errors identify the file instead of saying only "closed file".
    Closing is idempotent and exception-safe: a second ``close`` is a
    no-op even if the first one's flush raised, and a session dropped
    without ``close()`` flushes its unterminated final line from
    ``__del__`` as a last resort.
    """

    def __init__(self, mode: str,
                 read_fn: Callable[[], str] | None = None,
                 write_fn: Callable[[str], None] | None = None,
                 name: str = "") -> None:
        self.mode = mode
        self.name = name
        self.closed = False
        self._read_fn = read_fn
        self._write_fn = write_fn
        self._snapshot: str | None = None
        self._pending = ""
        self.pos = 0
        # close() may run from __del__ on whatever thread the collector
        # interrupts; book it against the ledger that booked the open,
        # or sessions dropped in one context bleed closes into another.
        self._registry = current_registry()
        incr("fs.open")

    def _check(self, want: str) -> None:
        op = "read" if want == "r" else "write"
        where = self.name or "?"
        if self.closed:
            raise Closed(path=where, op=op)
        if want == "r" and self.mode not in ("r", "rw"):
            raise Permission(f"'{where}' not open for reading",
                             path=where, op=op)
        if want == "w" and self.mode == "r":
            raise Permission(f"'{where}' not open for writing",
                             path=where, op=op)

    def read(self, n: int = -1) -> str:
        """Read from the snapshot taken at first read."""
        self._check("r")
        if self._read_fn is None:
            raise Permission(f"'{self.name or '?'}' not readable",
                             path=self.name or "?", op="read")
        incr("fs.read")
        if self._snapshot is None:
            self._snapshot = self._read_fn()
        data = self._snapshot
        if n < 0:
            out = data[self.pos:]
            self.pos = len(data)
        else:
            out = data[self.pos:self.pos + n]
            self.pos += len(out)
        return out

    def readlines(self) -> list[str]:
        """Remaining snapshot split keeping newlines."""
        return self.read().splitlines(keepends=True)

    def write(self, s: str) -> int:
        """Forward complete lines to the consumer; buffer the remainder."""
        self._check("w")
        if self._write_fn is None:
            raise Permission(f"'{self.name or '?'}' not writable",
                             path=self.name or "?", op="write")
        incr("fs.write")
        self._pending += s
        while "\n" in self._pending:
            line, self._pending = self._pending.split("\n", 1)
            self._write_fn(line + "\n")
        return len(s)

    def seek(self, pos: int) -> None:
        """Reposition the read offset within the snapshot."""
        if self._snapshot is None and self._read_fn is not None:
            self._snapshot = self._read_fn()
        limit = len(self._snapshot or "")
        self.pos = max(0, min(pos, limit))

    def close(self) -> None:
        """Flush any unterminated final line, then close.

        Idempotent, and exception-safe: the session is marked closed
        and the buffer cleared *before* the flush callback runs, so a
        consumer that fails cannot leave the session half-closed or
        replay the tail on a retry.
        """
        if self.closed:
            return
        self.closed = True
        with use_registry(self._registry):
            incr("fs.close")
        pending, self._pending = self._pending, ""
        if pending and self._write_fn is not None:
            self._write_fn(pending)

    def __del__(self) -> None:
        # Last-ditch flush for sessions dropped without close(): an
        # unterminated final line must not vanish just because the
        # writer forgot (or failed) to close the handle.
        try:
            self.close()
        except Exception:
            pass  # interpreter teardown / consumer gone: nothing to tell

    def __enter__(self) -> "SynthSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SynthFile(File):
    """A file whose contents are served, not stored.

    Exactly one of the two styles is used:

    - *callback style*: pass ``read_fn`` and/or ``write_fn`` and every
      open gets a default :class:`SynthSession` over them;
    - *session style*: pass ``open_fn(mode) -> session`` for files with
      per-open behaviour (``new/ctl``).
    """

    def __init__(self, name: str,
                 read_fn: Callable[[], str] | None = None,
                 write_fn: Callable[[str], None] | None = None,
                 open_fn: Callable[[str], SynthSession] | None = None) -> None:
        Node.__init__(self, name)  # skip File.__init__: .data is a property here
        self._read_fn = read_fn
        self._write_fn = write_fn
        self._open_fn = open_fn

    @property
    def data(self) -> str:  # type: ignore[override]
        """Reading ``.data`` serves the current contents (for `cat`-style use)."""
        if self._read_fn is not None:
            return self._read_fn()
        return ""

    @data.setter
    def data(self, value: str) -> None:
        raise Permission(f"'{self.name}': synthetic file; write through a handle",
                         path=self.name, op="write")

    def open(self, mode: str) -> SynthSession:
        if mode not in ("r", "w", "a", "rw"):
            raise Invalid(f"bad open mode '{mode}'", path=self.name, op="open")
        if self._open_fn is not None:
            session = self._open_fn(mode)
            if not getattr(session, "name", ""):
                session.name = self.name
            return session
        if mode in ("w", "a") and self._write_fn is None:
            raise Permission(f"'{self.name}' not writable",
                             path=self.name, op="open")
        if mode == "r" and self._read_fn is None:
            raise Permission(f"'{self.name}' not readable",
                             path=self.name, op="open")
        return SynthSession(mode, self._read_fn, self._write_fn,
                            name=self.name)


class SynthDir(Dir):
    """A directory whose entries are computed on demand.

    ``list_fn`` returns the live children; ``lookup_fn`` resolves a
    single name (defaulting to a scan of ``list_fn()``).  Static
    children attached with :meth:`~repro.fs.vfs.Dir.attach` are served
    too, after the dynamic ones.
    """

    def __init__(self, name: str,
                 list_fn: Callable[[], list[Node]] | None = None,
                 lookup_fn: Callable[[str], Node | None] | None = None) -> None:
        super().__init__(name)
        self._list_fn = list_fn
        self._lookup_fn = lookup_fn

    def entries(self) -> list[Node]:
        dynamic = self._list_fn() if self._list_fn is not None else []
        seen = {node.name for node in dynamic}
        static = [node for node in super().entries() if node.name not in seen]
        return dynamic + static

    def lookup(self, name: str) -> Node | None:
        if self._lookup_fn is not None:
            node = self._lookup_fn(name)
            if node is not None:
                return node
        elif self._list_fn is not None:
            for node in self._list_fn():
                if node.name == name:
                    return node
        return super().lookup(name)
