"""Synthetic files and directories: the file-server mechanism.

``help`` "provides its client processes access to its structure by
presenting a file service".  On Plan 9 that service speaks 9P; here a
server is simply a tree of nodes whose contents are *computed*:

- a :class:`SynthFile` produces its text on open (``read_fn``) and
  hands writes to a callback (``write_fn``), or supplies a custom
  session factory (``open_fn``) when per-open state matters — opening
  ``/mnt/help/new/ctl`` must create a window and let the opener read
  the new window's name back;
- a :class:`SynthDir` lists and looks up its children through
  callbacks, so ``/mnt/help`` can grow a numbered directory every time
  a window is created.

Such trees are grafted into a namespace with
:meth:`repro.fs.namespace.Namespace.mount`, after which ordinary reads
and writes reach the server — exactly the property the paper exploits
to let shell scripts drive the user interface.
"""

from __future__ import annotations

from typing import Callable

from repro.fs.vfs import Dir, File, FsError, Node


class SynthSession:
    """Per-open state of a synthetic file.

    The default session snapshots the producer's text at open time (so
    a reader sees a consistent view even while the window changes) and
    forwards each write, line-buffered, to the consumer.  Servers that
    need different semantics subclass or replace it via ``open_fn``.
    """

    def __init__(self, mode: str,
                 read_fn: Callable[[], str] | None = None,
                 write_fn: Callable[[str], None] | None = None) -> None:
        self.mode = mode
        self.closed = False
        self._read_fn = read_fn
        self._write_fn = write_fn
        self._snapshot: str | None = None
        self._pending = ""
        self.pos = 0

    def _check(self, want: str) -> None:
        if self.closed:
            raise FsError("read/write on closed file")
        if want == "r" and self.mode not in ("r", "rw"):
            raise FsError("not open for reading")
        if want == "w" and self.mode == "r":
            raise FsError("not open for writing")

    def read(self, n: int = -1) -> str:
        """Read from the snapshot taken at first read."""
        self._check("r")
        if self._read_fn is None:
            raise FsError("not readable")
        if self._snapshot is None:
            self._snapshot = self._read_fn()
        data = self._snapshot
        if n < 0:
            out = data[self.pos:]
            self.pos = len(data)
        else:
            out = data[self.pos:self.pos + n]
            self.pos += len(out)
        return out

    def readlines(self) -> list[str]:
        """Remaining snapshot split keeping newlines."""
        return self.read().splitlines(keepends=True)

    def write(self, s: str) -> int:
        """Forward complete lines to the consumer; buffer the remainder."""
        self._check("w")
        if self._write_fn is None:
            raise FsError("not writable")
        self._pending += s
        while "\n" in self._pending:
            line, self._pending = self._pending.split("\n", 1)
            self._write_fn(line + "\n")
        return len(s)

    def seek(self, pos: int) -> None:
        """Reposition the read offset within the snapshot."""
        if self._snapshot is None and self._read_fn is not None:
            self._snapshot = self._read_fn()
        limit = len(self._snapshot or "")
        self.pos = max(0, min(pos, limit))

    def close(self) -> None:
        """Flush any unterminated final line, then close."""
        if self._pending and self._write_fn is not None:
            self._write_fn(self._pending)
            self._pending = ""
        self.closed = True

    def __enter__(self) -> "SynthSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SynthFile(File):
    """A file whose contents are served, not stored.

    Exactly one of the two styles is used:

    - *callback style*: pass ``read_fn`` and/or ``write_fn`` and every
      open gets a default :class:`SynthSession` over them;
    - *session style*: pass ``open_fn(mode) -> session`` for files with
      per-open behaviour (``new/ctl``).
    """

    def __init__(self, name: str,
                 read_fn: Callable[[], str] | None = None,
                 write_fn: Callable[[str], None] | None = None,
                 open_fn: Callable[[str], SynthSession] | None = None) -> None:
        Node.__init__(self, name)  # skip File.__init__: .data is a property here
        self._read_fn = read_fn
        self._write_fn = write_fn
        self._open_fn = open_fn

    @property
    def data(self) -> str:  # type: ignore[override]
        """Reading ``.data`` serves the current contents (for `cat`-style use)."""
        if self._read_fn is not None:
            return self._read_fn()
        return ""

    @data.setter
    def data(self, value: str) -> None:
        raise FsError(f"'{self.name}': synthetic file; write through a handle")

    def open(self, mode: str) -> SynthSession:
        if mode not in ("r", "w", "a", "rw"):
            raise FsError(f"bad open mode '{mode}'")
        if self._open_fn is not None:
            return self._open_fn(mode)
        if mode in ("w", "a") and self._write_fn is None:
            raise FsError(f"'{self.name}' not writable")
        if mode == "r" and self._read_fn is None:
            raise FsError(f"'{self.name}' not readable")
        return SynthSession(mode, self._read_fn, self._write_fn)


class SynthDir(Dir):
    """A directory whose entries are computed on demand.

    ``list_fn`` returns the live children; ``lookup_fn`` resolves a
    single name (defaulting to a scan of ``list_fn()``).  Static
    children attached with :meth:`~repro.fs.vfs.Dir.attach` are served
    too, after the dynamic ones.
    """

    def __init__(self, name: str,
                 list_fn: Callable[[], list[Node]] | None = None,
                 lookup_fn: Callable[[str], Node | None] | None = None) -> None:
        super().__init__(name)
        self._list_fn = list_fn
        self._lookup_fn = lookup_fn

    def entries(self) -> list[Node]:
        dynamic = self._list_fn() if self._list_fn is not None else []
        seen = {node.name for node in dynamic}
        static = [node for node in super().entries() if node.name not in seen]
        return dynamic + static

    def lookup(self, name: str) -> Node | None:
        if self._lookup_fn is not None:
            node = self._lookup_fn(name)
            if node is not None:
                return node
        elif self._list_fn is not None:
            for node in self._list_fn():
                if node.name == name:
                    return node
        return super().lookup(name)
