"""Plan 9 filesystem substrate.

The paper's ``help`` runs on Plan 9, where *everything* — including the
user interface itself — is reached through file operations on a
per-process namespace assembled with ``bind`` and ``mount``.  This
package provides that substrate in-process:

- :mod:`repro.fs.vfs` — an in-memory filesystem of files and
  directories, with a logical modification clock (used by the ``mk``
  build substrate).
- :mod:`repro.fs.namespace` — Plan 9 ``bind``/``mount`` semantics:
  union directories with before/after/replace ordering, per-namespace
  mount tables over a shared VFS.
- :mod:`repro.fs.server` — synthetic (server-backed) files and
  directories whose contents are computed per open, the mechanism by
  which :mod:`repro.helpfs` serves ``/mnt/help``.

All file contents are text (``str``): ``help`` "operates only on text"
and so does this reproduction.
"""

from repro.fs.vfs import (
    VFS,
    Dir,
    File,
    FileHandle,
    FsError,
    Node,
    normalize,
    split_path,
)
from repro.fs.namespace import BindFlag, Namespace
from repro.fs.server import SynthDir, SynthFile, SynthSession

__all__ = [
    "VFS",
    "Dir",
    "File",
    "FileHandle",
    "FsError",
    "Node",
    "Namespace",
    "BindFlag",
    "SynthDir",
    "SynthFile",
    "SynthSession",
    "normalize",
    "split_path",
]
