"""Plan 9 filesystem substrate.

The paper's ``help`` runs on Plan 9, where *everything* — including the
user interface itself — is reached through file operations on a
per-process namespace assembled with ``bind`` and ``mount``.  This
package provides that substrate in-process:

- :mod:`repro.fs.vfs` — an in-memory filesystem of files and
  directories, with a logical modification clock (used by the ``mk``
  build substrate).
- :mod:`repro.fs.namespace` — Plan 9 ``bind``/``mount`` semantics:
  union directories with before/after/replace ordering, per-namespace
  mount tables over a shared VFS.
- :mod:`repro.fs.server` — synthetic (server-backed) files and
  directories whose contents are computed per open, the mechanism by
  which :mod:`repro.helpfs` serves ``/mnt/help``.
- :mod:`repro.fs.errors` — the structured error taxonomy every layer
  raises (``NotFound``, ``Closed``, ``IOFault``, ...), each carrying
  the canonical path and operation.
- :mod:`repro.fs.faults` — deterministic fault injection: wrap any
  tree in a :class:`~repro.fs.faults.FaultPlan` and scheduled opens,
  reads, writes, or closes fail on cue for robustness tests.
- :mod:`repro.fs.wire` — the 9P-style wire codec: tagged T/R message
  frames with size prefixes, carrying the error taxonomy in
  ``Rerror`` replies.
- :mod:`repro.fs.mux` — multiplexed service over byte transports
  (in-memory pipes, TCP sockets): a concurrent
  :class:`~repro.fs.mux.WireServer`, a tag-multiplexing
  :class:`~repro.fs.mux.MuxClient`, and ``Remote*`` proxies so a
  remote server mounts into a local namespace transparently.

All file contents are text (``str``): ``help`` "operates only on text"
and so does this reproduction.
"""

from repro.fs.errors import (
    Busy,
    Closed,
    Exists,
    FsError,
    Invalid,
    IOFault,
    IsADirectory,
    NotADirectory,
    NotFound,
    Permission,
    diagnostic,
)
from repro.fs.vfs import (
    VFS,
    Dir,
    File,
    FileHandle,
    Node,
    normalize,
    split_path,
)
from repro.fs.namespace import BindFlag, Namespace
from repro.fs.server import SynthDir, SynthFile, SynthSession
from repro.fs.faults import Fault, FaultPlan, wrap
from repro.fs.mux import (
    MuxClient,
    RemoteDir,
    RemoteFile,
    RemoteSession,
    WireServer,
    channel_pair,
    dial,
    mount_remote,
)

__all__ = [
    "VFS",
    "Dir",
    "File",
    "FileHandle",
    "FsError",
    "NotFound",
    "NotADirectory",
    "IsADirectory",
    "Exists",
    "Permission",
    "Busy",
    "Closed",
    "IOFault",
    "Invalid",
    "diagnostic",
    "Fault",
    "FaultPlan",
    "wrap",
    "Node",
    "Namespace",
    "BindFlag",
    "SynthDir",
    "SynthFile",
    "SynthSession",
    "normalize",
    "split_path",
    "WireServer",
    "MuxClient",
    "RemoteDir",
    "RemoteFile",
    "RemoteSession",
    "channel_pair",
    "dial",
    "mount_remote",
]
