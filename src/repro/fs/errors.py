"""The filesystem error taxonomy: structured failures for every layer.

Everything in this system — the shell, the tools, ``help`` itself —
talks to the world through file operations, so a swallowed or
stringly-typed error corrupts the only channel applications have to
the user.  Every failure raised by :mod:`repro.fs` and
:mod:`repro.helpfs` is an instance of one of the subclasses below,
carrying

- ``path`` — the canonical path the operation was applied to (or the
  node name when no full path is known),
- ``op`` — the operation that failed (``'open'``, ``'read'``,
  ``'write'``, ``'close'``, ``'walk'``, ``'remove'``, ...),
- ``kind`` — a short machine-readable tag (``'notfound'``,
  ``'closed'``, ...) that also names the ``fs.error.<kind>``
  performance counter bumped when the error is created.

``str(exc)`` stays the terse Plan 9-style user message ("'/x' does
not exist") that the Errors window shows; :meth:`FsError.diagnostic`
renders the structured one-line form the shell prints::

    open '/mnt/help/7/body': does not exist [notfound]
"""

from __future__ import annotations

from repro.metrics.counter import incr


class FsError(Exception):
    """Base class for all filesystem failures.

    May be raised bare (``FsError("message")``) by code outside the
    fs packages; inside :mod:`repro.fs` and :mod:`repro.helpfs` only
    the taxonomy subclasses are raised, so callers can dispatch on
    type and counters can attribute failures by kind.
    """

    kind = "io"
    fmt = "'{path}': i/o error"

    def __init__(self, message: str | None = None, *,
                 path: str | None = None, op: str | None = None) -> None:
        if message is None:
            message = (self.fmt.format(path=path) if path is not None
                       else self.fmt.format(path="?"))
        super().__init__(message)
        self.path = path
        self.op = op
        # The reason is the message with the leading quoted path (if
        # any) stripped, so diagnostic() never prints the path twice.
        reason = message
        if path is not None:
            quoted = f"'{path}'"
            if reason.startswith(quoted):
                reason = reason[len(quoted):].lstrip(":").strip()
        self.reason = reason or message
        incr(f"fs.error.{self.kind}")

    def diagnostic(self) -> str:
        """The structured one-line form: ``op 'path': reason [kind]``."""
        op = self.op or "io"
        if self.path is not None:
            return f"{op} '{self.path}': {self.reason} [{self.kind}]"
        return f"{op}: {self.reason} [{self.kind}]"


class NotFound(FsError):
    """The path does not resolve (or a mount point is not mounted)."""

    kind = "notfound"
    fmt = "'{path}' does not exist"


class NotADirectory(FsError):
    """A directory operation hit a plain file."""

    kind = "notadir"
    fmt = "'{path}' is not a directory"


class IsADirectory(FsError):
    """A file operation hit a directory."""

    kind = "isadir"
    fmt = "'{path}' is a directory"


class Exists(FsError):
    """Creation collided with an existing node."""

    kind = "exists"
    fmt = "'{path}' already exists"


class Permission(FsError):
    """The node refuses the requested access (mode, writability)."""

    kind = "perm"
    fmt = "'{path}' permission denied"


class Busy(FsError):
    """The node is in use: a mount point, a non-empty directory."""

    kind = "busy"
    fmt = "'{path}' busy"


class Closed(FsError):
    """I/O on a handle after close()."""

    kind = "closed"
    fmt = "'{path}': read/write on closed file"


class IOFault(FsError):
    """A (possibly injected) transport or device failure."""

    kind = "iofault"
    fmt = "'{path}': i/o fault"


class Invalid(FsError):
    """A malformed request: bad open mode, mismatched bind kinds."""

    kind = "invalid"
    fmt = "'{path}': invalid request"


class Crashed(IOFault):
    """The serving process died mid-operation.

    Raised once by the operation that crashed (possibly after a torn
    partial write) and then by every later operation on the same
    fault plan: a dead process answers nothing.
    """

    kind = "crashed"
    fmt = "'{path}': process crashed"


def diagnostic(exc: BaseException) -> str:
    """The structured form of *exc* if it has one, else ``str(exc)``.

    Shell commands print their errors through this so taxonomy errors
    come out structured while plain exceptions stay readable.
    """
    if isinstance(exc, FsError):
        return exc.diagnostic()
    return str(exc)


TAXONOMY = (NotFound, NotADirectory, IsADirectory, Exists, Permission,
            Busy, Closed, IOFault, Invalid, Crashed)

__all__ = ["FsError", "NotFound", "NotADirectory", "IsADirectory",
           "Exists", "Permission", "Busy", "Closed", "IOFault",
           "Invalid", "Crashed", "diagnostic", "TAXONOMY"]
