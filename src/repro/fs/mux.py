"""Multiplexed file service over byte transports.

This is the layer that makes :mod:`repro.fs.wire` useful: a
:class:`WireServer` serves any :class:`~repro.fs.vfs.Node` tree to
many concurrent client connections, a :class:`MuxClient` multiplexes
many outstanding requests over one connection by tag, and the
``Remote*`` proxies satisfy the local node interface so
:meth:`repro.fs.namespace.Namespace.mount` can graft a *remote* server
into a local namespace — ``help`` and the shell run unchanged against
a mounted remote ``/mnt/help``, which is the paper's whole point about
the UI being a file server.

Transports are anything with ``send``/``recv``/``close``:
:func:`channel_pair` builds an in-memory byte pipe (optionally with a
``max_chunk`` so every read is short, exercising frame reassembly),
and :meth:`WireServer.listen` / :func:`dial` speak the same frames
over real TCP sockets.

Flow control: the client bounds its own outstanding requests with a
semaphore, and the server protects itself independently — a connection
exceeding ``max_outstanding`` in-flight requests gets ``busy`` error
replies until it drains.

Instrumentation (:mod:`repro.metrics`): the server counts every RPC
(``wire.rpc.<op>``) and byte (``wire.bytes.in`` / ``wire.bytes.out``),
tracks the in-flight gauge (``mux.inflight``), and records per-op
service-time histograms (``wire.rpc.<op>``, microseconds); the client
records round-trip histograms (``mux.rpc.<op>``).
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext

from repro.fs import wire
from repro.fs.errors import (
    Busy,
    Closed,
    FsError,
    Invalid,
    IOFault,
    IsADirectory,
    NotADirectory,
    NotFound,
)
from repro.fs.vfs import Clock, Dir, File, FileHandle, Node, basename, join, split_path
from repro.metrics.counter import incr, observe, use_registry

_RECV_SIZE = 1 << 16


# -- transports --------------------------------------------------------------


class _Buffer:
    """One direction of an in-memory pipe: a byte queue with blocking."""

    def __init__(self) -> None:
        self._data = bytearray()
        self._closed = False
        self._cond = threading.Condition()

    def put(self, data: bytes) -> None:
        with self._cond:
            if self._closed:
                raise Closed("pipe closed", path="<pipe>", op="write")
            self._data.extend(data)
            self._cond.notify_all()

    def get(self, n: int) -> bytes:
        with self._cond:
            while not self._data and not self._closed:
                self._cond.wait()
            if not self._data:
                return b""
            out = bytes(self._data[:n])
            del self._data[:n]
            return out

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class PipeChannel:
    """One endpoint of an in-memory bidirectional byte pipe.

    With ``max_chunk`` set, every receive returns at most that many
    bytes — a deterministic short read, so framing code can prove it
    reassembles messages split at arbitrary byte boundaries.
    """

    def __init__(self, rx: _Buffer, tx: _Buffer,
                 max_chunk: int | None = None) -> None:
        self._rx = rx
        self._tx = tx
        self.max_chunk = max_chunk

    def send(self, data: bytes) -> None:
        # short *writes* at the transport: hand the peer one chunk at
        # a time so a reader can wake mid-frame
        step = self.max_chunk or len(data) or 1
        for i in range(0, len(data), step):
            self._tx.put(data[i:i + step])

    def recv(self, n: int = _RECV_SIZE) -> bytes:
        if self.max_chunk is not None:
            n = min(n, self.max_chunk)
        return self._rx.get(n)

    def close(self) -> None:
        self._rx.close()
        self._tx.close()


def channel_pair(max_chunk: int | None = None
                 ) -> tuple[PipeChannel, PipeChannel]:
    """Two connected in-memory endpoints (client end, server end)."""
    a, b = _Buffer(), _Buffer()
    return PipeChannel(a, b, max_chunk), PipeChannel(b, a, max_chunk)


class SocketChannel:
    """The same interface over a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    def send(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise Closed(f"socket send failed: {exc}",
                         path="<socket>", op="write") from exc

    def recv(self, n: int = _RECV_SIZE) -> bytes:
        try:
            return self._sock.recv(n)
        except OSError:
            return b""

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def dial(host: str, port: int) -> SocketChannel:
    """Connect to a :meth:`WireServer.listen` endpoint."""
    return SocketChannel(socket.create_connection((host, port)))


class FrameReader:
    """Reassemble wire frames from a byte stream of arbitrary chunks."""

    def __init__(self, channel, bytes_counter: str | None = None) -> None:
        self._channel = channel
        self._buf = b""
        self._bytes_counter = bytes_counter

    def next_frame(self) -> wire.Message | None:
        """The next complete message, or None at orderly end of stream.

        Raises :class:`~repro.fs.errors.Invalid` on protocol garbage
        and :class:`~repro.fs.errors.IOFault` if the stream ends in the
        middle of a frame.
        """
        while True:
            msg, rest = wire.decode(self._buf)
            if msg is not None:
                self._buf = self._buf[rest:]
                return msg
            chunk = self._channel.recv(_RECV_SIZE)
            if not chunk:
                if self._buf:
                    raise IOFault("connection closed mid-frame",
                                  path="<wire>", op="read")
                return None
            if self._bytes_counter:
                incr(self._bytes_counter, len(chunk))
            self._buf += chunk


# -- server ------------------------------------------------------------------


class _FidState:
    """What a connection's fid currently refers to."""

    __slots__ = ("node", "path", "session")

    def __init__(self, node: Node, path: str) -> None:
        self.node = node
        self.path = path
        self.session = None  # set by open


class _Connection:
    """One client connection: fid table, dispatch, reply serialization.

    With a session factory on the server, the connection also owns one
    **hosted session** — created at attach, torn down with the
    connection — and binds that session's metrics registry around all
    work done on its behalf, so N connections keep N separate ledgers.
    """

    def __init__(self, server: "WireServer", channel) -> None:
        self.server = server
        self.channel = channel
        self.fids: dict[int, _FidState] = {}
        self.inflight = 0
        self.session = None  # set at attach by the session factory
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()

    def _bind(self):
        """The metrics binding for work on this connection's behalf."""
        registry = None
        if self.session is not None:
            registry = getattr(self.session, "metrics", None)
        if registry is None:
            registry = self.server.metrics
        return nullcontext() if registry is None else use_registry(registry)

    def serve(self) -> None:
        reader = FrameReader(self.channel, bytes_counter="wire.bytes.in")
        try:
            while True:
                with self._bind():
                    try:
                        msg = reader.next_frame()
                    except (Invalid, IOFault):
                        break  # protocol error: drop the connection
                    if msg is None:
                        break
                    self._dispatch(msg)
        finally:
            self._teardown()

    def _dispatch(self, msg: wire.Message) -> None:
        incr(f"wire.rpc.{msg.op}")
        with self._lock:
            if self.inflight >= self.server.max_outstanding:
                # backpressure: the client has too many requests in
                # flight; refuse this one instead of queueing unbounded
                err = wire.Rerror.from_exc(
                    msg.tag, Busy("server busy: too many outstanding "
                                  "requests", path="<wire>", op=msg.op))
                self._reply(err)
                return
            self.inflight += 1
        incr("mux.inflight")
        if (isinstance(msg, wire.Tattach)
                and self.server.session_factory is not None):
            # build the hosted session synchronously: self.session must
            # be installed before the serve loop reads the next frame,
            # or early RPCs would race into the wrong ledger
            self._serve_one(msg)
            return
        self.server._executor.submit(self._serve_one, msg)

    def _serve_one(self, msg: wire.Message) -> None:
        # executor threads don't inherit the serve loop's context;
        # re-bind the session's registry here
        with self._bind():
            start = time.perf_counter()
            try:
                reply = self._handle(msg)
            except FsError as exc:
                reply = wire.Rerror.from_exc(msg.tag, exc)
            except Exception as exc:  # a server bug must not kill the loop
                reply = wire.Rerror.from_exc(msg.tag, exc)
            finally:
                observe(f"wire.rpc.{msg.op}",
                        (time.perf_counter() - start) * 1e6)
                with self._lock:
                    self.inflight -= 1
                incr("mux.inflight", -1)
            self._reply(reply)

    def _reply(self, reply: wire.Message) -> None:
        frame = wire.encode(reply)
        try:
            with self._send_lock:
                self.channel.send(frame)
        except (Closed, OSError):
            return  # peer went away; nothing to tell it
        incr("wire.bytes.out", len(frame))

    # -- op handlers --------------------------------------------------------

    def _handle(self, msg: wire.Message) -> wire.Message:
        # a hosted session serializes on its own lock, so one slow
        # session never stalls its neighbours; bare trees use the
        # server-wide lock as before
        lock = self.server._oplock
        if self.session is not None:
            lock = getattr(self.session, "oplock", None) or lock
        if isinstance(msg, wire.Tattach):
            return self._attach(msg)
        if isinstance(msg, wire.Twalk):
            with lock:
                return self._walk(msg)
        if isinstance(msg, wire.Topen):
            with lock:
                return self._open(msg)
        if isinstance(msg, wire.Tread):
            with lock:
                return self._read(msg)
        if isinstance(msg, wire.Twrite):
            with lock:
                return self._write(msg)
        if isinstance(msg, wire.Tclunk):
            with lock:
                return self._clunk(msg)
        if isinstance(msg, wire.Tstat):
            with lock:
                return self._stat(msg)
        raise Invalid(f"unexpected message {type(msg).__name__}",
                      path="<wire>", op="dispatch")

    def _fid(self, fid: int, op: str) -> _FidState:
        with self._lock:
            state = self.fids.get(fid)
        if state is None:
            raise Invalid(f"unknown fid {fid}", path="<wire>", op=op)
        return state

    def _attach(self, msg: wire.Tattach) -> wire.Message:
        if self.server.session_factory is not None and self.session is None:
            # the factory is responsible for binding the new session's
            # own registry around whatever it builds
            self.session = self.server.session_factory(msg.uname, msg.aname)
        root = (self.server.root if self.session is None
                else self.session.root)
        with self._lock:
            self.fids[msg.fid] = _FidState(root, "/")
        return wire.Rattach(tag=msg.tag, is_dir=root.is_dir,
                            mtime=root.mtime)

    def _walk(self, msg: wire.Twalk) -> wire.Message:
        src = self._fid(msg.fid, "walk")
        with self._lock:
            if msg.newfid != msg.fid and msg.newfid in self.fids:
                raise Invalid(f"fid {msg.newfid} already in use",
                              path="<wire>", op="walk")
        node, path = src.node, src.path
        for name in msg.names:
            if not isinstance(node, Dir):
                raise NotADirectory(path=path, op="walk")
            child = node.lookup(name)
            path = join(path, name)
            if child is None:
                # a clean miss is an answer, not an error — local
                # resolve() returns None without raising, and a remote
                # lookup must not poison fs.error.* counters either
                return wire.Rwalk(tag=msg.tag, found=False)
            node = child
        with self._lock:
            self.fids[msg.newfid] = _FidState(node, path)
        return wire.Rwalk(tag=msg.tag, found=True, is_dir=node.is_dir,
                          mtime=node.mtime)

    def _open(self, msg: wire.Topen) -> wire.Message:
        state = self._fid(msg.fid, "open")
        if state.session is not None:
            raise Invalid(f"fid {msg.fid} already open",
                          path=state.path, op="open")
        if state.node.is_dir:
            raise IsADirectory(path=state.path, op="open")
        opener = getattr(state.node, "open", None)
        if opener is None:
            raise Invalid(f"'{state.path}' cannot be opened",
                          path=state.path, op="open")
        session = opener(msg.mode)
        if isinstance(session, FileHandle) and self.server.clock is not None:
            session._clock = self.server.clock
        state.session = session
        return wire.Ropen(tag=msg.tag)

    def _session(self, msg, op: str):
        state = self._fid(msg.fid, op)
        if state.session is None:
            raise Invalid(f"fid {msg.fid} not open", path=state.path, op=op)
        return state

    def _read(self, msg: wire.Tread) -> wire.Message:
        state = self._session(msg, "read")
        if msg.offset != wire.SEQUENTIAL:
            state.session.seek(msg.offset)
        return wire.Rread(tag=msg.tag, data=state.session.read(msg.count))

    def _write(self, msg: wire.Twrite) -> wire.Message:
        state = self._session(msg, "write")
        return wire.Rwrite(tag=msg.tag, count=state.session.write(msg.data))

    def _clunk(self, msg: wire.Tclunk) -> wire.Message:
        state = self._fid(msg.fid, "clunk")
        with self._lock:
            del self.fids[msg.fid]
        if state.session is not None:
            state.session.close()  # close-time errors reach the client
        return wire.Rclunk(tag=msg.tag)

    def _stat(self, msg: wire.Tstat) -> wire.Message:
        state = self._fid(msg.fid, "stat")
        node = state.node
        stat = wire.StatEntry(name=node.name or basename(state.path) or "/",
                              is_dir=node.is_dir, mtime=node.mtime)
        children: list[wire.StatEntry] = []
        if isinstance(node, Dir):
            children = [wire.StatEntry(name=child.name, is_dir=child.is_dir,
                                       mtime=child.mtime)
                        for child in node.entries()]
        return wire.Rstat(tag=msg.tag, stat=stat, children=children)

    def _teardown(self) -> None:
        with self._lock:
            fids, self.fids = self.fids, {}
        with self._bind():
            for state in fids.values():
                if state.session is not None:
                    try:
                        state.session.close()
                    except Exception:
                        pass  # the connection is gone; best-effort cleanup
        session, self.session = self.session, None
        if session is not None:
            close = getattr(session, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass  # teardown is best-effort; the peer is gone
        self.channel.close()


class WireServer:
    """Serve a node tree to any number of connections over any channel.

    ``serialize=True`` (the default) runs node operations one at a
    time under a server-wide lock: the trees we serve (``help``'s
    window files in particular) are not thread-safe, and the wire
    layer's concurrency — many connections, many outstanding tags —
    still stands.  Turn it off to bench raw transport parallelism over
    trees that tolerate it.

    A :class:`~repro.fs.faults.FaultPlan` can be installed at the
    transport boundary (``plan=``): every fid's opens, reads, writes
    and closes consult it, with paths reported under *base*, so the
    fault schedules from PR 2 apply unchanged to remote service.
    """

    def __init__(self, root: Node | None = None, *, max_outstanding: int = 64,
                 workers: int = 4, serialize: bool = True,
                 plan=None, base: str = "/",
                 clock: Clock | None = None,
                 metrics=None, session_factory=None) -> None:
        if root is None and session_factory is None:
            raise TypeError("WireServer needs a root or a session factory")
        if plan is not None and root is not None:
            from repro.fs.faults import wrap
            root = wrap(root, plan, base=base)
        self.root = root
        self.max_outstanding = max_outstanding
        self.clock = clock
        # metrics: the registry connection work reports into when no
        # hosted session is bound (None: whatever is active).
        # session_factory: called with (uname, aname) at attach to
        # build a per-connection hosted session — an object with a
        # ``root`` node, and optionally ``metrics`` (its private
        # ledger), ``oplock`` (its serializer) and ``close()``.
        self.metrics = metrics
        self.session_factory = session_factory
        self._oplock = threading.Lock() if serialize else _NullLock()
        self._executor = ThreadPoolExecutor(max_workers=workers)
        self._lock = threading.Lock()
        self._conns: list[_Connection] = []
        self._threads: list[threading.Thread] = []
        self._sockets: list[socket.socket] = []
        self._closed = False

    def serve(self, channel) -> threading.Thread:
        """Serve one connection on *channel* in a background thread."""
        conn = _Connection(self, channel)
        thread = threading.Thread(target=conn.serve, daemon=True,
                                  name="wire-conn")
        with self._lock:
            if self._closed:
                raise Closed("server closed", path="<wire>", op="attach")
            self._conns.append(conn)
            self._threads.append(thread)
        thread.start()
        return thread

    def listen(self, host: str = "127.0.0.1",
               port: int = 0) -> tuple[str, int]:
        """Accept TCP connections on *host*:*port* (0 = ephemeral).

        Returns the bound address; every accepted socket is served
        like a pipe connection.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen()
        with self._lock:
            self._sockets.append(sock)
        thread = threading.Thread(target=self._accept_loop, args=(sock,),
                                  daemon=True, name="wire-accept")
        with self._lock:
            self._threads.append(thread)
        thread.start()
        return sock.getsockname()[:2]

    def _accept_loop(self, sock: socket.socket) -> None:
        while True:
            try:
                client, _addr = sock.accept()
            except OSError:
                return  # listener closed
            try:
                self.serve(SocketChannel(client))
            except Closed:
                client.close()
                return

    def close(self) -> None:
        """Stop listening, drop every connection, release the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sockets, self._sockets = self._sockets, []
            conns, self._conns = self._conns, []
            threads, self._threads = self._threads, []
        for sock in sockets:
            sock.close()
        for conn in conns:
            conn.channel.close()
        for thread in threads:
            thread.join(timeout=5)
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "WireServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class _NullLock:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


# -- client ------------------------------------------------------------------


class _Pending:
    __slots__ = ("event", "reply")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.reply: wire.Message | None = None


class MuxClient:
    """One connection's client end: tagged, concurrent, bounded.

    Many threads may call :meth:`rpc` at once; each call takes a free
    tag, and a receiver thread routes replies back by tag, so slow
    requests do not block fast ones.  ``max_outstanding`` bounds the
    requests in flight — the client-side half of flow control (the
    server enforces its own limit with ``busy`` replies).
    """

    ROOT_FID = 0

    def __init__(self, channel, *, uname: str = "rob", aname: str = "",
                 max_outstanding: int = 16, timeout: float = 30.0) -> None:
        self._channel = channel
        self._reader = FrameReader(channel)
        self._pending: dict[int, _Pending] = {}
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._sem = threading.BoundedSemaphore(max_outstanding)
        self._next_tag = 0
        self._next_fid = self.ROOT_FID + 1
        self._free_fids: list[int] = []
        self._timeout = timeout
        self._closed = False
        self._recv_thread = threading.Thread(target=self._recv_loop,
                                             daemon=True, name="mux-recv")
        self._recv_thread.start()
        self.root_stat = self.rpc(wire.Tattach(fid=self.ROOT_FID,
                                               uname=uname, aname=aname))

    # -- plumbing -----------------------------------------------------------

    def _recv_loop(self) -> None:
        try:
            while True:
                msg = self._reader.next_frame()
                if msg is None:
                    break
                with self._lock:
                    slot = self._pending.pop(msg.tag, None)
                if slot is None:
                    incr("mux.orphan_reply")  # timed out or bogus tag
                    continue
                slot.reply = msg
                slot.event.set()
        except (Invalid, IOFault, Closed):
            pass
        finally:
            with self._lock:
                self._closed = True
                pending, self._pending = self._pending, {}
            for slot in pending.values():
                slot.event.set()  # reply stays None: connection lost

    def rpc(self, msg: wire.Message) -> wire.Message:
        """Send one T-message, wait for its R-message, raise Rerrors."""
        with self._sem:
            with self._lock:
                if self._closed:
                    raise Closed("connection closed", path="<wire>",
                                 op=msg.op)
                tag = self._alloc_tag()
                slot = _Pending()
                self._pending[tag] = slot
            msg.tag = tag
            start = time.perf_counter()
            try:
                with self._send_lock:
                    self._channel.send(wire.encode(msg))
            except (Closed, OSError) as exc:
                with self._lock:
                    self._pending.pop(tag, None)
                raise IOFault(f"send failed: {exc}", path="<wire>",
                              op=msg.op) from exc
            if not slot.event.wait(self._timeout):
                with self._lock:
                    self._pending.pop(tag, None)
                raise IOFault(f"rpc timed out after {self._timeout}s",
                              path="<wire>", op=msg.op)
            observe(f"mux.rpc.{msg.op}",
                    (time.perf_counter() - start) * 1e6)
        reply = slot.reply
        if reply is None:
            raise IOFault("connection closed awaiting reply",
                          path="<wire>", op=msg.op)
        if isinstance(reply, wire.Rerror):
            raise reply.to_exc()
        return reply

    def _alloc_tag(self) -> int:
        for _ in range(0x10000):
            tag = self._next_tag
            self._next_tag = (self._next_tag + 1) & 0xFFFF
            if tag not in self._pending:
                return tag
        raise Busy("no free tags", path="<wire>", op="rpc")

    def alloc_fid(self) -> int:
        with self._lock:
            if self._free_fids:
                return self._free_fids.pop()
            fid = self._next_fid
            self._next_fid += 1
            return fid

    def free_fid(self, fid: int) -> None:
        with self._lock:
            self._free_fids.append(fid)

    # -- conveniences over the raw ops --------------------------------------

    def walk_fid(self, path: str) -> int:
        """A fresh fid for *path*, or :class:`NotFound` if it is absent."""
        fid = self.alloc_fid()
        try:
            reply = self.rpc(wire.Twalk(fid=self.ROOT_FID, newfid=fid,
                                        names=split_path(path)))
        except FsError:
            self.free_fid(fid)
            raise
        if not reply.found:
            self.free_fid(fid)
            raise NotFound(path=path, op="walk")
        return fid

    def probe(self, path: str) -> wire.Rwalk | None:
        """Stat-lite: kind and mtime of *path*, or None if absent."""
        fid = self.alloc_fid()
        try:
            reply = self.rpc(wire.Twalk(fid=self.ROOT_FID, newfid=fid,
                                        names=split_path(path)))
        except FsError:
            self.free_fid(fid)
            raise
        if not reply.found:
            self.free_fid(fid)
            return None
        self.clunk(fid)
        return reply

    def clunk(self, fid: int) -> None:
        try:
            self.rpc(wire.Tclunk(fid=fid))
        finally:
            self.free_fid(fid)

    def stat(self, path: str) -> wire.Rstat:
        fid = self.walk_fid(path)
        try:
            return self.rpc(wire.Tstat(fid=fid))
        finally:
            self.clunk(fid)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                self._channel.close()
                return
            self._closed = True
        self._channel.close()
        self._recv_thread.join(timeout=5)

    def __enter__(self) -> "MuxClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- client-side node proxies ------------------------------------------------


class RemoteSession:
    """An open remote file: reads, writes and close map to RPCs.

    Mirrors the :class:`~repro.fs.server.SynthSession` surface
    (``read``/``readlines``/``write``/``seek``/``close``/``mode``/
    ``pos``/``closed``, context manager) so everything that consumes
    local sessions — the shell's redirections, ``help``'s tools —
    works on remote files unchanged.
    """

    def __init__(self, client: MuxClient, fid: int, mode: str,
                 name: str) -> None:
        self._client = client
        self._fid = fid
        self.mode = mode
        self.name = name
        self.closed = False
        self.pos = 0
        self._seek_to: int | None = None

    def _check_open(self, op: str) -> None:
        if self.closed:
            raise Closed(path=self.name, op=op)

    def read(self, n: int = -1) -> str:
        self._check_open("read")
        offset = wire.SEQUENTIAL if self._seek_to is None else self._seek_to
        self._seek_to = None
        reply = self._client.rpc(wire.Tread(fid=self._fid, offset=offset,
                                            count=n))
        if offset != wire.SEQUENTIAL:
            self.pos = offset
        self.pos += len(reply.data)
        return reply.data

    def readlines(self) -> list[str]:
        return self.read().splitlines(keepends=True)

    def write(self, s: str) -> int:
        self._check_open("write")
        reply = self._client.rpc(wire.Twrite(fid=self._fid, data=s))
        self.pos += reply.count
        return reply.count

    def seek(self, pos: int) -> None:
        # applied server-side on the next read, where the snapshot is
        self._seek_to = pos

    def close(self) -> None:
        """Clunk the fid; close-time server errors surface here once."""
        if self.closed:
            return
        self.closed = True
        self._client.clunk(self._fid)

    def __del__(self) -> None:
        # a dropped handle must still flush its server-side tail
        try:
            self.close()
        except Exception:
            pass  # interpreter teardown / connection gone

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class RemoteFile(File):
    """A client-side proxy for a file served across the wire."""

    def __init__(self, client: MuxClient, path: str, mtime: int = 0) -> None:
        Node.__init__(self, basename(path))  # no local .data storage
        self._client = client
        self._path = path
        self.mtime = mtime

    @property
    def data(self) -> str:  # type: ignore[override]
        with self.open("r") as session:
            return session.read()

    @data.setter
    def data(self, value: str) -> None:
        with self.open("w") as session:
            session.write(value)

    def open(self, mode: str) -> RemoteSession:
        fid = self._client.walk_fid(self._path)
        try:
            self._client.rpc(wire.Topen(fid=fid, mode=mode))
        except FsError:
            self._client.clunk(fid)
            raise
        return RemoteSession(self._client, fid, mode, self._path)


class RemoteDir(Dir):
    """A client-side proxy for a directory served across the wire.

    Satisfies everything :class:`~repro.fs.namespace.Namespace` asks
    of a directory — ``lookup`` walks, ``entries`` stats — so mounting
    the proxy makes the whole remote tree appear, unions and globs
    included.  The remote's *structure* is the server's to change:
    ``attach``/``detach`` are refused.
    """

    def __init__(self, client: MuxClient, path: str = "/",
                 mtime: int = 0) -> None:
        super().__init__(basename(path) or "/")
        self._client = client
        self._path = path
        self.mtime = mtime

    def _make(self, path: str, is_dir: bool, mtime: int) -> Node:
        if is_dir:
            return RemoteDir(self._client, path, mtime)
        return RemoteFile(self._client, path, mtime)

    def lookup(self, name: str) -> Node | None:
        path = join(self._path, name)
        reply = self._client.probe(path)
        if reply is None:
            return None
        return self._make(path, reply.is_dir, reply.mtime)

    def entries(self) -> list[Node]:
        reply = self._client.stat(self._path)
        return [self._make(join(self._path, child.name), child.is_dir,
                           child.mtime)
                for child in reply.children]

    def attach(self, node: Node) -> Node:
        raise Invalid(f"'{self._path}': remote tree; create through the "
                      f"server", path=self._path, op="create")

    def detach(self, name: str) -> None:
        raise Invalid(f"'{self._path}': remote tree; remove through the "
                      f"server", path=self._path, op="remove")


def mount_remote(client: MuxClient) -> RemoteDir:
    """The client's proxy for the server's root, ready for ``mount``."""
    return RemoteDir(client, "/", client.root_stat.mtime)


__all__ = ["PipeChannel", "SocketChannel", "channel_pair", "dial",
           "FrameReader", "WireServer", "MuxClient", "RemoteSession",
           "RemoteFile", "RemoteDir", "mount_remote"]
