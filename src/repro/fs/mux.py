"""Multiplexed file service over byte transports.

This is the layer that makes :mod:`repro.fs.wire` useful: a
:class:`WireServer` serves any :class:`~repro.fs.vfs.Node` tree to
many concurrent client connections, a :class:`MuxClient` multiplexes
many outstanding requests over one connection by tag, and the
``Remote*`` proxies satisfy the local node interface so
:meth:`repro.fs.namespace.Namespace.mount` can graft a *remote* server
into a local namespace — ``help`` and the shell run unchanged against
a mounted remote ``/mnt/help``, which is the paper's whole point about
the UI being a file server.

Transports are anything with ``send``/``recv``/``close``:
:func:`channel_pair` builds an in-memory byte pipe (optionally with a
``max_chunk`` so every read is short, exercising frame reassembly),
and :meth:`WireServer.listen` / :func:`dial` speak the same frames
over real TCP sockets.

Flow control: the client bounds its own outstanding requests with a
semaphore, and the server protects itself independently — a connection
exceeding ``max_outstanding`` in-flight requests gets ``busy`` error
replies until it drains.

Instrumentation (:mod:`repro.metrics`): the server counts every RPC
(``wire.rpc.<op>``) and byte (``wire.bytes.in`` / ``wire.bytes.out``),
tracks the in-flight gauge (``mux.inflight``), and records per-op
service-time histograms (``wire.rpc.<op>``, microseconds); the client
records round-trip histograms (``mux.rpc.<op>``).
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext

from repro.fs import wire
from repro.fs.errors import (
    Busy,
    Closed,
    FsError,
    Invalid,
    IOFault,
    IsADirectory,
    NotADirectory,
    NotFound,
)
from repro.fs.vfs import Clock, Dir, File, FileHandle, Node, basename, join, split_path
from repro.metrics.counter import (
    MetricsRegistry,
    incr,
    observe,
    use_registry,
)

_RECV_SIZE = 1 << 16

# Per-connection write-queue watermarks: above _HIGH_WATER queued
# output the reactor stops reading that connection (the client gets
# TCP backpressure instead of an unbounded server-side queue); reads
# resume once the queue drains below _LOW_WATER.
_HIGH_WATER = 1 << 20
_LOW_WATER = 1 << 18


# -- transports --------------------------------------------------------------


class _Buffer:
    """One direction of an in-memory pipe: a byte queue with blocking.

    A ``notify`` hook makes the buffer reactor-friendly: whoever owns
    the reading end can register a callback fired after every put (and
    on close), and drain with :meth:`get_nowait` instead of blocking.
    """

    def __init__(self) -> None:
        self._data = bytearray()
        self._closed = False
        self._cond = threading.Condition()
        self._notify = None

    def set_notify(self, fn) -> None:
        with self._cond:
            self._notify = fn
            fire = bool(self._data) or self._closed
        if fire and fn is not None:
            fn()

    def put(self, data: bytes) -> None:
        with self._cond:
            if self._closed:
                raise Closed("pipe closed", path="<pipe>", op="write")
            self._data.extend(data)
            self._cond.notify_all()
            notify = self._notify
        if notify is not None:
            notify()

    def get(self, n: int) -> bytes:
        with self._cond:
            while not self._data and not self._closed:
                self._cond.wait()
            if not self._data:
                return b""
            out = bytes(self._data[:n])
            del self._data[:n]
            return out

    def get_nowait(self, n: int) -> bytes | None:
        """Up to *n* buffered bytes; b"" at EOF; None when empty but open."""
        with self._cond:
            if self._data:
                out = bytes(self._data[:n])
                del self._data[:n]
                return out
            return b"" if self._closed else None

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            notify = self._notify
        if notify is not None:
            notify()


class PipeChannel:
    """One endpoint of an in-memory bidirectional byte pipe.

    With ``max_chunk`` set, every receive returns at most that many
    bytes — a deterministic short read, so framing code can prove it
    reassembles messages split at arbitrary byte boundaries.
    """

    def __init__(self, rx: _Buffer, tx: _Buffer,
                 max_chunk: int | None = None) -> None:
        self._rx = rx
        self._tx = tx
        self.max_chunk = max_chunk

    def send(self, data: bytes) -> None:
        # short *writes* at the transport: hand the peer one chunk at
        # a time so a reader can wake mid-frame
        step = self.max_chunk or len(data) or 1
        for i in range(0, len(data), step):
            self._tx.put(data[i:i + step])

    def recv(self, n: int = _RECV_SIZE) -> bytes:
        if self.max_chunk is not None:
            n = min(n, self.max_chunk)
        return self._rx.get(n)

    def try_recv(self, n: int = _RECV_SIZE) -> bytes | None:
        """Non-blocking receive: None = nothing buffered, b"" = EOF."""
        if self.max_chunk is not None:
            n = min(n, self.max_chunk)
        return self._rx.get_nowait(n)

    def set_notify(self, fn) -> None:
        """Fire *fn* whenever bytes (or EOF) become available to recv."""
        self._rx.set_notify(fn)

    def close(self) -> None:
        self._rx.close()
        self._tx.close()


def channel_pair(max_chunk: int | None = None
                 ) -> tuple[PipeChannel, PipeChannel]:
    """Two connected in-memory endpoints (client end, server end)."""
    a, b = _Buffer(), _Buffer()
    return PipeChannel(a, b, max_chunk), PipeChannel(b, a, max_chunk)


class SocketChannel:
    """The same interface over a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    def send(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise Closed(f"socket send failed: {exc}",
                         path="<socket>", op="write") from exc

    def recv(self, n: int = _RECV_SIZE) -> bytes:
        try:
            return self._sock.recv(n)
        except OSError:
            return b""

    def try_recv(self, n: int = _RECV_SIZE) -> bytes | None:
        """Non-blocking receive: None = would block, b"" = EOF/error."""
        try:
            return self._sock.recv(n)
        except (BlockingIOError, InterruptedError):
            return None
        except OSError:
            return b""

    def try_send(self, data) -> int:
        """Non-blocking send: bytes the kernel accepted (0 = try later)."""
        try:
            return self._sock.send(data)
        except (BlockingIOError, InterruptedError):
            return 0
        except OSError as exc:
            raise Closed(f"socket send failed: {exc}",
                         path="<socket>", op="write") from exc

    def fileno(self) -> int:
        return self._sock.fileno()

    def setblocking(self, flag: bool) -> None:
        self._sock.setblocking(flag)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def dial(host: str, port: int) -> SocketChannel:
    """Connect to a :meth:`WireServer.listen` endpoint."""
    return SocketChannel(socket.create_connection((host, port)))


class FrameReader:
    """Reassemble wire frames from a byte stream of arbitrary chunks.

    Frames decode zero-copy out of one growing receive buffer (a
    ``memoryview`` over a ``bytearray``); consumed bytes are compacted
    in place instead of re-slicing the remainder per frame.
    """

    def __init__(self, channel, bytes_counter: str | None = None) -> None:
        self._channel = channel
        self._buf = bytearray()
        self._bytes_counter = bytes_counter

    def next_frame(self) -> wire.Message | None:
        """The next complete message, or None at orderly end of stream.

        Raises :class:`~repro.fs.errors.Invalid` on protocol garbage
        and :class:`~repro.fs.errors.IOFault` if the stream ends in the
        middle of a frame.
        """
        buf = self._buf
        while True:
            if buf:
                view = memoryview(buf)
                try:
                    msg, rest = wire.decode(view)
                finally:
                    view.release()
                if msg is not None:
                    del buf[:rest]
                    return msg
            chunk = self._channel.recv(_RECV_SIZE)
            if not chunk:
                if buf:
                    raise IOFault("connection closed mid-frame",
                                  path="<wire>", op="read")
                return None
            if self._bytes_counter:
                incr(self._bytes_counter, len(chunk))
            buf += chunk


# -- server ------------------------------------------------------------------


class _Reactor:
    """One thread, one selector: owns every server-side channel.

    Sockets (connections and listeners) register with the selector
    directly; in-memory pipes integrate through :meth:`mark_ready`,
    fired by the pipe's notify hook, so both transport kinds are
    driven by the same loop.  Other threads hand work to the loop with
    :meth:`submit`; a socketpair waker interrupts ``select``.
    """

    def __init__(self, name: str = "wire-reactor",
                 registry=None) -> None:
        # the loop's fallback metrics context: errors constructed on
        # the reactor thread outside any per-RPC binding (flushing
        # writes to a peer that hung up, teardown of a torn channel)
        # book against the owning server, not the process default
        self._registry = registry
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._lock = threading.Lock()
        self._commands: deque = deque()
        self._ready: set = set()
        self._pending_wake = False
        self._running = True
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=name)
        self._thread.start()

    # -- cross-thread entry points (any thread) --------------------------

    def on_thread(self) -> bool:
        return threading.current_thread() is self._thread

    def submit(self, fn) -> None:
        """Run *fn* on the reactor thread, soon."""
        with self._lock:
            self._commands.append(fn)
        self._wake()

    def mark_ready(self, conn) -> None:
        """A pipe connection has bytes (or EOF) waiting."""
        with self._lock:
            self._ready.add(conn)
        self._wake()

    def stop(self) -> None:
        with self._lock:
            if not self._running:
                return
            self._running = False
        self._wake()
        if not self.on_thread():
            self._thread.join(timeout=5)

    def _wake(self) -> None:
        with self._lock:
            if self._pending_wake:
                return
            self._pending_wake = True
        try:
            self._wake_w.send(b"\0")
        except OSError:
            pass  # reactor already gone

    # -- selector registry (reactor thread only) -------------------------

    def register(self, fileobj, events: int, callback) -> None:
        self._selector.register(fileobj, events, callback)

    def modify(self, fileobj, events: int, callback) -> None:
        self._selector.modify(fileobj, events, callback)

    def unregister(self, fileobj) -> None:
        self._selector.unregister(fileobj)

    # -- the loop ---------------------------------------------------------

    def _run(self) -> None:
        if self._registry is not None:
            with use_registry(self._registry):
                self._run_loop()
        else:
            self._run_loop()

    def _run_loop(self) -> None:
        try:
            while True:
                with self._lock:
                    if not self._running:
                        break
                events = self._selector.select()
                for key, mask in events:
                    if key.data is None:  # the waker
                        try:
                            while self._wake_r.recv(4096):
                                pass
                        except OSError:
                            pass
                        with self._lock:
                            self._pending_wake = False
                        continue
                    try:
                        key.data(mask)
                    except Exception:
                        pass  # one connection must not stop the loop
                while True:
                    with self._lock:
                        if not self._commands:
                            break
                        fn = self._commands.popleft()
                    try:
                        fn()
                    except Exception:
                        pass
                while True:
                    with self._lock:
                        if not self._ready:
                            break
                        ready, self._ready = self._ready, set()
                    for conn in ready:
                        try:
                            conn.on_pipe_ready()
                        except Exception:
                            pass
        finally:
            try:
                self._selector.close()
            except Exception:
                pass
            self._wake_r.close()
            self._wake_w.close()


class _ConnHandle:
    """What :meth:`WireServer.serve` returns: joinable, like the
    per-connection thread it replaced, signalled at teardown."""

    __slots__ = ("_conn",)

    def __init__(self, conn: "_Connection") -> None:
        self._conn = conn

    def join(self, timeout: float | None = None) -> None:
        self._conn._done.wait(timeout)

    def is_alive(self) -> bool:
        return not self._conn._done.is_set()


class _FidState:
    """What a connection's fid currently refers to."""

    __slots__ = ("node", "path", "session")

    def __init__(self, node: Node, path: str) -> None:
        self.node = node
        self.path = path
        self.session = None  # set by open


class _Connection:
    """One client connection on the reactor: incremental zero-copy
    parse, per-connection write queue, worker-pool dispatch.

    The reactor thread feeds bytes into ``_rbuf`` and decodes frames
    straight out of it through a ``memoryview`` (one compaction per
    burst, no per-frame copies); handlers run on the server's worker
    pool — or inline on the reactor when the pool is disabled
    (``workers=0``) — and their replies queue on the connection,
    flushed by the reactor with writable-event pacing.  A queue past
    ``_HIGH_WATER`` pauses reading (the client sees transport
    backpressure); draining past ``_LOW_WATER`` resumes it.

    With a session factory on the server, the connection also owns one
    **hosted session** — created at attach, torn down with the
    connection — and binds that session's metrics registry around all
    work done on its behalf, so N connections keep N separate ledgers.
    Parsing pauses while an attach is being served, so no later frame
    can race into the wrong ledger.
    """

    def __init__(self, server: "WireServer", channel,
                 initial: bytes = b"") -> None:
        self.server = server
        self.channel = channel
        self.reactor = server._reactor
        self.fids: dict[int, _FidState] = {}
        self.inflight = 0
        self.session = None  # set at attach by the session factory
        self.closed = False
        self._lock = threading.Lock()       # fids + inflight
        self._wlock = threading.Lock()      # write queue
        self._wbuf: deque = deque()
        self._wsize = 0
        self._flush_scheduled = False
        self._rbuf = bytearray(initial)
        # FIFO service queue: frames hand off to the worker pool in
        # arrival order through a single drainer task per connection,
        # so a pipelined burst (walk, open, read, clunk on one fid) is
        # served in the order it was sent.  No parallelism is lost:
        # non-attach ops on a connection already serialize on the
        # session's oplock (or the server-wide one for bare trees), so
        # the pool's concurrency lives *across* connections either way.
        self._svc_lock = threading.Lock()
        self._svc_queue: deque = deque()
        self._svc_running = False
        self._paused_attach = False
        self._paused_write = False
        self._is_socket = hasattr(channel, "fileno")
        self._events = 0                    # current selector mask
        self._eof = False
        self._torn = False
        self._done = threading.Event()

    def _bind(self):
        """The metrics binding for work on this connection's behalf."""
        registry = None
        if self.session is not None:
            registry = getattr(self.session, "metrics", None)
        if registry is None:
            registry = self.server.metrics
        return nullcontext() if registry is None else use_registry(registry)

    # -- reactor-side input path (reactor thread only) --------------------

    def _start(self) -> None:
        if self._torn:
            return
        if self._is_socket:
            self.channel.setblocking(False)
            self._update_events()
        else:
            self.channel.set_notify(self._notify_pipe)
        if self._rbuf:
            # bytes a router peeked on our behalf still count as input
            with self._bind():
                incr("wire.bytes.in", len(self._rbuf))
            self._process()

    def _notify_pipe(self) -> None:  # any thread (the pipe's writer)
        self.reactor.mark_ready(self)

    def on_pipe_ready(self) -> None:
        if not self._torn:
            self._on_readable()

    def _on_io(self, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            self._flush_writes()
        if mask & selectors.EVENT_READ and not self._torn:
            self._on_readable()

    def _on_readable(self) -> None:
        if self._torn or self._paused_write:
            return
        got = 0
        while True:
            chunk = self.channel.try_recv(_RECV_SIZE)
            if chunk is None:
                break  # drained
            if not chunk:
                self._eof = True
                break
            self._rbuf += chunk
            got += len(chunk)
            if got >= _RECV_SIZE * 8:
                # bound one burst; re-arm so the rest is not stranded
                if not self._is_socket:
                    self.reactor.mark_ready(self)
                break
        if got:
            with self._bind():
                incr("wire.bytes.in", got)
        self._process()

    def _process(self) -> None:
        """Decode and dispatch every complete frame buffered so far."""
        while not self._torn and not self._paused_attach:
            buf = self._rbuf
            if not buf:
                break
            pos = 0
            stop = False
            error = False
            view = memoryview(buf)
            try:
                with self._bind():
                    while True:
                        try:
                            msg, nxt = wire.decode(view, pos)
                        except Invalid:
                            error = True  # protocol garbage: drop the conn
                            break
                        if msg is None:
                            break
                        pos = nxt
                        if self._dispatch(msg):
                            stop = True
                            break
                        if (self._is_socket and not self._paused_write
                                and self._wsize >= _HIGH_WATER):
                            # the peer is not reading its replies: stop
                            # parsing (and reading) until the queue drains
                            self._paused_write = True
                            incr("wire.backpressure.paused")
                            stop = True
                            break
            finally:
                view.release()
            if pos:
                del buf[:pos]
            if error:
                self._start_teardown()
                return
            if not stop or self._paused_attach or self._paused_write:
                break
            # an inline attach swapped the session: loop to re-bind
        self._flush_writes()
        if self._eof and not self._paused_attach and not self._torn:
            self._start_teardown()

    def _dispatch(self, msg: wire.Message) -> bool:
        """Queue *msg* for service; True = stop parsing this burst."""
        incr(f"wire.rpc.{msg.op}")
        with self._lock:
            busy = self.inflight >= self.server.max_outstanding
            if not busy:
                self.inflight += 1
        if busy:
            # backpressure: the client has too many requests in
            # flight; refuse this one instead of queueing unbounded
            err = wire.Rerror.from_exc(
                msg.tag, Busy("server busy: too many outstanding "
                              "requests", path="<wire>", op=msg.op))
            self._reply(err)
            return False
        incr("mux.inflight")
        executor = self.server._executor
        if executor is None:
            # inline mode: RPCs run on the reactor itself — the fast
            # path for trees that never block
            before = self.session
            self._serve_one(msg)
            return self.session is not before
        resume = (msg.type == wire.Tattach.type
                  and self.server.session_factory is not None)
        if resume:
            # the hosted session must be installed before any later
            # frame is served; pause parsing until the attach lands
            self._paused_attach = True
        with self._svc_lock:
            self._svc_queue.append((msg, resume))
            if self._svc_running:
                return resume
            self._svc_running = True
        executor.submit(self._drain_service)
        return resume

    def _drain_service(self) -> None:  # worker pool
        """Serve this connection's queued frames, strictly in order."""
        while True:
            with self._svc_lock:
                if not self._svc_queue:
                    self._svc_running = False
                    return
                msg, resume = self._svc_queue.popleft()
            self._serve_one(msg, resume)

    def _resume_attach(self) -> None:  # reactor thread
        self._paused_attach = False
        if not self._torn:
            self._process()

    # -- service (worker pool, or the reactor when inline) ----------------

    def _serve_one(self, msg: wire.Message, resume: bool = False) -> None:
        # executor threads don't inherit the reactor's context;
        # re-bind the session's registry here.  Inline on the reactor
        # the burst loop in _process is already bound, so the context
        # dance would be pure overhead on the hot path.
        if self.server._executor is None:
            self._serve_bound(msg)
            return
        with self._bind():
            self._serve_bound(msg)
        if resume:
            self.reactor.submit(self._resume_attach)

    def _serve_bound(self, msg: wire.Message) -> None:
        start = time.perf_counter()
        try:
            reply = self._handle(msg)
        except FsError as exc:
            reply = wire.Rerror.from_exc(msg.tag, exc)
        except Exception as exc:  # a server bug must not kill the loop
            reply = wire.Rerror.from_exc(msg.tag, exc)
        finally:
            observe(f"wire.rpc.{msg.op}",
                    (time.perf_counter() - start) * 1e6)
            with self._lock:
                self.inflight -= 1
            incr("mux.inflight", -1)
        self._reply(reply)

    # -- reply path -------------------------------------------------------

    def _reply(self, reply: wire.Message) -> None:
        frame = wire.encode(reply)
        if self._send_frame(frame):
            incr("wire.bytes.out", len(frame))

    def _send_frame(self, frame: bytes) -> bool:  # any thread
        with self._wlock:
            if self.closed:
                return False  # peer went away; nothing to tell it
            self._wbuf.append(frame)
            self._wsize += len(frame)
            scheduled = self._flush_scheduled
            self._flush_scheduled = True
        if not scheduled and not self.reactor.on_thread():
            # on the reactor, the burst loop flushes once at the end;
            # pool threads must wake it
            self.reactor.submit(self._flush_writes)
        return True

    def _flush_writes(self) -> None:  # reactor thread only
        if self._torn:
            return
        while True:
            with self._wlock:
                self._flush_scheduled = False
                if not self._wbuf:
                    data = None
                else:
                    # coalesce small replies into one transport write
                    data = self._wbuf.popleft()
                    if self._wbuf and len(data) < _RECV_SIZE:
                        parts = [data]
                        size = len(data)
                        while self._wbuf and size < _RECV_SIZE * 4:
                            nxt = self._wbuf.popleft()
                            parts.append(nxt)
                            size += len(nxt)
                        data = b"".join(parts)
            if data is None:
                break
            if self._is_socket:
                try:
                    sent = self.channel.try_send(data)
                except Closed:
                    self._start_teardown()
                    return
                with self._wlock:
                    self._wsize -= sent
                if sent < len(data):
                    with self._wlock:
                        self._wbuf.appendleft(bytes(data[sent:]))
                    break  # kernel buffer full: wait for EVENT_WRITE
            else:
                try:
                    self.channel.send(data)
                except (Closed, OSError):
                    self._start_teardown()
                    return
                with self._wlock:
                    self._wsize -= len(data)
        if (self._is_socket and not self._paused_write
                and self._wsize >= _HIGH_WATER):
            # worker replies outran the peer between its reads; the
            # dispatch-time check in _process never sees that, so the
            # write path must trip the pause itself
            self._paused_write = True
            with self._bind():
                incr("wire.backpressure.paused")
        self._update_events()
        if self._paused_write and self._wsize <= _LOW_WATER:
            self._paused_write = False
            with self._bind():
                incr("wire.backpressure.resumed")
            self._update_events()
            self.reactor.submit(self._process)

    def _update_events(self) -> None:  # reactor thread only
        if not self._is_socket or self._torn:
            return
        mask = 0
        if not self._paused_write and not self._eof:
            mask |= selectors.EVENT_READ
        with self._wlock:
            if self._wbuf:
                mask |= selectors.EVENT_WRITE
        if mask == self._events:
            return
        try:
            if self._events == 0:
                self.reactor.register(self.channel, mask, self._on_io)
            elif mask == 0:
                self.reactor.unregister(self.channel)
            else:
                self.reactor.modify(self.channel, mask, self._on_io)
        except (KeyError, ValueError, OSError):
            return
        self._events = mask

    # -- op handlers --------------------------------------------------------

    def _handle(self, msg: wire.Message) -> wire.Message:
        # a hosted session serializes on its own lock, so one slow
        # session never stalls its neighbours; bare trees use the
        # server-wide lock as before
        lock = self.server._oplock
        if self.session is not None:
            lock = getattr(self.session, "oplock", None) or lock
        if isinstance(msg, wire.Tattach):
            return self._attach(msg)
        if isinstance(msg, wire.Tship):
            # replica feed frames never belong to a hosted session and
            # serialize per-connection through the service queue; the
            # handler locks its own state, so no oplock is taken here
            handler = self.server.ship_handler
            if handler is None:
                raise Invalid("no replica feed handler on this server",
                              path="<wire>", op="ship")
            return wire.Rship(tag=msg.tag, ack=handler(msg))
        if isinstance(msg, wire.Twalk):
            with lock:
                return self._walk(msg)
        if isinstance(msg, wire.Topen):
            with lock:
                return self._open(msg)
        if isinstance(msg, wire.Tread):
            with lock:
                return self._read(msg)
        if isinstance(msg, wire.Twrite):
            with lock:
                return self._write(msg)
        if isinstance(msg, wire.Tclunk):
            with lock:
                return self._clunk(msg)
        if isinstance(msg, wire.Tstat):
            with lock:
                return self._stat(msg)
        raise Invalid(f"unexpected message {type(msg).__name__}",
                      path="<wire>", op="dispatch")

    def _fid(self, fid: int, op: str) -> _FidState:
        with self._lock:
            state = self.fids.get(fid)
        if state is None:
            raise Invalid(f"unknown fid {fid}", path="<wire>", op=op)
        return state

    def _attach(self, msg: wire.Tattach) -> wire.Message:
        if self.server.session_factory is not None and self.session is None:
            # the factory is responsible for binding the new session's
            # own registry around whatever it builds
            self.session = self.server.session_factory(msg.uname, msg.aname)
        root = (self.server.root if self.session is None
                else self.session.root)
        with self._lock:
            self.fids[msg.fid] = _FidState(root, "/")
        return wire.Rattach(tag=msg.tag, is_dir=root.is_dir,
                            mtime=root.mtime)

    def _walk(self, msg: wire.Twalk) -> wire.Message:
        src = self._fid(msg.fid, "walk")
        with self._lock:
            if msg.newfid != msg.fid and msg.newfid in self.fids:
                raise Invalid(f"fid {msg.newfid} already in use",
                              path="<wire>", op="walk")
        node, path = src.node, src.path
        for name in msg.names:
            if not isinstance(node, Dir):
                raise NotADirectory(path=path, op="walk")
            child = node.lookup(name)
            path = join(path, name)
            if child is None:
                # a clean miss is an answer, not an error — local
                # resolve() returns None without raising, and a remote
                # lookup must not poison fs.error.* counters either
                return wire.Rwalk(tag=msg.tag, found=False)
            node = child
        with self._lock:
            self.fids[msg.newfid] = _FidState(node, path)
        return wire.Rwalk(tag=msg.tag, found=True, is_dir=node.is_dir,
                          mtime=node.mtime)

    def _open(self, msg: wire.Topen) -> wire.Message:
        state = self._fid(msg.fid, "open")
        if state.session is not None:
            raise Invalid(f"fid {msg.fid} already open",
                          path=state.path, op="open")
        if state.node.is_dir:
            raise IsADirectory(path=state.path, op="open")
        opener = getattr(state.node, "open", None)
        if opener is None:
            raise Invalid(f"'{state.path}' cannot be opened",
                          path=state.path, op="open")
        session = opener(msg.mode)
        if isinstance(session, FileHandle) and self.server.clock is not None:
            session._clock = self.server.clock
        state.session = session
        return wire.Ropen(tag=msg.tag)

    def _session(self, msg, op: str):
        state = self._fid(msg.fid, op)
        if state.session is None:
            raise Invalid(f"fid {msg.fid} not open", path=state.path, op=op)
        return state

    def _read(self, msg: wire.Tread) -> wire.Message:
        state = self._session(msg, "read")
        if msg.offset != wire.SEQUENTIAL:
            state.session.seek(msg.offset)
        return wire.Rread(tag=msg.tag, data=state.session.read(msg.count))

    def _write(self, msg: wire.Twrite) -> wire.Message:
        state = self._session(msg, "write")
        return wire.Rwrite(tag=msg.tag, count=state.session.write(msg.data))

    def _clunk(self, msg: wire.Tclunk) -> wire.Message:
        state = self._fid(msg.fid, "clunk")
        with self._lock:
            del self.fids[msg.fid]
        if state.session is not None:
            state.session.close()  # close-time errors reach the client
        return wire.Rclunk(tag=msg.tag)

    def _stat(self, msg: wire.Tstat) -> wire.Message:
        state = self._fid(msg.fid, "stat")
        node = state.node
        stat = wire.StatEntry(name=node.name or basename(state.path) or "/",
                              is_dir=node.is_dir, mtime=node.mtime)
        children: list[wire.StatEntry] = []
        if isinstance(node, Dir):
            children = [wire.StatEntry(name=child.name, is_dir=child.is_dir,
                                       mtime=child.mtime)
                        for child in node.entries()]
        return wire.Rstat(tag=msg.tag, stat=stat, children=children)

    def _start_teardown(self) -> None:  # reactor thread only
        if self._torn:
            return
        self._torn = True
        with self._wlock:
            self.closed = True
        if self._is_socket and self._events:
            try:
                self.reactor.unregister(self.channel)
            except (KeyError, ValueError, OSError):
                pass
            self._events = 0
        self._teardown()

    def _teardown(self) -> None:
        try:
            with self._lock:
                fids, self.fids = self.fids, {}
            with self._bind():
                for state in fids.values():
                    if state.session is not None:
                        try:
                            state.session.close()
                        except Exception:
                            pass  # connection is gone; best-effort cleanup
            session, self.session = self.session, None
            if session is not None:
                # a hosted session distinguishes a dropped connection
                # (detach: may hibernate the world instead of retiring
                # it) from an outright close; plain sessions only close
                release = (getattr(session, "detach", None)
                           or getattr(session, "close", None))
                if release is not None:
                    try:
                        release()
                    except Exception:
                        pass  # teardown is best-effort; the peer is gone
            self.channel.close()
        finally:
            self._done.set()


class WireServer:
    """Serve a node tree to any number of connections over any channel.

    The server side is a non-blocking event loop: one :class:`_Reactor`
    thread owns every socket and pipe, parses frames zero-copy out of
    per-connection receive buffers, and enforces write-queue
    backpressure.  Handlers that touch session or tree state run on a
    small worker pool (``workers``); with ``workers=0`` they run inline
    on the reactor — the fastest path, for trees whose handlers never
    block.

    ``serialize=True`` (the default) runs node operations one at a
    time under a server-wide lock: the trees we serve (``help``'s
    window files in particular) are not thread-safe, and the wire
    layer's concurrency — many connections, many outstanding tags —
    still stands.  Turn it off to bench raw transport parallelism over
    trees that tolerate it.

    A :class:`~repro.fs.faults.FaultPlan` can be installed at the
    transport boundary (``plan=``): every fid's opens, reads, writes
    and closes consult it, with paths reported under *base*, so the
    fault schedules from PR 2 apply unchanged to remote service.
    """

    def __init__(self, root: Node | None = None, *, max_outstanding: int = 64,
                 workers: int = 4, serialize: bool = True,
                 plan=None, base: str = "/",
                 clock: Clock | None = None,
                 metrics=None, session_factory=None) -> None:
        if root is None and session_factory is None:
            raise TypeError("WireServer needs a root or a session factory")
        if plan is not None and root is not None:
            from repro.fs.faults import wrap
            root = wrap(root, plan, base=base)
        self.root = root
        self.max_outstanding = max_outstanding
        self.clock = clock
        # metrics: the registry connection work reports into when no
        # hosted session is bound (None: whatever is active).
        # session_factory: called with (uname, aname) at attach to
        # build a per-connection hosted session — an object with a
        # ``root`` node, and optionally ``metrics`` (its private
        # ledger), ``oplock`` (its serializer) and ``close()``.
        self.metrics = metrics
        self.session_factory = session_factory
        # ship_handler: called with each wire.Tship a replica feed
        # pushes at this server; returns the ack watermark.  Installed
        # by a ReplicaStandby (repro.serve.replica); None refuses ship
        # frames with Invalid.
        self.ship_handler = None
        self._oplock = threading.Lock() if serialize else _NullLock()
        self._executor = (ThreadPoolExecutor(max_workers=workers)
                          if workers else None)
        self._reactor = _Reactor(registry=metrics)
        self._lock = threading.Lock()
        self._conns: list[_Connection] = []
        self._sockets: list[socket.socket] = []
        self._closed = False

    def serve(self, channel, initial: bytes = b"") -> _ConnHandle:
        """Adopt *channel* onto the reactor; returns a joinable handle.

        *initial* seeds the connection's receive buffer with bytes
        something upstream (a shard router peeking the attach frame)
        already read on the connection's behalf.
        """
        conn = _Connection(self, channel, initial)
        with self._lock:
            if self._closed:
                raise Closed("server closed", path="<wire>", op="attach")
            self._conns.append(conn)
        self._reactor.submit(conn._start)
        return _ConnHandle(conn)

    def listen(self, host: str = "127.0.0.1",
               port: int = 0) -> tuple[str, int]:
        """Accept TCP connections on *host*:*port* (0 = ephemeral).

        Returns the bound address; every accepted socket is served
        like a pipe connection.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(128)
        sock.setblocking(False)
        with self._lock:
            self._sockets.append(sock)
        self._reactor.submit(
            lambda: self._reactor.register(
                sock, selectors.EVENT_READ,
                lambda mask: self._accept_ready(sock)))
        return sock.getsockname()[:2]

    def _accept_ready(self, sock: socket.socket) -> None:  # reactor thread
        while True:
            try:
                client, _addr = sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed
            try:
                self.serve(SocketChannel(client))
            except Closed:
                client.close()
                return

    def close(self) -> None:
        """Stop listening, drop every connection, release the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sockets, self._sockets = self._sockets, []
            conns, self._conns = self._conns, []

        def shutdown() -> None:
            for sock in sockets:
                try:
                    self._reactor.unregister(sock)
                except (KeyError, ValueError, OSError):
                    pass
                sock.close()
            for conn in conns:
                conn._start_teardown()

        self._reactor.submit(shutdown)
        for conn in conns:
            conn._done.wait(timeout=5)
        self._reactor.stop()
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    def kill(self) -> None:
        """Crash the server: stop everything with NO orderly teardown.

        Unlike :meth:`close`, no fid sessions are closed and no hosted
        session sees ``detach``/``close`` — connections are simply
        severed, as a SIGKILL would leave them.  Replication failover
        tests use this to prove the standby's copy is the *only*
        survivor of a primary crash.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sockets, self._sockets = self._sockets, []
            conns, self._conns = self._conns, []
        self._reactor.stop()
        for sock in sockets:
            try:
                sock.close()
            except OSError:
                pass
        for conn in conns:
            conn._torn = True
            with conn._wlock:
                conn.closed = True
            try:
                conn.channel.close()
            except Exception:
                pass
            conn._done.set()
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    def __enter__(self) -> "WireServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class _NullLock:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


# -- client ------------------------------------------------------------------


class _Pending:
    __slots__ = ("event", "reply")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.reply: wire.Message | None = None


class MuxClient:
    """One connection's client end: tagged, concurrent, bounded.

    Many threads may call :meth:`rpc` at once; each call takes a free
    tag, and a receiver thread routes replies back by tag, so slow
    requests do not block fast ones.  ``max_outstanding`` bounds the
    requests in flight — the client-side half of flow control (the
    server enforces its own limit with ``busy`` replies).
    """

    ROOT_FID = 0

    def __init__(self, channel, *, uname: str = "rob", aname: str = "",
                 max_outstanding: int = 16, timeout: float = 30.0,
                 attach: bool = True) -> None:
        self._channel = channel
        self._reader = FrameReader(channel)
        self._pending: dict[int, _Pending] = {}
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._sem = threading.BoundedSemaphore(max_outstanding)
        self._next_tag = 0
        self._next_fid = self.ROOT_FID + 1
        self._free_fids: list[int] = []
        self._timeout = timeout
        self._closed = False
        # the receiver thread starts with an empty metrics context, so
        # errors it constructs (a torn channel raising Closed/IOFault
        # mid-frame) would land in the process default registry and
        # poison a ledger the connection never belonged to.  They are
        # also redundant: the caller whose rpc() the tear failed gets
        # its own error on its own thread.  Book the noise privately.
        self._registry = MetricsRegistry(f"mux-recv:{id(self):x}")
        self._recv_thread = threading.Thread(target=self._recv_loop,
                                             daemon=True, name="mux-recv")
        self._recv_thread.start()
        # attach=False leaves the connection bare — for traffic that
        # must not create a hosted session on the far side (a replica
        # feed ships Tship frames and nothing else)
        self.root_stat = None
        if attach:
            self.root_stat = self.rpc(wire.Tattach(fid=self.ROOT_FID,
                                                   uname=uname,
                                                   aname=aname))

    # -- plumbing -----------------------------------------------------------

    def _recv_loop(self) -> None:
        try:
            with use_registry(self._registry):
                while True:
                    msg = self._reader.next_frame()
                    if msg is None:
                        break
                    with self._lock:
                        slot = self._pending.pop(msg.tag, None)
                    if slot is None:
                        incr("mux.orphan_reply")  # timed out or bogus tag
                        continue
                    slot.reply = msg
                    slot.event.set()
        except (Invalid, IOFault, Closed):
            pass
        finally:
            with self._lock:
                self._closed = True
                pending, self._pending = self._pending, {}
            for slot in pending.values():
                slot.event.set()  # reply stays None: connection lost

    def rpc(self, msg: wire.Message) -> wire.Message:
        """Send one T-message, wait for its R-message, raise Rerrors."""
        with self._sem:
            with self._lock:
                if self._closed:
                    raise Closed("connection closed", path="<wire>",
                                 op=msg.op)
                tag = self._alloc_tag()
                slot = _Pending()
                self._pending[tag] = slot
            msg.tag = tag
            start = time.perf_counter()
            try:
                with self._send_lock:
                    self._channel.send(wire.encode(msg))
            except (Closed, OSError) as exc:
                with self._lock:
                    self._pending.pop(tag, None)
                raise IOFault(f"send failed: {exc}", path="<wire>",
                              op=msg.op) from exc
            if not slot.event.wait(self._timeout):
                with self._lock:
                    self._pending.pop(tag, None)
                raise IOFault(f"rpc timed out after {self._timeout}s",
                              path="<wire>", op=msg.op)
            observe(f"mux.rpc.{msg.op}",
                    (time.perf_counter() - start) * 1e6)
        reply = slot.reply
        if reply is None:
            raise IOFault("connection closed awaiting reply",
                          path="<wire>", op=msg.op)
        if isinstance(reply, wire.Rerror):
            raise reply.to_exc()
        return reply

    def _alloc_tag(self) -> int:
        for _ in range(0x10000):
            tag = self._next_tag
            self._next_tag = (self._next_tag + 1) & 0xFFFF
            if tag not in self._pending:
                return tag
        raise Busy("no free tags", path="<wire>", op="rpc")

    def alloc_fid(self) -> int:
        with self._lock:
            if self._free_fids:
                return self._free_fids.pop()
            fid = self._next_fid
            self._next_fid += 1
            return fid

    def free_fid(self, fid: int) -> None:
        with self._lock:
            self._free_fids.append(fid)

    # -- conveniences over the raw ops --------------------------------------

    def walk_fid(self, path: str) -> int:
        """A fresh fid for *path*, or :class:`NotFound` if it is absent."""
        fid = self.alloc_fid()
        try:
            reply = self.rpc(wire.Twalk(fid=self.ROOT_FID, newfid=fid,
                                        names=split_path(path)))
        except FsError:
            self.free_fid(fid)
            raise
        if not reply.found:
            self.free_fid(fid)
            raise NotFound(path=path, op="walk")
        return fid

    def probe(self, path: str) -> wire.Rwalk | None:
        """Stat-lite: kind and mtime of *path*, or None if absent."""
        fid = self.alloc_fid()
        try:
            reply = self.rpc(wire.Twalk(fid=self.ROOT_FID, newfid=fid,
                                        names=split_path(path)))
        except FsError:
            self.free_fid(fid)
            raise
        if not reply.found:
            self.free_fid(fid)
            return None
        self.clunk(fid)
        return reply

    def clunk(self, fid: int) -> None:
        try:
            self.rpc(wire.Tclunk(fid=fid))
        finally:
            self.free_fid(fid)

    def stat(self, path: str) -> wire.Rstat:
        fid = self.walk_fid(path)
        try:
            return self.rpc(wire.Tstat(fid=fid))
        finally:
            self.clunk(fid)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                self._channel.close()
                return
            self._closed = True
        self._channel.close()
        self._recv_thread.join(timeout=5)

    def __enter__(self) -> "MuxClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- client-side node proxies ------------------------------------------------


class RemoteSession:
    """An open remote file: reads, writes and close map to RPCs.

    Mirrors the :class:`~repro.fs.server.SynthSession` surface
    (``read``/``readlines``/``write``/``seek``/``close``/``mode``/
    ``pos``/``closed``, context manager) so everything that consumes
    local sessions — the shell's redirections, ``help``'s tools —
    works on remote files unchanged.
    """

    def __init__(self, client: MuxClient, fid: int, mode: str,
                 name: str) -> None:
        self._client = client
        self._fid = fid
        self.mode = mode
        self.name = name
        self.closed = False
        self.pos = 0
        self._seek_to: int | None = None

    def _check_open(self, op: str) -> None:
        if self.closed:
            raise Closed(path=self.name, op=op)

    def read(self, n: int = -1) -> str:
        self._check_open("read")
        offset = wire.SEQUENTIAL if self._seek_to is None else self._seek_to
        self._seek_to = None
        reply = self._client.rpc(wire.Tread(fid=self._fid, offset=offset,
                                            count=n))
        if offset != wire.SEQUENTIAL:
            self.pos = offset
        self.pos += len(reply.data)
        return reply.data

    def readlines(self) -> list[str]:
        return self.read().splitlines(keepends=True)

    def write(self, s: str) -> int:
        self._check_open("write")
        reply = self._client.rpc(wire.Twrite(fid=self._fid, data=s))
        self.pos += reply.count
        return reply.count

    def seek(self, pos: int) -> None:
        # applied server-side on the next read, where the snapshot is
        self._seek_to = pos

    def close(self) -> None:
        """Clunk the fid; close-time server errors surface here once."""
        if self.closed:
            return
        self.closed = True
        self._client.clunk(self._fid)

    def __del__(self) -> None:
        # a dropped handle must still flush its server-side tail
        try:
            self.close()
        except Exception:
            pass  # interpreter teardown / connection gone

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class RemoteFile(File):
    """A client-side proxy for a file served across the wire."""

    def __init__(self, client: MuxClient, path: str, mtime: int = 0) -> None:
        Node.__init__(self, basename(path))  # no local .data storage
        self._client = client
        self._path = path
        self.mtime = mtime

    @property
    def data(self) -> str:  # type: ignore[override]
        with self.open("r") as session:
            return session.read()

    @data.setter
    def data(self, value: str) -> None:
        with self.open("w") as session:
            session.write(value)

    def open(self, mode: str) -> RemoteSession:
        fid = self._client.walk_fid(self._path)
        try:
            self._client.rpc(wire.Topen(fid=fid, mode=mode))
        except FsError:
            self._client.clunk(fid)
            raise
        return RemoteSession(self._client, fid, mode, self._path)


class RemoteDir(Dir):
    """A client-side proxy for a directory served across the wire.

    Satisfies everything :class:`~repro.fs.namespace.Namespace` asks
    of a directory — ``lookup`` walks, ``entries`` stats — so mounting
    the proxy makes the whole remote tree appear, unions and globs
    included.  The remote's *structure* is the server's to change:
    ``attach``/``detach`` are refused.
    """

    def __init__(self, client: MuxClient, path: str = "/",
                 mtime: int = 0) -> None:
        super().__init__(basename(path) or "/")
        self._client = client
        self._path = path
        self.mtime = mtime

    def _make(self, path: str, is_dir: bool, mtime: int) -> Node:
        if is_dir:
            return RemoteDir(self._client, path, mtime)
        return RemoteFile(self._client, path, mtime)

    def lookup(self, name: str) -> Node | None:
        path = join(self._path, name)
        reply = self._client.probe(path)
        if reply is None:
            return None
        return self._make(path, reply.is_dir, reply.mtime)

    def entries(self) -> list[Node]:
        reply = self._client.stat(self._path)
        return [self._make(join(self._path, child.name), child.is_dir,
                           child.mtime)
                for child in reply.children]

    def attach(self, node: Node) -> Node:
        raise Invalid(f"'{self._path}': remote tree; create through the "
                      f"server", path=self._path, op="create")

    def detach(self, name: str) -> None:
        raise Invalid(f"'{self._path}': remote tree; remove through the "
                      f"server", path=self._path, op="remove")


def mount_remote(client: MuxClient) -> RemoteDir:
    """The client's proxy for the server's root, ready for ``mount``."""
    return RemoteDir(client, "/", client.root_stat.mtime)


__all__ = ["PipeChannel", "SocketChannel", "channel_pair", "dial",
           "FrameReader", "WireServer", "MuxClient", "RemoteSession",
           "RemoteFile", "RemoteDir", "mount_remote"]
