"""The process table: pids, states, and core images of broken processes.

On Plan 9 a faulting process is not reaped; it enters the *Broken*
state and waits to be examined by a debugger.  That behaviour is what
lets the paper's demo point at a pid and run ``stack`` minutes after
the crash.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ProcState(enum.Enum):
    RUNNING = "Running"
    READY = "Ready"
    BROKEN = "Broken"
    DONE = "Done"


@dataclass
class Registers:
    """The machine state a fault captures (MIPS names, as in Figure 6)."""

    pc: int = 0
    sp: int = 0
    status: int = 0
    badvaddr: int = 0
    gp: dict[str, int] = field(default_factory=dict)

    def lines(self) -> list[str]:
        """adb's $r listing."""
        out = [f"pc\t0x{self.pc:x}", f"sp\t0x{self.sp:x}",
               f"status\t0x{self.status:x}", f"badvaddr\t0x{self.badvaddr:x}"]
        out.extend(f"{name}\t0x{value:x}" for name, value in self.gp.items())
        return out


@dataclass
class Frame:
    """One call frame of a broken process.

    ``func(args) called from caller+offset file:line`` plus locals —
    the exact shape adb prints in Figure 7.
    """

    func: str
    args: list[tuple[str, int]] = field(default_factory=list)
    caller: str = ""
    caller_offset: int = 0
    file: str = ""
    line: int = 0
    locals: list[tuple[str, int]] = field(default_factory=list)

    def call_site(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass
class CoreImage:
    """Everything the debugger can see of a broken process."""

    exception: str = ""                 # "TLB miss (load or fetch)"
    registers: Registers = field(default_factory=Registers)
    frames: list[Frame] = field(default_factory=list)   # innermost first
    fault_file: str = ""                # where the pc points
    fault_line: int = 0
    fault_instr: str = ""               # disassembly of the faulting insn
    kernel_frames: list[Frame] = field(default_factory=list)  # $K view


@dataclass
class Process:
    """One simulated process."""

    pid: int
    name: str
    state: ProcState = ProcState.RUNNING
    core: CoreImage | None = None
    symtab: "SymbolTable | None" = None
    srcdir: str = ""    # where the binary's sources live ($s in adb)

    def break_with(self, core: CoreImage) -> None:
        """Fault: keep the corpse around for debugging."""
        self.state = ProcState.BROKEN
        self.core = core

    def finish(self) -> None:
        self.state = ProcState.DONE


class ProcessTable:
    """All processes on the machine; pids grow monotonically."""

    def __init__(self, first_pid: int = 100) -> None:
        self._procs: dict[int, Process] = {}
        self._next = first_pid

    def spawn(self, name: str, pid: int | None = None) -> Process:
        """Create a running process (a specific pid may be requested)."""
        if pid is None:
            pid = self._next
            self._next += 1
        elif pid in self._procs:
            raise ValueError(f"pid {pid} in use")
        else:
            self._next = max(self._next, pid + 1)
        proc = Process(pid, name)
        self._procs[pid] = proc
        return proc

    def get(self, pid: int) -> Process | None:
        return self._procs.get(pid)

    def remove(self, pid: int) -> None:
        self._procs.pop(pid, None)

    def all(self) -> list[Process]:
        return [self._procs[pid] for pid in sorted(self._procs)]

    def broken(self) -> list[Process]:
        """The corpses available for examination."""
        return [p for p in self.all() if p.state is ProcState.BROKEN]

    def ps_lines(self) -> list[str]:
        """The ps listing: pid, state, name."""
        return [f"{p.pid:8d} {p.state.value:8s} {p.name}" for p in self.all()]


from repro.proc.symtab import SymbolTable  # noqa: E402  (dataclass forward ref)
