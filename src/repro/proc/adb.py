"""adb: "a primitive debugger" with a notoriously cryptic language.

The subset the ``/help/db`` scripts package up:

====== =======================================================
``$c``  call-stack traceback
``$C``  traceback with local variables (what ``stack`` shows)
``$r``  registers
``$e``  the exception that broke the process
``$p``  just the faulting pc as ``file:line``
====== =======================================================

Output formats follow Figure 7 byte-for-byte in shape, e.g.::

    strlen(s=0x0) called from textinsert+0x30 text.c:32

:func:`cmd_adb` and :func:`cmd_ps` adapt the debugger to the shell's
command table so rc scripts can run ``echo '$C' | adb 176153``.
"""

from __future__ import annotations

from repro.proc.process import CoreImage, Process, ProcessTable, ProcState
from repro.shell.interp import IO, Interp


class Adb:
    """A debugger session attached to one process."""

    def __init__(self, proc: Process) -> None:
        self.proc = proc

    def _core(self) -> CoreImage | None:
        if self.proc.state is not ProcState.BROKEN or self.proc.core is None:
            return None
        return self.proc.core

    def run(self, command: str) -> str:
        """Execute one cryptic command, returning its output."""
        command = command.strip()
        core = self._core()
        if core is None:
            return f"adb: {self.proc.pid}: not broken\n"
        if command == "$c":
            return self.trace(core, with_locals=False)
        if command == "$C":
            return self.trace(core, with_locals=True)
        if command == "$r":
            return "".join(line + "\n" for line in core.registers.lines())
        if command == "$e":
            return f"last exception: {core.exception}\n"
        if command == "$p":
            return f"{core.fault_file}:{core.fault_line}\n"
        if command == "$s":
            return (self.proc.srcdir or "/") + "\n"
        if command == "$K":
            if not core.kernel_frames:
                return "no kernel stack\n"
            out = []
            for frame in core.kernel_frames:
                args = ", ".join(f"{name}=0x{value:x}"
                                 for name, value in frame.args)
                out.append(f"{frame.func}({args}) called from "
                           f"{frame.caller}+0x{frame.caller_offset:x} "
                           f"{frame.file}:{frame.line}\n")
            return "".join(out)
        return f"adb: bad command {command!r}\n"

    # -- formatting -----------------------------------------------------------

    def trace(self, core: CoreImage, with_locals: bool) -> str:
        """The Figure-7 traceback."""
        out = [f"last exception: {core.exception}\n"]
        if core.fault_file:
            fault_fn = core.frames[0].func if core.frames else "?"
            out.append(f"{core.fault_file}:{core.fault_line} "
                       f"{fault_fn}+0x{core.registers.pc & 0xff:x}?"
                       f"\t{core.fault_instr}\n")
        for frame in core.frames:
            args = ", ".join(f"{name}=0x{value:x}"
                             for name, value in frame.args)
            out.append(f"{frame.func}({args}) called from "
                       f"{frame.caller}+0x{frame.caller_offset:x} "
                       f"{frame.file}:{frame.line}\n")
            if with_locals:
                out.extend(f"\t{name} = 0x{value:x}\n"
                           for name, value in frame.locals)
        return "".join(out)


# -- shell command adapters ----------------------------------------------------


def cmd_adb(procs: ProcessTable):
    """Build the ``adb`` shell command over a process table.

    Usage from rc: ``echo '$C' | adb <pid>`` — commands arrive on
    standard input, exactly as with the real adb.
    """
    def adb(interp: Interp, args: list[str], io: IO) -> int:
        if not args or not args[0].isdigit():
            io.stderr.append("usage: adb pid  (commands on stdin)\n")
            return 1
        proc = procs.get(int(args[0]))
        if proc is None:
            io.stderr.append(f"adb: no process {args[0]}\n")
            return 1
        session = Adb(proc)
        status = 0
        for line in io.stdin.splitlines():
            if not line.strip():
                continue
            output = session.run(line)
            if output.startswith("adb:"):
                io.stderr.append(output)
                status = 1
            else:
                io.stdout.append(output)
        return status
    return adb


def cmd_ps(procs: ProcessTable):
    """Build the ``ps`` shell command over a process table."""
    def ps(interp: Interp, args: list[str], io: IO) -> int:
        broken_only = bool(args) and args[0] == "-b"
        listing = procs.broken() if broken_only else procs.all()
        for proc in listing:
            io.stdout.append(
                f"{proc.pid:8d} {proc.state.value:8s} {proc.name}\n")
        return 0
    return ps
