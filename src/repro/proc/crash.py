"""Crash scenarios — including the paper's own.

:func:`paper_crash` reconstructs the broken ``help`` process from the
example session (pid 176153, a TLB miss in ``strchr`` reached through
``strlen`` from ``textinsert``, because ``Xdie1`` cleared the global
``n`` that ``Xdie2`` later passed to ``errs``).  Every name, offset,
argument and local mirrors Figure 7.

:func:`synthetic_crash` builds arbitrary-depth crashes for benchmarks.
"""

from __future__ import annotations

from repro.proc.process import CoreImage, Frame, Process, ProcessTable, Registers
from repro.proc.symtab import SymbolTable

PAPER_PID = 176153

# (func, args, caller, caller_offset, file:line of call site, locals)
_PAPER_FRAMES = [
    ("strchr", [("c", 0x3c), ("s", 0x0)],
     "strlen", 0x1c, "/sys/src/libc/port/strlen.c", 7, []),
    ("strlen", [("s", 0x0)],
     "textinsert", 0x30, "text.c", 32, []),
    ("textinsert", [("sel", 0x1), ("t", 0x40e60), ("s", 0x0),
                    ("q0", 0xd), ("full", 0x1)],
     "errs", 0xe8, "errs.c", 34, [("n", 0x3d7cc)]),
    ("errs", [("s", 0x0)],
     "Xdie2", 0x14, "exec.c", 252, [("p", 0x40d88)]),
    ("Xdie2", [],
     "lookup", 0xc4, "exec.c", 101, []),
    ("lookup", [("s", 0x40be8)],
     "execute", 0x50, "exec.c", 207, [("i", 0xf), ("n", 0xc5bf)]),
    ("execute", [("t", 0x3ebbc), ("p0", 0x2), ("p1", 0x2)],
     "control", 0x430, "ctrl.c", 331, []),
    ("control", [],
     "control", 0x0, "ctrl.c", 320, []),
]


def help_symtab() -> SymbolTable:
    """The symbol table of the (simulated) help binary."""
    table = SymbolTable("/bin/help")
    table.add_func("main", "help.c", 20)
    table.add_func("control", "ctrl.c", 300)
    table.add_func("execute", "exec.c", 190)
    table.add_func("lookup", "exec.c", 90)
    table.add_func("Xdie1", "exec.c", 210)
    table.add_func("Xdie2", "exec.c", 249)
    table.add_func("errs", "errs.c", 28)
    table.add_func("textinsert", "text.c", 20)
    table.add_func("strlen", "/sys/src/libc/port/strlen.c", 3)
    table.add_func("strchr", "/sys/src/libc/mips/strchr.s", 20)
    table.add_data("n", "dat.h", 136)
    return table


def paper_core() -> CoreImage:
    """The core image of Figure 7."""
    frames = [Frame(func, list(args), caller, off, file, line, list(locals_))
              for func, args, caller, off, file, line, locals_
              in _PAPER_FRAMES]
    return CoreImage(
        exception="TLB miss (load or fetch)",
        registers=Registers(pc=0x18df4, sp=0x3f4e8, status=0xfb0c,
                            badvaddr=0x0),
        frames=frames,
        fault_file="/sys/src/libc/mips/strchr.s",
        fault_line=34,
        fault_instr="MOVW 0(R3),R5",
    )


def paper_crash(procs: ProcessTable) -> Process:
    """Install the paper's broken help process in *procs*."""
    proc = procs.spawn("help", pid=PAPER_PID)
    proc.symtab = help_symtab()
    proc.srcdir = "/usr/rob/src/help"
    core = paper_core()
    core.kernel_frames = [
        Frame("fault", [("addr", 0x0)], "trap", 0x1a4,
              "/sys/src/9/mips/trap.c", 112),
        Frame("trap", [("ur", 0x80014000)], "vector", 0x40,
              "/sys/src/9/mips/l.s", 221),
    ]
    proc.break_with(core)
    return proc


def crash_report(pid: int = PAPER_PID) -> str:
    """The text of Sean's mail message reporting the crash (Figure 6)."""
    return (f"i tried your new help and got this:\n"
            f"help {pid}: user TLB miss (load or fetch) badvaddr=0x0\n"
            f"help {pid}: status=0xfb0c pc=0x18df4 sp=0x3f4e8\n")


def synthetic_crash(procs: ProcessTable, name: str = "victim",
                    depth: int = 10) -> Process:
    """A crash with *depth* frames, for stress tests and benchmarks."""
    frames = []
    for i in range(depth):
        frames.append(Frame(
            func=f"fn{i}",
            args=[("x", i), ("y", i * 16)],
            caller=f"fn{i + 1}" if i + 1 < depth else "main",
            caller_offset=0x10 + 4 * i,
            file=f"mod{i % 4}.c",
            line=10 + i,
            locals=[("tmp", 0x100 + i)] if i % 2 == 0 else [],
        ))
    proc = procs.spawn(name)
    proc.break_with(CoreImage(
        exception="divide by zero",
        registers=Registers(pc=0x2000, sp=0x7ffc),
        frames=frames,
        fault_file="mod0.c",
        fault_line=10,
        fault_instr="DIV R1,R0",
    ))
    return proc
