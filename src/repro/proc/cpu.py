"""A simulated CPU server: run applications away from the terminal.

"Help does not exploit the multi-machine Plan 9 environment as well
as it could ... help could run on the terminal and make an invisible
call to the CPU server, sending requests to run applications to the
remote shell-like process."

This module is that invisible call, simulated.  Dialing the server
exports the terminal's namespace (a fork: same files, same mounted
``/mnt/help``, independent mount table — exactly Plan 9's model), and
a :class:`RemoteRunner` satisfies help's runner contract by shipping
each command line to the connection.  Applications then really do run
"on another machine": binds they make are invisible to the terminal,
while their writes to ``/mnt/help`` reach the screen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.execute import CommandResult
from repro.fs.namespace import Namespace
from repro.shell.interp import Command, Interp


@dataclass
class CpuConnection:
    """One dialed session: the exported namespace plus a command table."""

    ns: Namespace
    commands: dict[str, Command]
    user: str = "rob"
    history: list[str] = field(default_factory=list)

    def run(self, cmdline: str, cwd: str, env: dict[str, str]) -> CommandResult:
        """Run *cmdline* in the remote shell and return its streams."""
        self.history.append(cmdline)
        interp = Interp(self.ns, cwd=cwd, commands=self.commands)
        interp.set("user", [self.user])
        interp.set("home", [f"/usr/{self.user}"])
        interp.set("cpu", ["1"])  # scripts can tell where they run
        for key, value in env.items():
            interp.set(key, [value])
        result = interp.run(cmdline)
        return CommandResult(result.status, result.stdout, result.stderr)


class CpuServer:
    """The machine on the other end of the wire."""

    def __init__(self, name: str = "bootes") -> None:
        self.name = name
        self.connections: list[CpuConnection] = []

    def dial(self, terminal_ns: Namespace, commands: dict[str, Command],
             user: str = "rob") -> CpuConnection:
        """Export the terminal's namespace and open a session.

        The fork shares the VFS (files written remotely appear at the
        terminal) but copies the mount table (remote binds stay
        remote) — the Plan 9 semantics the paper takes for granted.
        """
        connection = CpuConnection(terminal_ns.fork(), dict(commands), user)
        self.connections.append(connection)
        return connection


class RemoteRunner:
    """help's runner contract, fulfilled by a CPU connection."""

    def __init__(self, connection: CpuConnection) -> None:
        self.connection = connection

    def __call__(self, cmdline: str, cwd: str,
                 env: dict[str, str]) -> CommandResult:
        return self.connection.run(cmdline, cwd, env)
