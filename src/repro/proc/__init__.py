"""Simulated processes and the adb debugger substrate.

"A new version of help has crashed and a broken process lies about
waiting to be examined.  (This is a property of Plan 9, not of
help.)"  This package supplies that property:

- :mod:`repro.proc.symtab` — symbol tables mapping functions and
  globals to file:line coordinates and synthetic addresses;
- :mod:`repro.proc.process` — a process table with running/broken
  states and core images (registers, fault, call stack);
- :mod:`repro.proc.crash` — builders for crash scenarios, including
  the exact Figure-7 crash of ``help`` itself;
- :mod:`repro.proc.adb` — a debugger with adb's "notoriously cryptic
  input language" (``$c``, ``$C``, ``$r``, ``$e``), which the
  ``/help/db`` scripts package into easy-to-use operations.
"""

from repro.proc.adb import Adb, cmd_adb, cmd_ps
from repro.proc.crash import paper_crash
from repro.proc.process import CoreImage, Frame, Process, ProcessTable, Registers
from repro.proc.symtab import Symbol, SymbolTable

__all__ = [
    "Adb", "CoreImage", "Frame", "Process", "ProcessTable", "Registers",
    "Symbol", "SymbolTable", "paper_crash", "cmd_adb", "cmd_ps",
]
