"""Symbol tables for simulated binaries.

The stack window in Figure 7 "has many file names in it.  These are
extracted from the symbol table of the broken program" — so a binary
here carries a table mapping every function and global to the source
coordinate it was defined at, plus a synthetic text address used to
format ``func+0x68``-style locations.
"""

from __future__ import annotations

from dataclasses import dataclass

# Functions are laid out this far apart in the synthetic text segment,
# leaving room for plausible intra-function offsets.
FUNC_STRIDE = 0x400
TEXT_BASE = 0x1000


@dataclass(frozen=True)
class Symbol:
    """One named thing in a binary."""

    name: str
    kind: str          # 'func' or 'data'
    file: str          # defining source file
    line: int          # 1-based line of the definition
    address: int = 0

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"


class SymbolTable:
    """Symbols of one binary, addressable by name and by address."""

    def __init__(self, binary: str = "") -> None:
        self.binary = binary
        self._by_name: dict[str, Symbol] = {}
        self._next_addr = TEXT_BASE

    def add_func(self, name: str, file: str, line: int) -> Symbol:
        """Register a function, assigning it the next text address."""
        symbol = Symbol(name, "func", file, line, self._next_addr)
        self._next_addr += FUNC_STRIDE
        self._by_name[name] = symbol
        return symbol

    def add_data(self, name: str, file: str, line: int) -> Symbol:
        """Register a global datum."""
        symbol = Symbol(name, "data", file, line)
        self._by_name[name] = symbol
        return symbol

    def lookup(self, name: str) -> Symbol | None:
        """The symbol called *name*, or None."""
        return self._by_name.get(name)

    def functions(self) -> list[Symbol]:
        """All function symbols, in address order."""
        return sorted((s for s in self._by_name.values() if s.kind == "func"),
                      key=lambda s: s.address)

    def globals(self) -> list[Symbol]:
        """All data symbols, in name order."""
        return sorted((s for s in self._by_name.values() if s.kind == "data"),
                      key=lambda s: s.name)

    def find_address(self, address: int) -> tuple[Symbol, int] | None:
        """(function, offset) containing *address*, adb's a2l."""
        best: Symbol | None = None
        for symbol in self.functions():
            if symbol.address <= address:
                best = symbol
            else:
                break
        if best is None:
            return None
        return (best, address - best.address)

    def files(self) -> list[str]:
        """Every source file mentioned, sorted."""
        return sorted({s.file for s in self._by_name.values()})

    def __len__(self) -> int:
        return len(self._by_name)
