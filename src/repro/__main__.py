"""An interactive driver: ``python -m repro``.

A tiny command loop over the simulated session, for poking at the
system by hand (or from a here-doc).  Commands:

========================  ==============================================
``render``                print the screen as an ASCII grid
``windows``               list window numbers, names, dirty state
``open PATH[:LINE]``      Open a file/directory
``exec N TEXT``           execute TEXT as if middle-swept in window N
``type N TEXT``           type TEXT into window N's body (selection first)
``select N Q0 Q1``        set window N's body selection
``show N``                print window N (tag + visible body)
``sh CMD``                run an rc command in a shell on the namespace
``demo``                  replay the paper's debugging session
``quit``                  leave
========================  ==============================================
"""

from __future__ import annotations

import sys

from repro import build_system, render_screen, render_window
from repro.core.window import Subwindow


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    width, height = 120, 40
    if len(args) >= 2 and args[0].isdigit() and args[1].isdigit():
        width, height = int(args[0]), int(args[1])
    system = build_system(width=width, height=height)
    h = system.help
    shell = system.shell("/usr/rob")
    print(f"help booted ({width}x{height}); 'render' to look around, "
          f"'demo' for the paper's session, 'quit' to leave")

    for raw in sys.stdin:
        line = raw.strip()
        if not line:
            continue
        cmd, _, rest = line.partition(" ")
        try:
            if cmd == "quit":
                break
            elif cmd == "render":
                print(render_screen(h))
            elif cmd == "windows":
                for wid in sorted(h.windows):
                    w = h.windows[wid]
                    flags = "*" if w.dirty else " "
                    print(f"{wid:4d}{flags} {w.tag.string()}")
            elif cmd == "open":
                from repro.core.selection import parse_address
                address = parse_address(rest)
                w = h.open_path(address.name, line=address.line)
                if w is not None:
                    print(f"window {w.id}: {w.name()}")
            elif cmd == "exec":
                wid, _, text = rest.partition(" ")
                h.execute_text(h.windows[int(wid)], text)
                print("ok")
            elif cmd == "type":
                wid, _, text = rest.partition(" ")
                window = h.windows[int(wid)]
                window.type_text(Subwindow.BODY, text.replace("\\n", "\n"))
                h.current = (window, Subwindow.BODY)
                print("ok")
            elif cmd == "select":
                wid, q0, q1 = rest.split()
                h.select(h.windows[int(wid)], int(q0), int(q1))
                print(f"selected {h.selected_text()!r}")
            elif cmd == "show":
                print(render_window(h, h.windows[int(rest)]))
            elif cmd == "sh":
                result = shell.run(rest)
                sys.stdout.write(result.stdout)
                sys.stderr.write(result.stderr)
            elif cmd == "demo":
                _demo(system)
            else:
                print(f"?unknown command {cmd!r} (render/windows/open/"
                      f"exec/type/select/show/sh/demo/quit)")
        except Exception as exc:  # an interactive loop shrugs and goes on
            print(f"error: {exc}")
        if not h.running:
            break
    return 0


def _demo(system) -> None:
    """The Figures 5-12 session, compressed."""
    h = system.help
    h.execute_text(h.window_by_name("/help/mail/stf"), "headers")
    mbox = h.window_by_name("/mail/box/rob/mbox")
    h.point_at(mbox, mbox.body.string().index("sean"))
    h.execute_text(h.window_by_name("/help/mail/stf"), "messages")
    msg = h.window_by_name("From")
    h.point_at(msg, msg.body.string().index("176153"))
    h.execute_text(h.window_by_name("/help/db/stf"), "stack")
    stack = h.window_by_name("/usr/rob/src/help/")
    print(stack.tag.string())
    print(stack.body.string())
    print("(point at any file:line above and 'exec N Open' to browse)")


if __name__ == "__main__":
    raise SystemExit(main())
