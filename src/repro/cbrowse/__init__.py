"""The C browser: a compiler with its code generator stripped.

"The implementation of the C browser ... in a nutshell, it parses the
C source to interpret the symbols dynamically."  The paper built it by
"spending a few hours stripping the code generator from the compiler";
this package is that artifact built directly:

- :mod:`repro.cbrowse.lexer` — a C tokenizer that tags every token
  with its source file and line (including through ``#include``);
- :mod:`repro.cbrowse.parser` — a scope-tracking parse that records
  every declaration and binds every identifier use to the declaration
  visible at that point (so ``uses n`` lists the *global* ``n`` and
  not the local one shadowing it — the precision grep cannot give);
- :mod:`repro.cbrowse.symbols` — the resulting program database with
  the queries the ``decl`` and ``uses`` tools need;
- :mod:`repro.cbrowse.tools` — the shell commands: ``cpp``, ``rcc``
  (the stripped compiler), and friends.
"""

from repro.cbrowse.lexer import CToken, tokenize
from repro.cbrowse.parser import parse_program, parse_source
from repro.cbrowse.symbols import Decl, Program, Use

__all__ = ["CToken", "tokenize", "parse_program", "parse_source",
           "Decl", "Use", "Program"]
