"""Scope-tracking parse of C sources: declarations and bound uses.

This is not a full C grammar — it is the part a browser needs, the
part Pike kept when he "stripped the code generator from the
compiler": scopes, declarators, and identifier binding.  The approach
is a single token-stream walk:

- braces push and pop scopes; function parameters land in the body's
  scope; struct/union bodies declare members;
- a statement beginning with a type (keyword or known typedef) is
  parsed as a declaration list, handling pointers, arrays, function
  definitions/prototypes (ANSI and K&R), and initializers;
- every other identifier is a *use*, bound to the innermost visible
  declaration (member accesses after ``.``/``->`` and goto labels
  excepted);
- ``#include "..."`` is resolved against the namespace and parsed once
  per program (headers get ``./``-prefixed labels, matching the
  paper's ``./dat.h:136``); ``#include <...>`` of absent system
  headers is recorded and skipped; ``#define`` declares a macro.
"""

from __future__ import annotations

from repro.cbrowse.lexer import CToken, TYPE_KEYWORDS, tokenize
from repro.cbrowse.symbols import Decl, Program, Use
from repro.fs.namespace import Namespace
from repro.fs.vfs import dirname, join

_QUALIFIERS = frozenset(("static", "extern", "const", "register",
                         "volatile", "auto", "signed", "unsigned"))
_BASE_TYPES = frozenset(("void", "char", "short", "int", "long",
                         "float", "double"))
_STATEMENT_KEYWORDS = frozenset(("if", "else", "while", "for", "do",
                                 "switch", "case", "default", "return",
                                 "break", "continue", "goto", "sizeof"))


class _Scope:
    """One lexical scope: bindings plus what kind of scope it is."""

    def __init__(self, kind: str) -> None:
        self.kind = kind            # 'global', 'block', 'struct'
        self.bindings: dict[str, Decl] = {}


class _Parser:
    def __init__(self, program: Program, typedefs: set[str]) -> None:
        self.program = program
        self.typedefs = typedefs
        self.scopes: list[_Scope] = [_Scope("global")]
        self.pending_params: list[Decl] = []
        self.tokens: list[CToken] = []
        self.i = 0

    # -- scope helpers ------------------------------------------------------

    def _declare(self, name: str, kind: str, tok: CToken) -> Decl:
        scope = self.scopes[-1]
        if kind in ("var", "func") and scope.kind == "global":
            # unify extern declarations, tentative definitions and
            # prototypes: later global declarations of the same name
            # are references to the first, not new objects
            existing = scope.bindings.get(name)
            if (existing is not None and existing.kind in ("var", "func")
                    and (existing.file, existing.line) != (tok.file, tok.line)):
                self.program.uses.append(
                    Use(name, tok.file, tok.line, existing))
                return existing
        decl = Decl(name, kind, tok.file, tok.line, len(self.scopes) - 1)
        scope.bindings[name] = decl
        self.program.decls.append(decl)
        if kind == "typedef":
            self.typedefs.add(name)
        return decl

    def _lookup(self, name: str) -> Decl | None:
        for scope in reversed(self.scopes):
            decl = scope.bindings.get(name)
            if decl is not None and scope.kind != "struct":
                return decl
        return None

    def _use(self, tok: CToken) -> None:
        self.program.uses.append(
            Use(tok.text, tok.file, tok.line, self._lookup(tok.text)))

    def _in_function(self) -> bool:
        return any(s.kind == "block" for s in self.scopes)

    def _local_kind(self) -> str:
        if self.scopes[-1].kind == "struct":
            return "member"
        return "local" if self._in_function() else "var"

    # -- token helpers --------------------------------------------------------

    def _peek(self, offset: int = 0) -> CToken | None:
        idx = self.i + offset
        return self.tokens[idx] if idx < len(self.tokens) else None

    def _skip_balanced(self, open_: str, close: str,
                      record_uses: bool = True) -> None:
        """Consume from the current *open_* punct to its match."""
        depth = 0
        while self.i < len(self.tokens):
            tok = self.tokens[self.i]
            if tok.is_punct(open_):
                depth += 1
            elif tok.is_punct(close):
                depth -= 1
                if depth == 0:
                    self.i += 1
                    return
            elif record_uses and tok.kind == "ident":
                prev = self.tokens[self.i - 1]
                if not (prev.is_punct(".") or prev.is_punct("->")):
                    self._use(tok)
            self.i += 1

    # -- main walk ------------------------------------------------------------

    def walk(self, tokens: list[CToken]) -> None:
        self.tokens = tokens
        self.i = 0
        while self.i < len(tokens):
            tok = tokens[self.i]
            if tok.kind == "cpp":
                self._cpp_define(tok)
                self.i += 1
            elif tok.is_punct("{"):
                scope = _Scope("block")
                for param in self.pending_params:
                    scope.bindings[param.name] = param
                    self.program.decls.append(param)
                self.pending_params = []
                self.scopes.append(scope)
                self.i += 1
            elif tok.is_punct("}"):
                if len(self.scopes) > 1:
                    self.scopes.pop()
                self.i += 1
            elif tok.kind == "keyword" and tok.text == "typedef":
                self._typedef()
            elif tok.kind == "keyword" and tok.text == "enum":
                self._enum()
            elif tok.kind == "keyword" and tok.text in ("struct", "union"):
                if not self._struct():
                    self._statement()
            elif self._starts_declaration():
                self._declaration()
            elif (len(self.scopes) == 1 and tok.kind == "ident"
                  and (nxt := self._peek(1)) is not None
                  and nxt.is_punct("(")):
                # implicit-int (K&R) function definition at file scope
                self.i += 1
                self._function(tok)
            else:
                self._statement()

    # -- preprocessor remnants ------------------------------------------------

    def _cpp_define(self, tok: CToken) -> None:
        parts = tok.text.split(None, 2)
        if len(parts) >= 2 and parts[0] in ("#define", "#") and parts[1]:
            name = parts[1] if parts[0] == "#define" else parts[2].split()[0]
            name = name.split("(")[0]
            if name.isidentifier():
                self._declare(name, "macro", tok)

    # -- declarations ---------------------------------------------------------

    def _starts_declaration(self) -> bool:
        tok = self._peek()
        if tok is None:
            return False
        if tok.kind == "keyword" and tok.text in TYPE_KEYWORDS:
            return True
        if tok.kind == "ident" and tok.text in self.typedefs:
            # "Text *t;" is a declaration; "Text(x)" or "t = Text" is a use
            nxt = self._peek(1)
            if nxt is None:
                return False
            if nxt.is_punct("*") or nxt.kind == "ident":
                return True
        return False

    def _consume_type_prefix(self) -> bool:
        """Consume qualifiers/base types/typedef names/struct tags.

        Returns False if what follows cannot be a declaration after all.
        """
        saw_type = False
        while True:
            tok = self._peek()
            if tok is None:
                return saw_type
            if tok.kind == "keyword" and (tok.text in _QUALIFIERS
                                          or tok.text in _BASE_TYPES):
                saw_type = True
                self.i += 1
                continue
            if tok.kind == "keyword" and tok.text in ("struct", "union", "enum"):
                self.i += 1
                tag = self._peek()
                if tag is not None and tag.kind == "ident":
                    self._use(tag)
                    self.i += 1
                if (t := self._peek()) is not None and t.is_punct("{"):
                    # inline body: members handled by a nested walk
                    self._struct_body()
                saw_type = True
                continue
            if tok.kind == "ident" and tok.text in self.typedefs:
                nxt = self._peek(1)
                declarator_follows = nxt is not None and (
                    nxt.is_punct("*") or nxt.kind == "ident"
                    or nxt.is_punct("("))
                if declarator_follows or not saw_type:
                    self._use(tok)
                    self.i += 1
                    saw_type = True
                    continue
            return saw_type

    def _declaration(self) -> None:
        if not self._consume_type_prefix():
            self._statement()
            return
        # declarator list
        while self.i < len(self.tokens):
            tok = self.tokens[self.i]
            if tok.is_punct(";"):
                self.i += 1
                return
            if tok.is_punct("*") or tok.is_punct("("):
                # pointers and the '(' of "(*fp)" declarators
                self.i += 1
                continue
            if tok.is_punct(")"):
                self.i += 1
                continue
            if tok.kind != "ident":
                # something unexpected: bail to statement scanning
                self._statement()
                return
            name_tok = tok
            self.i += 1
            nxt = self._peek()
            if nxt is not None and nxt.is_punct("(") and not self._mid_declarator():
                self._function(name_tok)
                return
            kind = self._local_kind()
            self._declare(name_tok.text, kind, name_tok)
            self._after_declarator()
            tok = self._peek()
            if tok is None:
                return
            if tok.is_punct(","):
                self.i += 1
                continue
            if tok.is_punct(";"):
                self.i += 1
                return
            # unexpected: scan out of the statement
            self._statement()
            return

    def _mid_declarator(self) -> bool:
        """True inside a "(*fp)" style declarator (next '(' is the args)."""
        prev = self.tokens[self.i - 2] if self.i >= 2 else None
        return prev is not None and prev.is_punct("(")

    def _after_declarator(self) -> None:
        """Consume array brackets and initializers after a declared name."""
        while self.i < len(self.tokens):
            tok = self.tokens[self.i]
            if tok.is_punct("["):
                self._skip_balanced("[", "]")
                continue
            if tok.is_punct("("):
                # function-pointer parameter list: uses inside are types
                self._skip_balanced("(", ")")
                continue
            if tok.is_punct("="):
                self.i += 1
                self._initializer()
                continue
            return

    def _initializer(self) -> None:
        """Scan an initializer expression, recording uses."""
        depth = 0
        while self.i < len(self.tokens):
            tok = self.tokens[self.i]
            if tok.is_punct("(") or tok.is_punct("[") or tok.is_punct("{"):
                depth += 1
            elif tok.is_punct(")") or tok.is_punct("]") or tok.is_punct("}"):
                depth -= 1
            elif depth == 0 and (tok.is_punct(",") or tok.is_punct(";")):
                return
            elif tok.kind == "ident":
                prev = self.tokens[self.i - 1]
                if not (prev.is_punct(".") or prev.is_punct("->")):
                    self._use(tok)
            self.i += 1

    def _function(self, name_tok: CToken) -> None:
        """A declarator followed by '(': definition or prototype."""
        self._declare(name_tok.text, "func", name_tok)
        params = self._param_list()
        tok = self._peek()
        if tok is not None and tok.is_punct(";"):
            # a prototype: ';' directly after ')'
            self.i += 1
            return
        # K&R parameter type declarations sit between ')' and '{'
        while (tok := self._peek()) is not None and not tok.is_punct("{"):
            if tok.kind == "ident":
                for param in params:
                    if param.name == tok.text:
                        break
                else:
                    self._use(tok)
            self.i += 1
        self.pending_params = params

    def _param_list(self) -> list[Decl]:
        """Parse '(...)' collecting parameter declarations."""
        params: list[Decl] = []
        assert self.tokens[self.i].is_punct("(")
        self.i += 1
        depth = 1
        last_ident: CToken | None = None
        while self.i < len(self.tokens):
            tok = self.tokens[self.i]
            if tok.is_punct("("):
                depth += 1
            elif tok.is_punct(")"):
                depth -= 1
                if depth == 0:
                    if last_ident is not None:
                        params.append(Decl(last_ident.text, "param",
                                           last_ident.file, last_ident.line,
                                           len(self.scopes)))
                    self.i += 1
                    return params
            elif tok.is_punct(",") and depth == 1:
                if last_ident is not None:
                    params.append(Decl(last_ident.text, "param",
                                       last_ident.file, last_ident.line,
                                       len(self.scopes)))
                last_ident = None
            elif tok.kind == "ident" and depth == 1:
                if tok.text in self.typedefs and last_ident is None:
                    self._use(tok)  # a type name, not the parameter
                else:
                    if last_ident is not None and last_ident.text in self.typedefs:
                        self._use(last_ident)
                    last_ident = tok
            self.i += 1
        return params

    # -- composites -----------------------------------------------------------

    def _typedef(self) -> None:
        """typedef ... Name; — the last top-level ident is the name."""
        self.i += 1
        depth = 0
        last_ident: CToken | None = None
        idents: list[tuple[CToken, bool]] = []   # (token, follows struct kw)
        prev_tag_kw = False
        while self.i < len(self.tokens):
            tok = self.tokens[self.i]
            if tok.is_punct("{") or tok.is_punct("(") or tok.is_punct("["):
                depth += 1
            elif tok.is_punct("}") or tok.is_punct(")") or tok.is_punct("]"):
                depth -= 1
            elif tok.is_punct(";") and depth == 0:
                self.i += 1
                break
            elif tok.kind == "ident" and depth == 0:
                idents.append((tok, prev_tag_kw))
                last_ident = tok
            prev_tag_kw = (tok.kind == "keyword"
                           and tok.text in ("struct", "union", "enum"))
            self.i += 1
        if last_ident is None:
            return
        for tok, is_tag in idents[:-1]:
            # "typedef struct Addr Addr;" implicitly declares the tag
            if is_tag and self._lookup(tok.text) is None:
                self._declare(tok.text, "tag", tok)
            else:
                self._use(tok)
        self._declare(last_ident.text, "typedef", last_ident)

    def _enum(self) -> None:
        """enum [Tag] { A, B = expr, ... } [vars];"""
        self.i += 1  # 'enum'
        tok = self._peek()
        if tok is not None and tok.kind == "ident":
            self._declare(tok.text, "tag", tok)
            self.i += 1
        tok = self._peek()
        if tok is None or not tok.is_punct("{"):
            return  # enum used as a type: let declaration logic continue
        self.i += 1
        expecting_name = True
        while self.i < len(self.tokens):
            tok = self.tokens[self.i]
            if tok.is_punct("}"):
                self.i += 1
                break
            if tok.is_punct(","):
                expecting_name = True
            elif tok.kind == "ident" and expecting_name:
                self._declare(tok.text, "enum", tok)
                expecting_name = False
            elif tok.kind == "ident":
                self._use(tok)
            self.i += 1
        if (tok := self._peek()) is not None and tok.is_punct(";"):
            self.i += 1

    def _struct(self) -> bool:
        """struct Tag { members }; at statement level.

        Returns False when this is really a declaration using a struct
        type (struct Tag x;) so the caller can reparse it as one.
        """
        nxt = self._peek(1)
        after = self._peek(2)
        if nxt is not None and nxt.is_punct("{"):
            self.i += 1
            self._struct_body()
            if (tok := self._peek()) is not None and tok.is_punct(";"):
                self.i += 1
            return True
        if (nxt is not None and nxt.kind == "ident"
                and after is not None and after.is_punct("{")):
            self._declare(nxt.text, "tag", nxt)
            self.i += 2
            self._struct_body()
            if (tok := self._peek()) is not None and tok.is_punct(";"):
                self.i += 1
            return True
        return False  # "struct Tag variable;" — a declaration

    def _struct_body(self) -> None:
        """Parse { member declarations } in a struct scope."""
        assert self.tokens[self.i].is_punct("{")
        self.scopes.append(_Scope("struct"))
        self.i += 1
        depth = 1
        while self.i < len(self.tokens) and depth > 0:
            tok = self.tokens[self.i]
            if tok.is_punct("{"):
                depth += 1
                self.i += 1
            elif tok.is_punct("}"):
                depth -= 1
                self.i += 1
            elif depth == 1 and (self._starts_declaration()
                                 or (tok.kind == "keyword"
                                     and tok.text in ("struct", "union"))):
                if tok.kind == "keyword" and tok.text in ("struct", "union"):
                    if self._struct():
                        continue
                self._declaration()
            else:
                self.i += 1
        self.scopes.pop()

    # -- statements -----------------------------------------------------------

    def _statement(self) -> None:
        """Scan a non-declaration statement, recording identifier uses."""
        depth = 0
        prev_goto = False
        while self.i < len(self.tokens):
            tok = self.tokens[self.i]
            if tok.is_punct("(") or tok.is_punct("["):
                depth += 1
            elif tok.is_punct(")") or tok.is_punct("]"):
                depth -= 1
            elif depth == 0 and tok.is_punct(";"):
                self.i += 1
                return
            elif depth <= 0 and (tok.is_punct("{") or tok.is_punct("}")):
                return  # scopes are the main loop's business
            elif tok.kind == "ident":
                prev = self.tokens[self.i - 1] if self.i > 0 else None
                nxt = self._peek(1)
                is_member = prev is not None and (prev.is_punct(".")
                                                  or prev.is_punct("->"))
                is_label = (depth == 0 and nxt is not None
                            and nxt.is_punct(":") and prev is not None
                            and (prev.is_punct(";") or prev.is_punct("{")
                                 or prev.is_punct("}")))
                if not is_member and not is_label and not prev_goto:
                    self._use(tok)
            prev_goto = tok.kind == "keyword" and tok.text == "goto"
            self.i += 1


# -- entry points -------------------------------------------------------------


def parse_source(source: str, file: str = "<stdin>",
                 program: Program | None = None,
                 typedefs: set[str] | None = None) -> Program:
    """Parse one C source string (no include resolution)."""
    if program is None:
        program = Program()
    if typedefs is None:
        typedefs = set()
    parser = _Parser(program, typedefs)
    parser.walk(_strip_includes(tokenize(source, file), program))
    return program


def _strip_includes(tokens: list[CToken], program: Program) -> list[CToken]:
    out = []
    for tok in tokens:
        if tok.kind == "cpp" and tok.text.startswith("#include"):
            program.missing_includes.append(tok.text)
            continue
        out.append(tok)
    return out


def parse_program(ns: Namespace, paths: list[str],
                  base_dir: str | None = None) -> Program:
    """Parse a set of sources through the namespace, resolving includes.

    *paths* are absolute source paths; labels in the result are
    relative to *base_dir* (default: the first source's directory).
    Quoted includes resolve against the including file and are labelled
    ``./name``; angle includes of files absent from the namespace are
    recorded in ``missing_includes`` and skipped.
    """
    if not paths:
        return Program()
    if base_dir is None:
        base_dir = dirname(paths[0])
    program = Program()
    typedefs: set[str] = set()
    parsed: set[str] = set()

    def label_for(path: str, quoted: bool) -> str:
        prefix = base_dir.rstrip("/") + "/"
        if path.startswith(prefix):
            rel = path[len(prefix):]
            return f"./{rel}" if quoted else rel
        return path

    def expand(path: str, label: str) -> list[CToken]:
        if path in parsed:
            return []
        parsed.add(path)
        tokens = tokenize(ns.read(path), label)
        out: list[CToken] = []
        for tok in tokens:
            if tok.kind == "cpp" and tok.text.startswith("#include"):
                rest = tok.text[len("#include"):].strip()
                if rest.startswith('"') and rest.endswith('"'):
                    name = rest[1:-1]
                    target = join(dirname(path), name)
                    if ns.exists(target):
                        out.extend(expand(target, label_for(target, True)))
                    else:
                        program.missing_includes.append(target)
                else:
                    name = rest.strip("<>")
                    target = join("/sys/include", name)
                    if ns.exists(target):
                        out.extend(expand(target, target))
                    else:
                        program.missing_includes.append(rest)
                continue
            out.append(tok)
        return out

    parser = _Parser(program, typedefs)
    for path in paths:
        parser.walk(expand(path, label_for(path, False)))
        parser.scopes = parser.scopes[:1]  # translation units share globals
    return program
