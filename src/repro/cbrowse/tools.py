"""The browser as shell commands: cpp, rcc, and cuses.

The paper's decl script runs::

    cpp $cppflags $file | help/rcc -w -g -i$id -n$line | sed 1q

so these commands reproduce that pipeline:

- :func:`cmd_cpp` inlines quoted ``#include`` files, emitting
  ``#line`` markers so coordinates survive the pipe;
- :func:`cmd_rcc` is the compiler with no code generator: it parses
  its standard input (honouring the markers), finds the declaration
  binding ``-i``\\ *identifier* as used at ``-n``\\ *line*, and prints
  its file coordinate;
- :func:`cmd_cuses` is the whole-program variant behind ``uses``:
  parse the argument files and list every reference of the identifier.
"""

from __future__ import annotations

import re

from repro.cbrowse.lexer import CToken, tokenize
from repro.cbrowse.parser import parse_program
from repro.cbrowse.symbols import Program
from repro.fs.vfs import FsError, dirname, join
from repro.shell.interp import IO, Interp

_LINE_MARKER = re.compile(r'#line\s+(\d+)\s+"([^"]*)"')


def cmd_cpp(interp: Interp, args: list[str], io: IO) -> int:
    """cpp [flags] file — inline quoted includes with #line markers.

    ``-Dx`` and ``-Idir`` flags are accepted (``-I`` extends the quoted
    include search); comments pass through untouched (the downstream
    parser skips them), so line numbers are preserved exactly.
    """
    include_dirs: list[str] = []
    files: list[str] = []
    for arg in args:
        if arg.startswith("-I") and len(arg) > 2:
            include_dirs.append(arg[2:])
        elif arg.startswith("-"):
            continue  # -D etc.: tolerated, not needed by the browser
        else:
            files.append(arg)
    if not files:
        io.stderr.append("cpp: no input file\n")
        return 1
    seen: set[str] = set()

    def emit(path: str, label: str) -> None:
        if path in seen:
            return
        seen.add(path)
        source = interp.ns.read(path)
        io.stdout.append(f'#line 1 "{label}"\n')
        out_line = 1
        for line_no, line in enumerate(source.splitlines(), start=1):
            match = re.match(r'\s*#include\s+"([^"]+)"', line)
            if match:
                name = match.group(1)
                candidates = [join(dirname(path), name)]
                candidates += [join(d, name) for d in include_dirs]
                for candidate in candidates:
                    if interp.ns.exists(candidate):
                        emit(candidate, f"./{name}")
                        break
                io.stdout.append(f'#line {line_no + 1} "{label}"\n')
                continue
            io.stdout.append(line + "\n")
            out_line += 1

    try:
        for name in files:
            path = interp._abspath(name)
            emit(path, name)
    except FsError as exc:
        io.stderr.append(f"cpp: {exc}\n")
        return 1
    return 0


def apply_line_markers(tokens: list[CToken]) -> list[CToken]:
    """Remap token coordinates according to ``#line N "file"`` markers."""
    out: list[CToken] = []
    current_file: str | None = None
    base_line = 0       # marker's N
    marker_line = 0     # physical line the marker sat on
    for tok in tokens:
        if tok.kind == "cpp":
            match = _LINE_MARKER.match(tok.text)
            if match:
                base_line = int(match.group(1))
                current_file = match.group(2)
                marker_line = tok.line
                continue
        if current_file is None:
            out.append(tok)
        else:
            mapped = base_line + (tok.line - marker_line - 1)
            out.append(CToken(tok.kind, tok.text, current_file, mapped))
    return out


def parse_marked_source(source: str) -> tuple[Program, str]:
    """Parse cpp output; returns (program, label of the main file)."""
    from repro.cbrowse.parser import _Parser  # reuse the walker

    tokens = apply_line_markers(tokenize(source, "<stdin>"))
    program = Program()
    parser = _Parser(program, set())
    parser.walk([t for t in tokens
                 if not (t.kind == "cpp" and t.text.startswith("#include"))])
    main_file = "<stdin>"
    # the main file is the label of the outermost (first) marker
    first = re.search(_LINE_MARKER, source)
    if first is not None:
        main_file = first.group(2)
    return program, main_file


def cmd_rcc(interp: Interp, args: list[str], io: IO) -> int:
    """rcc [-w] [-g] -i<identifier> -n<line> — print the declaration.

    Reads (preprocessed) C on standard input.  "This compiler has no
    code generator: it parses the program and manages the symbol
    table, and when it sees the declaration for the indicated
    identifier on the appropriate line of the file, it prints the file
    coordinates of that declaration."
    """
    ident: str | None = None
    line: int | None = None
    for arg in args:
        if arg.startswith("-i") and len(arg) > 2:
            ident = arg[2:]
        elif arg.startswith("-n") and len(arg) > 2:
            try:
                line = int(arg[2:])
            except ValueError:
                io.stderr.append(f"rcc: bad line {arg[2:]!r}\n")
                return 1
        elif arg in ("-w", "-g"):
            continue
        else:
            io.stderr.append(f"rcc: bad flag {arg}\n")
            return 1
    if ident is None:
        io.stderr.append("usage: rcc [-w] [-g] -iident [-nline]\n")
        return 1
    program, main_file = parse_marked_source(io.stdin)
    decl = program.declaration_of(ident, main_file, line)
    if decl is None:
        io.stderr.append(f"rcc: {ident}: not declared\n")
        return 1
    io.stdout.append(f"{decl.location}\n")
    return 0


def cmd_cuses(interp: Interp, args: list[str], io: IO) -> int:
    """cuses -i<identifier> [-f<file>] [-n<line>] sources...

    Parse the source files (relative to the working directory, which
    help sets to the window's context) and list every reference bound
    to the same declaration as the identifier at file:line, one
    ``file:line`` per line — Figure 10's window body.
    """
    ident: str | None = None
    file: str | None = None
    line: int | None = None
    sources: list[str] = []
    for arg in args:
        if arg.startswith("-i") and len(arg) > 2:
            ident = arg[2:]
        elif arg.startswith("-f") and len(arg) > 2:
            file = arg[2:]
        elif arg.startswith("-n") and len(arg) > 2:
            try:
                line = int(arg[2:])
            except ValueError:
                io.stderr.append(f"cuses: bad line {arg[2:]!r}\n")
                return 1
        else:
            sources.append(arg)
    if ident is None or not sources:
        io.stderr.append("usage: cuses -iident [-ffile] [-nline] sources...\n")
        return 1
    base = interp.cwd
    paths = [interp._abspath(s) for s in sources]
    try:
        program = parse_program(interp.ns, paths, base_dir=base)
    except FsError as exc:
        io.stderr.append(f"cuses: {exc}\n")
        return 1
    label = None
    if file is not None:
        full = interp._abspath(file)
        prefix = base.rstrip("/") + "/"
        label = full[len(prefix):] if full.startswith(prefix) else full
    uses = program.uses_of(ident, label, line)
    if not uses:
        io.stderr.append(f"cuses: {ident}: not found\n")
        return 1
    for use in uses:
        io.stdout.append(f"{use.location}\n")
    return 0


def cmd_cdecls(interp: Interp, args: list[str], io: IO) -> int:
    """cdecls sources... — every declaration, as ``file:line kind name``.

    Backs the ``src`` tool's overview of what a directory defines.
    """
    if not args:
        io.stderr.append("usage: cdecls sources...\n")
        return 1
    paths = [interp._abspath(s) for s in args]
    try:
        program = parse_program(interp.ns, paths, base_dir=interp.cwd)
    except FsError as exc:
        io.stderr.append(f"cdecls: {exc}\n")
        return 1
    for decl in program.decls:
        if decl.kind in ("func", "var", "typedef", "macro", "tag"):
            io.stdout.append(f"{decl.location} {decl.kind} {decl.name}\n")
    return 0


CBROWSE_COMMANDS = {
    "cpp": cmd_cpp,
    "rcc": cmd_rcc,
    "cuses": cmd_cuses,
    "cdecls": cmd_cdecls,
}
