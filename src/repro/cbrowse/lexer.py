"""A C tokenizer that remembers where every token came from.

The browser's whole value is coordinates — ``dat.h:136`` — so tokens
carry their file label and 1-based line.  Comments and whitespace are
skipped; preprocessor lines are emitted as single ``cpp`` tokens for
the include-resolver in the parser to interpret.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset("""
auto break case char const continue default do double else enum extern
float for goto if int long register return short signed sizeof static
struct switch typedef union unsigned void volatile while
""".split())

#: keywords that may begin a declaration
TYPE_KEYWORDS = frozenset("""
char const double enum extern float int long register short signed
static struct typedef union unsigned void volatile auto
""".split())

_PUNCT3 = ("<<=", ">>=", "...")
_PUNCT2 = ("->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
           "||", "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=")


@dataclass(frozen=True)
class CToken:
    """One token: kind is 'ident', 'keyword', 'number', 'string',
    'char', 'punct' or 'cpp' (a whole preprocessor line)."""

    kind: str
    text: str
    file: str
    line: int

    def is_punct(self, text: str) -> bool:
        return self.kind == "punct" and self.text == text


class CLexError(Exception):
    """Unterminated string/comment — reported with coordinates."""


def tokenize(source: str, file: str = "<stdin>") -> list[CToken]:
    """Tokenize C *source*, labelling tokens with *file*."""
    tokens: list[CToken] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                raise CLexError(f"{file}:{line}: unterminated comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch == "#" and _at_line_start(source, i):
            start = i
            while i < n and source[i] != "\n":
                if source[i] == "\\" and i + 1 < n and source[i + 1] == "\n":
                    i += 2
                    line += 1
                    continue
                i += 1
            tokens.append(CToken("cpp", source[start:i].strip(), file, line))
            continue
        if ch == '"' or ch == "'":
            start = i
            quote = ch
            i += 1
            while i < n and source[i] != quote:
                if source[i] == "\\":
                    i += 1
                if i < n and source[i] == "\n":
                    line += 1
                i += 1
            if i >= n:
                raise CLexError(f"{file}:{line}: unterminated {quote} literal")
            i += 1
            kind = "string" if quote == '"' else "char"
            tokens.append(CToken(kind, source[start:i], file, line))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(CToken(kind, text, file, line))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            i += 1
            while i < n:
                c = source[i]
                if c.isalnum() or c in "._":
                    i += 1
                elif c in "+-" and source[i - 1] in "eE":
                    i += 1
                else:
                    break
            tokens.append(CToken("number", source[start:i], file, line))
            continue
        matched = False
        for group in (_PUNCT3, _PUNCT2):
            for punct in group:
                if source.startswith(punct, i):
                    tokens.append(CToken("punct", punct, file, line))
                    i += len(punct)
                    matched = True
                    break
            if matched:
                break
        if matched:
            continue
        tokens.append(CToken("punct", ch, file, line))
        i += 1
    return tokens


def _at_line_start(source: str, i: int) -> bool:
    j = i - 1
    while j >= 0 and source[j] in " \t":
        j -= 1
    return j < 0 or source[j] == "\n"


