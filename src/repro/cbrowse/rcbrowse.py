"""A browser for a second language: rc scripts.

"Given another language, we would need only to modify the compiler to
achieve the same result.  We would not need to write any user
interface software."  This module is that sentence made executable:
a browser for *rc* built on the reproduction's own shell parser, with
no new UI code anywhere — the same Program/Decl/Use model, the same
kind of shell commands, the same window plumbing.

Declarations: ``fn name { ... }`` definitions and ``name=value``
assignments.  Uses: ``$name`` references and command words naming a
known function.  Coordinates are (file, line), derived from token
positions in the source.
"""

from __future__ import annotations

from repro.cbrowse.symbols import Decl, Program, Use
from repro.fs.namespace import Namespace
from repro.fs.vfs import FsError, join
from repro.shell import ast
from repro.shell.lexer import Backquote, Lit, VarRef
from repro.shell.parser import ParseError, parse
from repro.shell.interp import IO, Interp


def _line_of(source: str, pos: int) -> int:
    return source.count("\n", 0, pos) + 1


class _RcWalker:
    """Walks an rc AST, collecting declarations and uses."""

    def __init__(self, source: str, file: str, program: Program,
                 line_offset: int = 0, record_uses: bool = True) -> None:
        self.source = source
        self.file = file
        self.program = program
        self.line_offset = line_offset
        self.record_uses = record_uses
        self._fn_names = {d.name for d in program.decls if d.kind == "func"}
        self._var_names = {d.name for d in program.decls if d.kind == "var"}

    def _line(self, pos: int) -> int:
        return self.line_offset + _line_of(self.source, pos)

    # -- recording ----------------------------------------------------------

    def _declare(self, name: str, kind: str, pos: int) -> None:
        line = self._line(pos)
        existing = next(
            (d for d in self.program.decls
             if d.name == name and d.kind == kind), None)
        if existing is not None:
            if (self.record_uses
                    and (existing.file, existing.line) != (self.file, line)):
                self.program.uses.append(
                    Use(name, self.file, line, existing))
            return
        self.program.decls.append(Decl(name, kind, self.file, line))
        (self._fn_names if kind == "func" else self._var_names).add(name)

    def _use(self, name: str, pos: int, kinds: tuple[str, ...]) -> None:
        if not self.record_uses:
            return
        line = self._line(pos)
        decl = next((d for d in self.program.decls
                     if d.name == name and d.kind in kinds), None)
        self.program.uses.append(Use(name, self.file, line, decl))

    # -- traversal ----------------------------------------------------------------

    def walk(self, node: ast.Command | ast.Seq) -> None:
        method = getattr(self, f"_walk_{type(node).__name__.lower()}", None)
        if method is not None:
            method(node)

    def _walk_seq(self, node: ast.Seq) -> None:
        for command in node.commands:
            self.walk(command)

    def _walk_simple(self, node: ast.Simple) -> None:
        for assign in node.assigns:
            pos = assign.values[0].pos if assign.values else 0
            self._declare(assign.name, "var", pos)
            for word in assign.values:
                self._walk_word(word)
        for i, word in enumerate(node.argv):
            if i == 0:
                name = _word_literal(word)
                if name and name in self._fn_names:
                    self._use(name, word.pos, ("func",))
            self._walk_word(word)
        for redir in node.redirs:
            self._walk_word(redir.target)

    def _walk_word(self, word: ast.Word) -> None:
        for fragment in word.fragments:
            if isinstance(fragment, VarRef):
                # $1, $*, $status etc. are the shell's, not the script's
                if fragment.name.isdigit() or fragment.name in ("*", "status"):
                    continue
                self._use(fragment.name, word.pos, ("var",))
            elif isinstance(fragment, Backquote):
                try:
                    tree = parse(fragment.source)
                except ParseError:
                    continue
                sub = _RcWalker(fragment.source, self.file, self.program,
                                self._line(fragment.pos) - 1)
                sub.walk(tree)

    def _walk_block(self, node: ast.Block) -> None:
        self.walk(node.body)
        for redir in node.redirs:
            self._walk_word(redir.target)

    def _walk_pipeline(self, node: ast.Pipeline) -> None:
        for stage in node.stages:
            self.walk(stage)

    def _walk_not(self, node: ast.Not) -> None:
        self.walk(node.cmd)

    def _walk_andor(self, node: ast.AndOr) -> None:
        self.walk(node.first)
        for _, command in node.rest:
            self.walk(command)

    def _walk_if(self, node: ast.If) -> None:
        self.walk(node.cond)
        self.walk(node.body)

    def _walk_ifnot(self, node: ast.IfNot) -> None:
        self.walk(node.body)

    def _walk_for(self, node: ast.For) -> None:
        self._declare(node.var, "var", 0)
        for word in node.words or []:
            self._walk_word(word)
        self.walk(node.body)

    def _walk_while(self, node: ast.While) -> None:
        self.walk(node.cond)
        self.walk(node.body)

    def _walk_switch(self, node: ast.Switch) -> None:
        self._walk_word(node.subject)
        for case in node.cases:
            for pattern in case.patterns:
                self._walk_word(pattern)
            self.walk(case.body)

    def _walk_fndef(self, node: ast.FnDef) -> None:
        pos = self.source.find(f"fn {node.name}")
        self._declare(node.name, "func", max(pos, 0))
        if node.body is not None:
            self.walk(node.body.body)


def _word_literal(word: ast.Word) -> str:
    parts = []
    for fragment in word.fragments:
        if not isinstance(fragment, Lit):
            return ""
        parts.append(fragment.text)
    return "".join(parts)


def parse_rc_program(ns: Namespace, paths: list[str],
                     base_dir: str | None = None) -> Program:
    """Browse a set of rc scripts as one program."""
    from repro.fs.vfs import dirname
    if not paths:
        return Program()
    if base_dir is None:
        base_dir = dirname(paths[0])
    program = Program()
    prefix = base_dir.rstrip("/") + "/"
    parsed: list[tuple[str, str, object]] = []
    for path in paths:
        label = path[len(prefix):] if path.startswith(prefix) else path
        source = ns.read(path)
        try:
            tree = parse(source)
        except ParseError:
            program.missing_includes.append(path)
            continue
        parsed.append((source, label, tree))
    # two passes so forward references across files still bind:
    # declarations first, then uses
    for source, label, tree in parsed:
        _RcWalker(source, label, program, record_uses=False).walk(tree)
    for source, label, tree in parsed:
        _RcWalker(source, label, program).walk(tree)
    return program


# -- shell commands -------------------------------------------------------------


def cmd_rdecl(interp: Interp, args: list[str], io: IO) -> int:
    """rdecl -i<name> scripts... — where an rc function/var is defined."""
    name = None
    sources: list[str] = []
    for arg in args:
        if arg.startswith("-i") and len(arg) > 2:
            name = arg[2:]
        else:
            sources.append(arg)
    if name is None or not sources:
        io.stderr.append("usage: rdecl -iname scripts...\n")
        return 1
    paths = [interp._abspath(s) for s in sources]
    try:
        program = parse_rc_program(interp.ns, paths, base_dir=interp.cwd)
    except FsError as exc:
        io.stderr.append(f"rdecl: {exc}\n")
        return 1
    decl = program.declaration_of(name)
    if decl is None:
        io.stderr.append(f"rdecl: {name}: not declared\n")
        return 1
    io.stdout.append(f"{decl.location}\n")
    return 0


def cmd_ruses(interp: Interp, args: list[str], io: IO) -> int:
    """ruses -i<name> scripts... — every reference to an rc name."""
    name = None
    sources: list[str] = []
    for arg in args:
        if arg.startswith("-i") and len(arg) > 2:
            name = arg[2:]
        else:
            sources.append(arg)
    if name is None or not sources:
        io.stderr.append("usage: ruses -iname scripts...\n")
        return 1
    paths = [interp._abspath(s) for s in sources]
    try:
        program = parse_rc_program(interp.ns, paths, base_dir=interp.cwd)
    except FsError as exc:
        io.stderr.append(f"ruses: {exc}\n")
        return 1
    uses = program.uses_of(name)
    if not uses:
        io.stderr.append(f"ruses: {name}: not found\n")
        return 1
    for use in uses:
        io.stdout.append(f"{use.location}\n")
    return 0


RCBROWSE_COMMANDS = {
    "help-rdecl": cmd_rdecl,
    "help-ruses": cmd_ruses,
}
