"""The program database: declarations, uses, and the browser queries.

A :class:`Program` is what parsing a set of sources produces.  Its two
queries are exactly the two tools the paper demonstrates:

- :meth:`Program.declaration_of` — given an identifier and the place
  the user is pointing, the declaration that binds it there (``decl``);
- :meth:`Program.uses_of` — every reference bound to the same
  declaration (``uses``), which is how the browser shows four
  occurrences of the global ``n`` where grep would show "every
  occurrence of the letter n in the program".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Decl:
    """A declaration: where *name* is introduced.

    Kinds: ``var`` (file-scope), ``func``, ``param``, ``local``,
    ``typedef``, ``tag`` (struct/union/enum), ``member``.
    """

    name: str
    kind: str
    file: str
    line: int
    scope: int = 0      # id of the scope it was declared in

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass(frozen=True)
class Use:
    """One occurrence of an identifier, bound to a declaration (or not)."""

    name: str
    file: str
    line: int
    decl: Decl | None

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass
class Program:
    """Everything the stripped compiler learned about the sources."""

    decls: list[Decl] = field(default_factory=list)
    uses: list[Use] = field(default_factory=list)
    missing_includes: list[str] = field(default_factory=list)

    # -- queries -----------------------------------------------------------

    def declaration_of(self, name: str, file: str | None = None,
                       line: int | None = None) -> Decl | None:
        """The declaration binding *name* at (file, line).

        When the position is known, prefer the binding recorded for a
        use at that exact spot (scope-accurate); pointing *at* a
        declaration returns it.  With no position, fall back to the
        outermost declaration of that name.
        """
        if file is not None and line is not None:
            for decl in self.decls:
                if decl.name == name and decl.file == file and decl.line == line:
                    return decl
            for use in self.uses:
                if use.name == name and use.file == file and use.line == line:
                    return use.decl
        candidates = [d for d in self.decls if d.name == name]
        if not candidates:
            return None
        ranking = {"var": 0, "func": 0, "typedef": 0, "tag": 1,
                   "param": 2, "local": 2, "member": 3}
        return min(candidates, key=lambda d: (ranking.get(d.kind, 4), d.line))

    def uses_of(self, name: str, file: str | None = None,
                line: int | None = None) -> list[Use]:
        """Every reference bound to the same declaration as *name* at
        (file, line) — including the declaration site itself, listed
        as a use, since the paper's Figure 10 shows ``./dat.h:136``."""
        target = self.declaration_of(name, file, line)
        if target is None:
            return []
        out = [Use(target.name, target.file, target.line, target)]
        seen = {(target.file, target.line)}
        for use in self.uses:
            if use.decl == target and (use.file, use.line) not in seen:
                seen.add((use.file, use.line))
                out.append(use)
        out.sort(key=lambda u: (u.file, u.line))
        return out

    def declarations_in(self, file: str) -> list[Decl]:
        """All declarations made in *file* (the ``src`` tool's view)."""
        return [d for d in self.decls if d.file == file]

    def unresolved(self) -> list[Use]:
        """Uses that bound to nothing (undeclared identifiers)."""
        return [u for u in self.uses if u.decl is None]

    def merge(self, other: "Program") -> None:
        """Fold another translation unit's results in."""
        self.decls.extend(other.decls)
        self.uses.extend(other.uses)
        self.missing_includes.extend(other.missing_includes)
