"""Hosting N concurrent help sessions in one process.

The paper's ``help`` serves one user; the ROADMAP's north star serves
many.  :class:`SessionHost` is the step between: it accepts mux
connections (in-memory pipes or TCP) on a shared
:class:`~repro.fs.mux.WireServer`, and builds one fully isolated world
per attach — its own namespace, its own :class:`~repro.core.help.Help`
with a private :class:`~repro.metrics.MetricsRegistry` ledger, its own
write-ahead journal — wrapped in a :class:`HostedSession` whose file
tree is what the connection sees::

    id          the session's name
    screen      read: the rendered screen (golden-comparable)
    input       write: one journal input record per line, applied live
    journal     read: the session's record kinds, in order
    metrics     read: the session's counter ledger, sorted
    mnt/help/   the session's own /mnt/help window server
    srv/sessions  host-level control: list, stat <id>, evict <id>

The ``input`` grammar is PR 4's journal record payload — ``<kind>
<token>...`` with each token encoded by :func:`repro.journal.record.enc`
— so anything a journal can replay, a remote client can drive.

Isolation is structural: the wire layer binds each connection's
session registry around every RPC it serves, each session serializes
on its own lock, and a dropped connection tears its session down.  The
host keeps its own private ledger (``host.sessions.*``); because no
session work is ever done under the host's registry, :meth:`audit` can
assert that the host ledger holds **zero** session-scoped counters —
any nonzero value is cross-session bleed by construction.
"""

from __future__ import annotations

import threading
import time

from repro.core.render import render_screen
from repro.fs.errors import Busy, Closed, Invalid, NotFound
from repro.fs.mux import WireServer, channel_pair
from repro.fs.server import SynthDir, SynthFile, SynthSession
from repro.journal.log import Journal
from repro.journal.record import APPLY_KINDS, Record, enc
from repro.journal.recorder import apply_record, attach
from repro.metrics.counter import MetricsRegistry, current_registry

JOURNAL_PATH = "/tmp/session.journal"

# Counter prefixes that only session work produces.  The host audit
# asserts its own ledger holds none of them: the wire layer binds each
# session's registry around that session's RPCs, so a single increment
# under one of these prefixes landing in the host ledger means some
# session's work escaped its binding — bleed.
SESSION_PREFIXES = ("fs.", "journal.", "layout.", "render.", "replay.",
                    "session.", "frame.", "text.")


def input_line(kind: str, fields: tuple | list) -> str:
    """Serialize one record for a session's ``input`` file."""
    if kind not in APPLY_KINDS:
        raise ValueError(f"{kind!r} is not an input record kind")
    tokens = " ".join(enc(str(f)) for f in fields)
    return f"{kind} {tokens}\n" if tokens else f"{kind}\n"


class HostedSession:
    """One attached session: a private world served as a file tree."""

    def __init__(self, host: "SessionHost", session_id: str,
                 uname: str, journal_text: str | None = None) -> None:
        self.host = host
        self.id = session_id
        self.uname = uname
        self.metrics = MetricsRegistry(f"session:{session_id}")
        self.oplock = threading.RLock()
        self.closed = False
        # A parked session was adopted from a draining shard and waits
        # for its owner to re-attach under the same name.
        self.parked = False
        # Everything the world's construction touches — fs traffic,
        # layout caching, the journal's genesis — belongs to this
        # session's ledger, not to whoever called attach.
        with self.metrics.activate():
            self.system = host._build(session_id, uname, self.metrics)
            self.journal = None
            self.recorder = None
            if journal_text is not None:
                # Migration: rebuild the world from the source shard's
                # journal (snapshot group + suffix, PR 4 recovery).
                from repro.journal.recovery import recover
                recover(self.system.help, journal_text)
            if host.record:
                self.journal = Journal.create(self.system.ns, JOURNAL_PATH,
                                              metrics=self.metrics)
                if journal_text is not None:
                    from repro.journal.record import scan_text
                    scanned = scan_text(journal_text).records
                    if scanned:
                        # sequence numbering survives the migration
                        self.journal.seq = scanned[-1].seq
                self.recorder = attach(self.system.help, self.journal,
                                       context=self.system.context)
                if journal_text is not None:
                    # re-found the journal on a snapshot of the adopted
                    # state; the next drain starts from here
                    self.recorder.compact()
        self.root = self._build_root()
        # a per-session fault schedule wraps only this session's tree
        self.fault_plan = (host.plan_for(session_id)
                           if host.plan_for is not None else None)
        if self.fault_plan is not None:
            from repro.fs.faults import wrap
            self.system.context.fault_plan = self.fault_plan
            self.root = wrap(self.root, self.fault_plan, base="/")

    # -- the served tree --------------------------------------------------

    def _build_root(self) -> SynthDir:
        mnt = SynthDir("mnt", list_fn=lambda: [self.system.helpfs.root])
        srv = SynthDir("srv", list_fn=lambda: [self.host.control_file()])
        files = [
            SynthFile("id", read_fn=self._read_id),
            SynthFile("screen", read_fn=self._read_screen),
            SynthFile("input", write_fn=self._input_line),
            SynthFile("journal", read_fn=self._read_journal),
            SynthFile("metrics", read_fn=self._read_metrics),
            mnt, srv,
        ]
        return SynthDir(self.id, list_fn=lambda: list(files))

    def _check(self, op: str) -> None:
        if self.closed:
            raise Closed(f"session {self.id} is gone",
                         path=f"session/{self.id}", op=op)

    def _read_id(self) -> str:
        self._check("read")
        return f"{self.id}\n"

    def _read_screen(self) -> str:
        self._check("read")
        return render_screen(self.system.help)

    def _read_journal(self) -> str:
        self._check("read")
        if self.journal is None:
            return ""
        return "".join(r.kind + "\n" for r in self.journal.records)

    def _read_metrics(self) -> str:
        self._check("read")
        return "".join(f"{name} {value}\n" for name, value
                       in sorted(self.metrics.counters().items()))

    def _input_line(self, line: str) -> None:
        """Apply one ``<kind> <token>...`` record to the live session."""
        self._check("write")
        parts = line.rstrip("\n").split(" ")
        kind = parts[0]
        if kind not in APPLY_KINDS:
            raise Invalid(f"unknown input kind {kind!r}",
                          path=f"session/{self.id}/input", op="write")
        record = Record(0, kind, " ".join(parts[1:]))
        start = time.perf_counter()
        apply_record(self.system.help, record)
        self.metrics.observe("session.apply_us",
                             (time.perf_counter() - start) * 1e6)
        self.metrics.incr("session.input.applied")

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Retire the session: idempotent, ledger handed to the host."""
        if self.closed:
            return
        self.closed = True
        if self.recorder is not None:
            with self.metrics.activate():
                self.recorder._flush()
        self.host._retire(self)


class SessionHost:
    """N isolated help sessions behind one wire server."""

    def __init__(self, *, width: int = 100, height: int = 40,
                 record: bool = True, extra_tools: bool = False,
                 metrics: MetricsRegistry | None = None,
                 plan_for=None, id_prefix: str = "s",
                 max_outstanding: int = 64, workers: int = 4) -> None:
        self.width = width
        self.height = height
        self.record = record
        self.extra_tools = extra_tools
        # plan_for(session_id) -> FaultPlan | None: a deterministic
        # fault schedule for that one session's served tree
        self.plan_for = plan_for
        # anonymous attaches get ids f"{id_prefix}{n}"; a shard router
        # gives each shard its own prefix so ids never collide
        self.id_prefix = id_prefix
        # a ShardRouter installs itself here to federate srv/sessions
        self.directory: "SessionDirectory | None" = None
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry("host")
        self.sessions: dict[str, HostedSession] = {}
        self._retired: list[tuple[str, MetricsRegistry]] = []
        self._lock = threading.Lock()
        self._next = 1
        self.server = WireServer(metrics=self.metrics,
                                 session_factory=self._make_session,
                                 max_outstanding=max_outstanding,
                                 workers=workers)

    # -- accepting connections --------------------------------------------

    def listen(self, host: str = "127.0.0.1",
               port: int = 0) -> tuple[str, int]:
        """Accept TCP attaches; returns the bound (host, port)."""
        return self.server.listen(host, port)

    def pipe(self, max_chunk: int | None = None):
        """An in-memory attach: returns the client end of a fresh pipe."""
        client_end, server_end = channel_pair(max_chunk)
        self.server.serve(server_end)
        return client_end

    # -- session lifecycle ------------------------------------------------

    def _build(self, session_id: str, uname: str,
               metrics: MetricsRegistry):
        from repro.tools.install import build_system
        return build_system(width=self.width, height=self.height,
                            user=uname or "rob",
                            extra_tools=self.extra_tools,
                            session_id=session_id, metrics=metrics)

    def _make_session(self, uname: str, aname: str) -> HostedSession:
        with self._lock:
            session_id = aname or f"{self.id_prefix}{self._next}"
            self._next += 1
            existing = self.sessions.get(session_id)
            if existing is not None and existing.parked:
                # a migrated session waiting for its owner: claim it
                existing.parked = False
                self.metrics.incr("host.sessions.claimed")
                return existing
            if session_id in self.sessions:
                raise Busy(f"session {session_id!r} already attached",
                           path=f"session/{session_id}", op="attach")
            # reserve the name before the (slow) world build
            self.sessions[session_id] = None  # type: ignore[assignment]
        try:
            session = HostedSession(self, session_id, uname)
        except BaseException:
            with self._lock:
                self.sessions.pop(session_id, None)
            raise
        with self._lock:
            self.sessions[session_id] = session
        self.metrics.incr("host.sessions.opened")
        return session

    def adopt(self, session_id: str, uname: str,
              journal_text: str | None) -> HostedSession:
        """Take over a session migrated from another shard.

        Rebuilds the world from *journal_text* (the source shard's
        snapshot + journal suffix) and parks the result: the next
        Tattach naming *session_id* claims it instead of building a
        fresh world, so the migration is invisible to the client apart
        from the reconnect.
        """
        with self._lock:
            if session_id in self.sessions:
                raise Busy(f"session {session_id!r} already attached",
                           path=f"session/{session_id}", op="adopt")
            self.sessions[session_id] = None  # type: ignore[assignment]
        try:
            session = HostedSession(self, session_id, uname,
                                    journal_text=journal_text)
        except BaseException:
            with self._lock:
                self.sessions.pop(session_id, None)
            raise
        session.parked = True
        with self._lock:
            self.sessions[session_id] = session
        self.metrics.incr("host.sessions.opened")
        self.metrics.incr("host.sessions.adopted")
        return session

    def _retire(self, session: HostedSession) -> None:
        with self._lock:
            self.sessions.pop(session.id, None)
            self._retired.append((session.id, session.metrics))
        self.metrics.incr("host.sessions.closed")

    def evict(self, session_id: str) -> None:
        """Force one session out; its connection sees ``Closed``."""
        with self._lock:
            session = self.sessions.get(session_id)
        if session is None:
            raise NotFound(path=f"session/{session_id}", op="evict")
        self.metrics.incr("host.sessions.evicted")
        session.close()

    def close(self) -> None:
        """Stop serving: drop every connection, retire every session."""
        self.server.close()
        with self._lock:
            live = list(self.sessions.values())
        for session in live:
            if session is not None:
                session.close()

    def __enter__(self) -> "SessionHost":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the /srv/sessions control file -----------------------------------

    def control_file(self) -> SynthFile:
        return SynthFile("sessions", open_fn=self._control_session)

    def _control_session(self, mode: str) -> SynthSession:
        focus: dict[str, str | None] = {"id": None}
        # with a router installed, srv/sessions spans every shard
        directory = self.directory if self.directory is not None else self

        def read_fn() -> str:
            if focus["id"] is not None:
                return directory._stat_text(focus["id"])
            return directory._list_text()

        def write_fn(line: str) -> None:
            words = line.split()
            if len(words) == 2 and words[0] == "stat":
                if not directory._knows(words[1]):
                    raise NotFound(path=f"session/{words[1]}", op="stat")
                focus["id"] = words[1]
            elif len(words) == 2 and words[0] == "evict":
                directory.evict(words[1])
            else:
                raise Invalid(f"bad control message {line.strip()!r}",
                              path="srv/sessions", op="write")

        return SynthSession(mode, read_fn, write_fn, name="srv/sessions")

    def _knows(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self.sessions

    def _list_text(self) -> str:
        with self._lock:
            live = sorted((s for s in self.sessions.values()
                           if s is not None), key=lambda s: s.id)
        return "".join(
            f"{s.id}\t{s.uname}\twindows={len(s.system.help.windows)}"
            f"\trecords={0 if s.journal is None else s.journal.seq}\n"
            for s in live)

    def _stat_text(self, session_id: str) -> str:
        with self._lock:
            session = self.sessions.get(session_id)
        if session is None:
            return f"id {session_id}\nstate gone\n"
        h = session.system.help
        return (f"id {session.id}\nuser {session.uname}\nstate live\n"
                f"windows {len(h.windows)}\n"
                f"records {0 if session.journal is None else session.journal.seq}\n"
                f"screen {h.screen.rect.width}x{h.screen.rect.height}\n")

    # -- the ledger -------------------------------------------------------

    def session_ledger(self) -> tuple[int, int]:
        """(sessions opened, sessions closed) — same shape a router sums."""
        return (self.metrics.counter("host.sessions.opened"),
                self.metrics.counter("host.sessions.closed"))

    def audit(self) -> list[str]:
        """Check the host ledger; returns problems (empty = clean).

        Balances sessions opened against closed + live, and asserts the
        host's own registry carries **no** session-scoped counters —
        session work always runs under the session's registry, so any
        such counter here is cross-session bleed.  The bleed total is
        recorded as ``host.sessions.bleed`` (0 when clean) so the bench
        ledger always carries an explicit verdict.
        """
        problems: list[str] = []
        opened = self.metrics.counter("host.sessions.opened")
        closed = self.metrics.counter("host.sessions.closed")
        with self._lock:
            live = sum(1 for s in self.sessions.values() if s is not None)
        if opened != closed + live:
            problems.append(f"session ledger unbalanced: opened {opened} "
                            f"!= closed {closed} + live {live}")
        leaked = 0
        for prefix in SESSION_PREFIXES:
            for name, value in sorted(self.metrics.counters(prefix).items()):
                problems.append(f"session counter {name}={value} leaked "
                                f"into the host ledger")
                leaked += abs(value)
        self.metrics.incr("host.sessions.bleed", leaked)
        return problems

    def drain(self, into: MetricsRegistry | None = None) -> MetricsRegistry:
        """Fold every ledger (host, retired, live) into *into*.

        Benches call this after closing their connections so the
        process-default registry — and therefore ``BENCH_perf.json`` —
        carries the complete cross-session ledger (``fs.open ==
        fs.close`` across every session hosted, ``host.sessions.*``
        balance) for :mod:`repro.tools.benchgate` to audit.
        """
        target = into if into is not None else current_registry()
        target.merge(self.metrics)
        with self._lock:
            retired = list(self._retired)
            live = [s for s in self.sessions.values() if s is not None]
        for _sid, registry in retired:
            target.merge(registry)
        for session in live:
            target.merge(session.metrics)
        return target
