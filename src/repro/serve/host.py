"""Hosting N concurrent help sessions in one process.

The paper's ``help`` serves one user; the ROADMAP's north star serves
many.  :class:`SessionHost` is the step between: it accepts mux
connections (in-memory pipes or TCP) on a shared
:class:`~repro.fs.mux.WireServer`, and builds one fully isolated world
per attach — its own namespace, its own :class:`~repro.core.help.Help`
with a private :class:`~repro.metrics.MetricsRegistry` ledger, its own
write-ahead journal — wrapped in a :class:`HostedSession` whose file
tree is what the connection sees::

    id          the session's name
    screen      read: the rendered screen (golden-comparable)
    input       write: one journal input record per line, applied live
    journal     read: the session's record kinds, in order
    metrics     read: the session's counter ledger, sorted
    mnt/help/   the session's own /mnt/help window server
    srv/sessions  host-level control: list, stat <id>, evict <id>,
                  hibernate <id>

The ``input`` grammar is PR 4's journal record payload — ``<kind>
<token>...`` with each token encoded by :func:`repro.journal.record.enc`
— so anything a journal can replay, a remote client can drive.

Isolation is structural: the wire layer binds each connection's
session registry around every RPC it serves, each session serializes
on its own lock, and a dropped connection tears its session down.  The
host keeps its own private ledger (``host.sessions.*``); because no
session work is ever done under the host's registry, :meth:`audit` can
assert that the host ledger holds **zero** session-scoped counters —
any nonzero value is cross-session bleed by construction.

**Hibernation** is the capacity story on top: give the host a memory
budget (``max_live`` resident worlds) and idle sessions cost disk, not
RAM.  :meth:`SessionHost.hibernate` flushes and compacts a session's
journal (PR 4's snapshot+truncate) into one serialized text, spools it
to a disk file, and tears the world down; the session survives as an
entry in the ``hibernated`` table.  The next ``Tattach`` naming that
session **wakes** it: the snapshot text rehydrates a fresh world
through :func:`repro.journal.recovery.recover` (the same path shard
migration uses), byte-identically, metered into the ``host.wake_us``
histograms.  With a budget set, sessions past the least-recently-used
line are hibernated to make room for new attaches, and a dropped
connection hibernates its session instead of retiring it — a
disconnected user becomes a nominal one, parked on disk.
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile
import threading
import time
from urllib.parse import quote

from repro.core.render import render_screen
from repro.fs.errors import Busy, Closed, FsError, Invalid, IOFault, NotFound
from repro.fs.mux import WireServer, channel_pair
from repro.fs.server import SynthDir, SynthFile, SynthSession
from repro.journal.log import Journal
from repro.journal.record import APPLY_KINDS, Record, enc
from repro.journal.recorder import apply_record, attach
from repro.metrics.counter import MetricsRegistry, current_registry


def journal_path(session_id: str) -> str:
    """The session's own journal file inside its namespace.

    Per-session (not one shared ``/tmp/session.journal``) so two
    sessions' hibernation snapshots can never collide on one
    namespace-external name when their journal texts are spooled,
    diffed, or carried between shards.
    """
    return f"/tmp/session.{session_id}.journal"


# Counter prefixes that only session work produces.  The host audit
# asserts its own ledger holds none of them: the wire layer binds each
# session's registry around that session's RPCs, so a single increment
# under one of these prefixes landing in the host ledger means some
# session's work escaped its binding — bleed.
SESSION_PREFIXES = ("fs.", "journal.", "layout.", "render.", "replay.",
                    "session.", "frame.", "text.")


def kind_class(kind: str) -> str:
    """The op class of an input record kind, for histogram tagging.

    ``session.apply_us`` alone says how slow *applying input* is;
    tagged buckets (``session.apply_us.exec`` vs ``.mouse``) say which
    class of input owns the tail, which is what a latency SLO needs to
    name before it can be budgeted.
    """
    if kind.startswith("mouse-"):
        return "mouse"
    if kind in ("type", "select"):
        return "key"
    if kind in ("exec", "builtin"):
        return "exec"
    return "window"  # open/newwin/close/scroll/replace-body/resize


def input_line(kind: str, fields: tuple | list) -> str:
    """Serialize one record for a session's ``input`` file."""
    if kind not in APPLY_KINDS:
        raise ValueError(f"{kind!r} is not an input record kind")
    tokens = " ".join(enc(str(f)) for f in fields)
    return f"{kind} {tokens}\n" if tokens else f"{kind}\n"


class HostedSession:
    """One attached session: a private world served as a file tree."""

    def __init__(self, host: "SessionHost", session_id: str,
                 uname: str, journal_text: str | None = None) -> None:
        self.host = host
        self.id = session_id
        self.uname = uname
        self.metrics = MetricsRegistry(f"session:{session_id}")
        self.oplock = threading.RLock()
        self.closed = False
        # A parked session was adopted from a draining shard and waits
        # for its owner to re-attach under the same name.
        self.parked = False
        # LRU clock for the hibernation budget: the moment of the last
        # applied input (or the build, until one arrives).
        self.last_input = time.monotonic()
        # Everything the world's construction touches — fs traffic,
        # layout caching, the journal's genesis — belongs to this
        # session's ledger, not to whoever called attach.
        # True while a hibernate is tearing this world down: the
        # session survives as a spooled snapshot, so the retire must
        # NOT ship a replica drop
        self._hibernating = False
        with self.metrics.activate():
            self.system = host._build(session_id, uname, self.metrics)
            self.journal = None
            self.recorder = None
            if journal_text is not None:
                # Migration or wake: rebuild the world from the
                # serialized journal (snapshot group + suffix, PR 4
                # recovery).
                from repro.journal.recovery import recover
                recovery = recover(self.system.help, journal_text)
            if host.record:
                self.journal = Journal.create(self.system.ns,
                                              journal_path(session_id),
                                              metrics=self.metrics)
                if journal_text is not None:
                    from repro.journal.record import scan_text
                    scanned = scan_text(journal_text).records
                    if scanned:
                        # sequence numbering survives the migration
                        self.journal.seq = scanned[-1].seq
                self.recorder = attach(self.system.help, self.journal,
                                       context=self.system.context)
                if journal_text is not None:
                    # the resume index and the journal survive the
                    # rebuild together; re-found the journal on a
                    # snapshot of the adopted state — the next drain
                    # or hibernate starts here
                    self.recorder.inputs_recorded = recovery.inputs
                    self.recorder.compact()
            feed = host.replica
            if feed is not None and self.journal is not None:
                # one full reset puts the standby at this exact journal
                # (genesis or adopted snapshot); every later flush and
                # compaction ships through the durability hook, so in
                # sync mode a write is acked only once the standby
                # holds its record
                sink = self.journal.sink
                feed.ship(self.id, "reset", self.journal.seq,
                          sink.ns.read(sink.path), meta=self.uname)
                self.journal.on_durable = self._ship_durable
        self.root = self._build_root()
        # a per-session fault schedule wraps only this session's tree
        self.fault_plan = (host.plan_for(session_id)
                           if host.plan_for is not None else None)
        if self.fault_plan is not None:
            from repro.fs.faults import wrap
            self.system.context.fault_plan = self.fault_plan
            self.root = wrap(self.root, self.fault_plan, base="/")

    # -- the served tree --------------------------------------------------

    def _ship_durable(self, event: str, text: str, seq: int) -> None:
        """The journal's on_durable hook: mirror the sink write."""
        feed = self.host.replica
        if feed is None:
            return
        if event == "append":
            feed.ship(self.id, "append", seq, text)
        else:  # truncate: compaction replaced the whole file
            feed.ship(self.id, "reset", seq, text, meta=self.uname)

    def _build_root(self) -> SynthDir:
        mnt = SynthDir("mnt", list_fn=lambda: [self.system.helpfs.root])
        srv = SynthDir("srv", list_fn=lambda: self.host.srv_files())
        files = [
            SynthFile("id", read_fn=self._read_id),
            SynthFile("screen", read_fn=self._read_screen),
            SynthFile("input", write_fn=self._input_line),
            SynthFile("inputs", read_fn=self._read_inputs),
            SynthFile("journal", read_fn=self._read_journal),
            SynthFile("metrics", read_fn=self._read_metrics),
            mnt, srv,
        ]
        return SynthDir(self.id, list_fn=lambda: list(files))

    def _check(self, op: str) -> None:
        if self.closed:
            raise Closed(f"session {self.id} is gone",
                         path=f"session/{self.id}", op=op)

    def _read_id(self) -> str:
        self._check("read")
        return f"{self.id}\n"

    def _read_screen(self) -> str:
        self._check("read")
        return render_screen(self.system.help)

    def _read_inputs(self) -> str:
        """The session's input-record count — the replication resume
        index: after failover a client reads this to learn exactly how
        many of its writes the promoted journal holds."""
        self._check("read")
        if self.recorder is not None:
            return f"{self.recorder.inputs_recorded}\n"
        return f"{self.metrics.counter('session.input.applied')}\n"

    def _read_journal(self) -> str:
        self._check("read")
        if self.journal is None:
            return ""
        return "".join(r.kind + "\n" for r in self.journal.records)

    def _read_metrics(self) -> str:
        self._check("read")
        return "".join(f"{name} {value}\n" for name, value
                       in sorted(self.metrics.counters().items()))

    def _input_line(self, line: str) -> None:
        """Apply one ``<kind> <token>...`` record to the live session."""
        self._check("write")
        parts = line.rstrip("\n").split(" ")
        kind = parts[0]
        if kind not in APPLY_KINDS:
            raise Invalid(f"unknown input kind {kind!r}",
                          path=f"session/{self.id}/input", op="write")
        record = Record(0, kind, " ".join(parts[1:]))
        start = time.perf_counter()
        apply_record(self.system.help, record)
        self.last_input = time.monotonic()
        self.metrics.observe_op("session.apply_us", kind_class(kind),
                                (time.perf_counter() - start) * 1e6)
        self.metrics.incr("session.input.applied")

    # -- lifecycle --------------------------------------------------------

    def close(self) -> bool:
        """Retire the session; True when **this** call retired it.

        Idempotent: a second close (an evict racing a connection drop,
        a teardown after a hibernate) returns False and touches
        nothing, so callers that keep a ledger — ``evict`` bumps
        ``host.sessions.evicted`` — only count the close that
        actually happened.
        """
        if self.closed:
            return False
        self.closed = True
        if self.recorder is not None:
            with self.metrics.activate():
                self.recorder._flush()
        self.host._retire(self)
        return True

    def detach(self) -> None:
        """The connection dropped: park the session or retire it.

        With a hibernation budget on the host, a disconnect turns the
        session nominal — compacted to disk, woken by the owner's next
        attach.  Without one (or for an unjournalled world, or during
        host shutdown) the drop retires the session as before.
        """
        if self.closed:
            return
        if (self.host.max_live is not None and self.recorder is not None
                and not self.host._closing):
            try:
                self.host.hibernate(self.id)
                return
            except FsError:
                pass  # raced an evict or a shutdown: fall through
        self.close()


class SessionHost:
    """N isolated help sessions behind one wire server."""

    def __init__(self, *, width: int = 100, height: int = 40,
                 record: bool = True, extra_tools: bool = False,
                 metrics: MetricsRegistry | None = None,
                 plan_for=None, id_prefix: str = "s",
                 max_outstanding: int = 64, workers: int = 4,
                 max_live: int | None = None,
                 spool: str | pathlib.Path | None = None) -> None:
        self.width = width
        self.height = height
        self.record = record
        self.extra_tools = extra_tools
        # plan_for(session_id) -> FaultPlan | None: a deterministic
        # fault schedule for that one session's served tree
        self.plan_for = plan_for
        # anonymous attaches get ids f"{id_prefix}{n}"; a shard router
        # gives each shard its own prefix so ids never collide
        self.id_prefix = id_prefix
        # a ShardRouter installs itself here to federate srv/sessions
        self.directory: "SessionDirectory | None" = None
        # the memory budget: at most max_live worlds resident; the
        # least-recently-used sessions beyond it hibernate to disk
        if max_live is not None and max_live < 1:
            raise ValueError("max_live must be at least 1")
        self.max_live = max_live
        self._spool = pathlib.Path(spool) if spool is not None else None
        self._spool_owned = False
        # session id -> spool file holding its compacted journal text
        self.hibernated: dict[str, pathlib.Path] = {}
        self._hibernated_uname: dict[str, str] = {}
        self.live_peak = 0
        self._closing = False
        self._killed = False
        # a ReplicaFeed shipping every session's journal to a standby
        # (installed via attach_replica before the first attach), and
        # an optional status callback a standby installs so its
        # srv/replica file reports the standby side
        self.replica = None
        self.replica_status = None
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry("host")
        self.sessions: dict[str, HostedSession] = {}
        # retired sessions' ledgers, folded as they retire — a list
        # would grow without bound under a hibernation churn of
        # thousands of nominal sessions
        self._retired = MetricsRegistry("host:retired")
        self._lock = threading.Lock()
        self._next = 1
        self.server = WireServer(metrics=self.metrics,
                                 session_factory=self._make_session,
                                 max_outstanding=max_outstanding,
                                 workers=workers)

    # -- accepting connections --------------------------------------------

    def listen(self, host: str = "127.0.0.1",
               port: int = 0) -> tuple[str, int]:
        """Accept TCP attaches; returns the bound (host, port)."""
        return self.server.listen(host, port)

    def pipe(self, max_chunk: int | None = None):
        """An in-memory attach: returns the client end of a fresh pipe."""
        client_end, server_end = channel_pair(max_chunk)
        self.server.serve(server_end)
        return client_end

    # -- replication ------------------------------------------------------

    def attach_replica(self, feed) -> None:
        """Ship every session's journal to *feed* from now on.

        Install before the first attach: a session ships one full
        reset at construction and every durable write thereafter, so
        only sessions built after this call are replicated.
        """
        self.replica = feed

    def _ship_drop(self, session_id: str) -> None:
        """Tell the standby *session_id* is gone — best-effort: a
        standby that misses a drop merely tracks a dead session."""
        feed = self.replica
        if feed is None:
            return
        try:
            # connection-teardown threads have no metrics context; a
            # stopped feed's Closed must book to the feed, not the
            # process default registry
            with feed.metrics.activate():
                feed.ship(session_id, "drop", 0)
        except FsError:
            pass

    def _ship_state(self, session_id: str, state: str) -> None:
        """Mirror a live/parked transition — best-effort: the state
        only splits the standby's promoted live/parked counters."""
        feed = self.replica
        if feed is None:
            return
        try:
            with feed.metrics.activate():
                feed.ship(session_id, "state", 0, meta=state)
        except FsError:
            pass

    def kill(self) -> None:
        """Crash this host: sever every connection, tear down nothing.

        The in-process stand-in for SIGKILL — no fid closes, no
        session close/hibernate, no replica drops; clients see torn
        connections and the standby sees the feed go silent.  Used by
        chaos tests; a killed host must never be reused.
        """
        self._killed = True
        self._closing = True
        self.replica = None
        self.server.kill()

    # -- session lifecycle ------------------------------------------------

    def _build(self, session_id: str, uname: str,
               metrics: MetricsRegistry):
        from repro.tools.install import build_system
        return build_system(width=self.width, height=self.height,
                            user=uname or "rob",
                            extra_tools=self.extra_tools,
                            session_id=session_id, metrics=metrics)

    def _make_session(self, uname: str, aname: str) -> HostedSession:
        with self._lock:
            session_id = aname or f"{self.id_prefix}{self._next}"
            self._next += 1
            existing = self.sessions.get(session_id)
            claimed = None
            if existing is not None and existing.parked:
                # a migrated session waiting for its owner: claim it —
                # the claimer's identity replaces the stale one and the
                # LRU clock restarts, or the fresh claim would be the
                # first hibernation victim
                existing.parked = False
                if uname:
                    existing.uname = uname
                existing.last_input = time.monotonic()
                self.metrics.incr("host.sessions.claimed")
                claimed = existing
            elif session_id in self.sessions:
                raise Busy(f"session {session_id!r} already attached",
                           path=f"session/{session_id}", op="attach")
            else:
                wake_path = self.hibernated.pop(session_id, None)
                wake_uname = self._hibernated_uname.pop(session_id, None)
                # reserve the name before the (slow) world build
                self.sessions[session_id] = None  # type: ignore[assignment]
        if claimed is not None:
            # the standby's tracked state follows (outside the host
            # lock: shipping is an rpc)
            self._ship_state(claimed.id, "live")
            return claimed
        try:
            self._ensure_room(exclude=session_id)
            start = time.perf_counter()
            journal_text = None
            if wake_path is not None:
                try:
                    journal_text = wake_path.read_text()
                except OSError as exc:
                    raise IOFault(f"hibernated snapshot unreadable: {exc}",
                                  path=f"session/{session_id}",
                                  op="attach") from exc
            session = HostedSession(self, session_id, uname or wake_uname
                                    or "", journal_text=journal_text)
        except BaseException:
            with self._lock:
                self.sessions.pop(session_id, None)
                if wake_path is not None:
                    # the snapshot file is untouched: keep the session
                    # nominal instead of losing it to a failed wake
                    self.hibernated[session_id] = wake_path
                    self._hibernated_uname[session_id] = wake_uname or ""
            raise
        with self._lock:
            self.sessions[session_id] = session
            live = sum(1 for s in self.sessions.values() if s is not None)
        self.live_peak = max(self.live_peak, live)
        # attach latency, tagged by op class: a cold attach builds a
        # world, a wake also rehydrates one from its spooled journal
        self.metrics.observe_op(
            "host.attach_us", "wake" if wake_path is not None else "cold",
            (time.perf_counter() - start) * 1e6)
        if wake_path is not None:
            self.metrics.observe("host.wake_us",
                                 (time.perf_counter() - start) * 1e6)
            self.metrics.incr("host.sessions.woken")
            try:
                wake_path.unlink()
            except OSError:
                pass  # the table entry is gone; a stale file is litter
        self.metrics.incr("host.sessions.opened")
        return session

    def adopt(self, session_id: str, uname: str,
              journal_text: str | None) -> HostedSession:
        """Take over a session migrated from another shard.

        Rebuilds the world from *journal_text* (the source shard's
        snapshot + journal suffix) and parks the result: the next
        Tattach naming *session_id* claims it instead of building a
        fresh world, so the migration is invisible to the client apart
        from the reconnect.
        """
        with self._lock:
            if session_id in self.sessions:
                raise Busy(f"session {session_id!r} already attached",
                           path=f"session/{session_id}", op="adopt")
            self.sessions[session_id] = None  # type: ignore[assignment]
        try:
            self._ensure_room(exclude=session_id)
            session = HostedSession(self, session_id, uname,
                                    journal_text=journal_text)
        except BaseException:
            with self._lock:
                self.sessions.pop(session_id, None)
            raise
        session.parked = True
        with self._lock:
            self.sessions[session_id] = session
            live = sum(1 for s in self.sessions.values() if s is not None)
        self.live_peak = max(self.live_peak, live)
        self.metrics.incr("host.sessions.opened")
        self.metrics.incr("host.sessions.adopted")
        # construction shipped the reset as "live"; it is parked
        self._ship_state(session_id, "parked")
        return session

    def adopt_hibernated(self, session_id: str, uname: str,
                         journal_text: str) -> None:
        """Take over another shard's **hibernated** session.

        The snapshot text is re-spooled locally and the session joins
        this host's ``hibernated`` table without ever being resident —
        a drained shard's nominal users move as files, not worlds.
        """
        with self._lock:
            if session_id in self.sessions or session_id in self.hibernated:
                raise Busy(f"session {session_id!r} already here",
                           path=f"session/{session_id}", op="adopt")
        path = self._spool_path(session_id)
        path.write_text(journal_text)
        with self._lock:
            self.hibernated[session_id] = path
            self._hibernated_uname[session_id] = uname
        self.metrics.incr("host.sessions.hib.in")
        feed = self.replica
        if feed is not None:
            # the standby holds nominal sessions too: a promoted
            # standby must re-spool them, so the snapshot ships whole
            try:
                feed.ship(session_id, "reset", 0, journal_text, meta=uname)
            except FsError:
                pass
            self._ship_state(session_id, "parked")

    def _retire(self, session: HostedSession) -> None:
        with self._lock:
            self.sessions.pop(session.id, None)
            self._retired.merge(session.metrics)
        self.metrics.incr("host.sessions.closed")
        if not session._hibernating:
            # truly gone — a hibernating session survives as a spooled
            # snapshot and keeps its standby entry
            self._ship_drop(session.id)

    def evict(self, session_id: str) -> None:
        """Force one session out; its connection sees ``Closed``.

        Evicting a hibernated session discards its disk snapshot.  The
        ``host.sessions.evicted`` counter moves only when this call is
        the one that retires the session — an evict racing a close (or
        a second evict) must not inflate the ledger.
        """
        with self._lock:
            session = self.sessions.get(session_id)
            discarded = False
            if session is None and session_id in self.hibernated:
                path = self.hibernated.pop(session_id)
                self._hibernated_uname.pop(session_id, None)
                self.metrics.incr("host.sessions.discarded")
                discarded = True
                try:
                    path.unlink()
                except OSError:
                    pass
        if discarded:
            self._ship_drop(session_id)
            return
        if session is None:
            raise NotFound(path=f"session/{session_id}", op="evict")
        if session.close():
            self.metrics.incr("host.sessions.evicted")

    # -- hibernation ------------------------------------------------------

    def _spool_dir(self) -> pathlib.Path:
        if self._spool is None:
            self._spool = pathlib.Path(
                tempfile.mkdtemp(prefix="repro-hibernate-"))
            self._spool_owned = True
        else:
            self._spool.mkdir(parents=True, exist_ok=True)
        return self._spool

    def _spool_path(self, session_id: str) -> pathlib.Path:
        return self._spool_dir() / (quote(session_id, safe="") + ".journal")

    def hibernate(self, session_id: str) -> None:
        """Park one live session on disk: compact, spool, tear down.

        Under the session's oplock (an in-flight input finishes
        first), the journal is flushed and compacted to a snapshot
        group, the serialized text is written to the spool, and the
        world is retired.  The session survives as a ``hibernated``
        table entry; the next attach naming it wakes it
        byte-identically.
        """
        with self._lock:
            session = self.sessions.get(session_id)
        if session is None:
            raise NotFound(path=f"session/{session_id}", op="hibernate")
        if session.recorder is None:
            raise Invalid("cannot hibernate an unjournalled session",
                          path=f"session/{session_id}", op="hibernate")
        with session.oplock:
            if session.closed:
                raise NotFound(path=f"session/{session_id}", op="hibernate")
            with session.metrics.activate():
                text = session.recorder.compact_to_text()
            path = self._spool_path(session_id)
            path.write_text(text)
            with self._lock:
                # registered before the retire pops the id, so there is
                # no window where an attach rebuilds a fresh world
                self.hibernated[session_id] = path
                self._hibernated_uname[session_id] = session.uname
            session._hibernating = True
            if not session.close():
                # an evict slipped in between the closed check and
                # here: honour it — the snapshot is already stale
                with self._lock:
                    self.hibernated.pop(session_id, None)
                    self._hibernated_uname.pop(session_id, None)
                try:
                    path.unlink()
                except OSError:
                    pass
                raise NotFound(path=f"session/{session_id}",
                               op="hibernate")
        self.metrics.incr("host.sessions.hibernated")
        # the compaction already shipped the snapshot text through the
        # durability hook; only the state flips
        self._ship_state(session_id, "parked")

    def _ensure_room(self, exclude: str | None = None) -> None:
        """Hibernate LRU sessions until the budget fits one more world.

        Victims are picked by ``last_input`` (parked sessions, whose
        clock never restarts, go first by construction).  A victim
        without a journal cannot hibernate and is evicted instead —
        the budget is a hard ceiling either way.
        """
        if self.max_live is None:
            return
        while True:
            with self._lock:
                total = len(self.sessions) + (1 if exclude
                                              not in self.sessions else 0)
                victims = [s for sid, s in self.sessions.items()
                           if s is not None and sid != exclude]
                if total <= self.max_live or not victims:
                    return
                victim = min(victims, key=lambda s: s.last_input)
            try:
                self.hibernate(victim.id)
            except Invalid:
                if victim.close():
                    self.metrics.incr("host.sessions.evicted")
            except NotFound:
                pass  # raced a close; re-evaluate

    def close(self) -> None:
        """Stop serving: drop every connection, retire every session.

        The ``hibernated`` table is kept (a post-close audit balances
        the wake ledger against it) but an owned spool directory is
        removed from disk.
        """
        self._closing = True
        self.server.close()
        with self._lock:
            live = list(self.sessions.values())
        for session in live:
            if session is not None:
                session.close()
        if self._spool_owned and self._spool is not None:
            shutil.rmtree(self._spool, ignore_errors=True)

    def __enter__(self) -> "SessionHost":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- the /srv/sessions control file -----------------------------------

    def control_file(self) -> SynthFile:
        return SynthFile("sessions", open_fn=self._control_session)

    def srv_files(self) -> list:
        """Every session's ``srv/`` directory: the control file, plus
        a ``replica`` status file when this host is a replication
        primary (feed attached) or standby (status callback)."""
        files = [self.control_file()]
        if self.replica is not None or self.replica_status is not None:
            files.append(SynthFile("replica", read_fn=self._replica_text))
        return files

    def _replica_text(self) -> str:
        if self.replica is not None:
            return self.replica.status_text()
        if self.replica_status is not None:
            return self.replica_status()
        return "role none\n"

    def _control_session(self, mode: str) -> SynthSession:
        focus: dict[str, str | None] = {"id": None}
        # with a router installed, srv/sessions spans every shard
        directory = self.directory if self.directory is not None else self

        def read_fn() -> str:
            if focus["id"] is not None:
                return directory._stat_text(focus["id"])
            return directory._list_text()

        def write_fn(line: str) -> None:
            words = line.split()
            if len(words) == 2 and words[0] == "stat":
                if not directory._knows(words[1]):
                    raise NotFound(path=f"session/{words[1]}", op="stat")
                focus["id"] = words[1]
            elif len(words) == 2 and words[0] == "evict":
                directory.evict(words[1])
            elif len(words) == 2 and words[0] == "hibernate":
                directory.hibernate(words[1])
            else:
                raise Invalid(f"bad control message {line.strip()!r}",
                              path="srv/sessions", op="write")

        return SynthSession(mode, read_fn, write_fn, name="srv/sessions")

    def _knows(self, session_id: str) -> bool:
        with self._lock:
            return (session_id in self.sessions
                    or session_id in self.hibernated)

    def _session_state(self, session: HostedSession) -> str:
        return "parked" if session.parked else "live"

    def _list_text(self) -> str:
        """One line per session — live, parked, busy or hibernated.

        Live rows read ``help.windows`` and ``journal.seq``, which a
        concurrent input apply mutates; each row takes its session's
        oplock (non-blocking — a listing must never stall behind a
        slow apply) and a session mid-apply is reported ``busy`` with
        its volatile fields elided rather than torn.
        """
        with self._lock:
            live = sorted((s for s in self.sessions.values()
                           if s is not None), key=lambda s: s.id)
            nominal = sorted((sid, self._hibernated_uname.get(sid, ""))
                             for sid in self.hibernated)
        lines = []
        for s in live:
            if s.oplock.acquire(blocking=False):
                try:
                    lines.append(
                        f"{s.id}\t{s.uname}\t{self._session_state(s)}"
                        f"\twindows={len(s.system.help.windows)}"
                        f"\trecords="
                        f"{0 if s.journal is None else s.journal.seq}\n")
                finally:
                    s.oplock.release()
            else:
                lines.append(f"{s.id}\t{s.uname}\tbusy"
                             f"\twindows=?\trecords=?\n")
        for sid, uname in nominal:
            lines.append(f"{sid}\t{uname}\thibernated"
                         f"\twindows=?\trecords=?\n")
        return "".join(sorted(lines))

    def _stat_text(self, session_id: str) -> str:
        with self._lock:
            session = self.sessions.get(session_id)
            if session is None and session_id in self.hibernated:
                uname = self._hibernated_uname.get(session_id, "")
                return (f"id {session_id}\nuser {uname}\n"
                        f"state hibernated\n")
        if session is None:
            return f"id {session_id}\nstate gone\n"
        if not session.oplock.acquire(blocking=False):
            # an input is being applied right now: report that rather
            # than reading windows/seq mid-mutation
            return (f"id {session.id}\nuser {session.uname}\n"
                    f"state busy\n")
        try:
            h = session.system.help
            return (f"id {session.id}\nuser {session.uname}\n"
                    f"state {self._session_state(session)}\n"
                    f"windows {len(h.windows)}\n"
                    f"records "
                    f"{0 if session.journal is None else session.journal.seq}\n"
                    f"screen {h.screen.rect.width}x{h.screen.rect.height}\n")
        finally:
            session.oplock.release()

    # -- the ledger -------------------------------------------------------

    def session_ledger(self) -> tuple[int, int]:
        """(sessions opened, sessions closed) — same shape a router sums."""
        return (self.metrics.counter("host.sessions.opened"),
                self.metrics.counter("host.sessions.closed"))

    def audit(self) -> list[str]:
        """Check the host ledger; returns problems (empty = clean).

        Balances sessions opened against closed + live, balances the
        wake ledger (every hibernation is accounted for by a wake, a
        discard, a transfer to another shard, or a snapshot still on
        the spool), and asserts the host's own registry carries **no**
        session-scoped counters — session work always runs under the
        session's registry, so any such counter here is cross-session
        bleed.  The bleed total is recorded as ``host.sessions.bleed``
        (0 when clean) so the bench ledger always carries an explicit
        verdict.
        """
        problems: list[str] = []
        opened = self.metrics.counter("host.sessions.opened")
        closed = self.metrics.counter("host.sessions.closed")
        with self._lock:
            live = sum(1 for s in self.sessions.values() if s is not None)
            parked_on_disk = len(self.hibernated)
        if opened != closed + live:
            problems.append(f"session ledger unbalanced: opened {opened} "
                            f"!= closed {closed} + live {live}")
        hibernated = self.metrics.counter("host.sessions.hibernated")
        woken = self.metrics.counter("host.sessions.woken")
        discarded = self.metrics.counter("host.sessions.discarded")
        hib_in = self.metrics.counter("host.sessions.hib.in")
        hib_out = self.metrics.counter("host.sessions.hib.out")
        if hibernated + hib_in != woken + discarded + hib_out \
                + parked_on_disk:
            problems.append(
                f"wake ledger unbalanced: hibernated {hibernated} "
                f"+ in {hib_in} != woken {woken} + discarded {discarded} "
                f"+ out {hib_out} + parked {parked_on_disk}")
        leaked = 0
        for prefix in SESSION_PREFIXES:
            for name, value in sorted(self.metrics.counters(prefix).items()):
                problems.append(f"session counter {name}={value} leaked "
                                f"into the host ledger")
                leaked += abs(value)
        self.metrics.incr("host.sessions.bleed", leaked)
        problems.extend(self._audit_replica())
        return problems

    def _audit_replica(self) -> list[str]:
        """The replication ledger, both roles.

        Primary: every shipped frame is acked, still in flight, or a
        counted error.  Standby: every promoted session resurfaced as
        a live wake or a parked snapshot.
        """
        problems: list[str] = []
        feed = self.replica
        if feed is not None:
            shipped = self.metrics.counter("replica.ship.frames")
            acked = self.metrics.counter("replica.ack.frames")
            errors = self.metrics.counter("replica.ship.errors")
            inflight = feed.pending()
            if shipped != acked + inflight + errors:
                problems.append(
                    f"replica ship ledger unbalanced: shipped {shipped} "
                    f"!= acked {acked} + inflight {inflight} "
                    f"+ errors {errors}")
        promoted = self.metrics.counter("replica.sessions.promoted")
        p_live = self.metrics.counter("replica.promoted.live")
        p_parked = self.metrics.counter("replica.promoted.parked")
        if promoted != p_live + p_parked:
            problems.append(
                f"replica promotion ledger unbalanced: promoted "
                f"{promoted} != live {p_live} + parked {p_parked}")
        return problems

    def drain(self, into: MetricsRegistry | None = None) -> MetricsRegistry:
        """Fold every ledger (host, retired, live) into *into*.

        Benches call this after closing their connections so the
        process-default registry — and therefore ``BENCH_perf.json`` —
        carries the complete cross-session ledger (``fs.open ==
        fs.close`` across every session hosted, ``host.sessions.*``
        balance) for :mod:`repro.tools.benchgate` to audit.
        """
        target = into if into is not None else current_registry()
        target.merge(self.metrics)
        with self._lock:
            live = [s for s in self.sessions.values() if s is not None]
            target.merge(self._retired)
        for session in live:
            target.merge(session.metrics)
        return target
