"""Sharded session hosting: N SessionHosts behind one attach router.

One :class:`~repro.serve.SessionHost` scales to one reactor's worth of
traffic; :class:`ShardRouter` multiplies that by running N independent
hosts (shards), each with its own :class:`~repro.fs.mux.WireServer`
reactor, worker pool and session registry.  The router owns nothing
but the attach decision:

* every connection starts with a Tattach (the protocol requires it);
  the router reads just enough bytes to decode that first frame,
  hashes the attach name onto an active shard, and hands the channel
  — buffered bytes included — to that shard's server via
  ``serve(channel, initial=...)``.  After the handoff the router is
  out of the data path entirely: no per-RPC hop, no shared lock.
* ``srv/sessions`` stays host-level: the router installs itself as
  every shard's ``directory``, so the control file lists, stats and
  evicts across all shards no matter which shard serves the read.
* :meth:`drain_shard` retires a shard gracefully: each live session is
  flushed and compacted, its journal (snapshot group + suffix, the
  PR 4 recovery format) is carried to another shard via
  :meth:`~repro.serve.SessionHost.adopt`, and a placement override
  routes the session's next attach to its new home.  In-flight RPCs
  finish first — migration takes each session's oplock.  Hibernated
  sessions relocate as snapshot files (``adopt_hibernated``) without
  ever becoming resident, and ``hibernate <id>`` on ``srv/sessions``
  reaches across shards the same way ``evict`` does.

Sessions are placed by ``crc32(aname)`` over the non-draining shards;
anonymous attaches round-robin.  Shard ids never collide because each
shard mints anonymous ids under its own prefix (``sh<i>.<n>``).

**Replication** (``replicate=True``) pairs every shard with a standby
(:class:`~repro.serve.replica.ReplicaPair`): the primary ships each
session's journal over the wire as it becomes durable, a monitor
thread watches the feed heartbeat, and when a primary goes silent
(``miss`` straight heartbeats) the router **promotes** — the standby
replays every shipped journal through the PR 4 recovery path, adopts
the sessions (live ones re-attach exactly like a hibernation wake;
parked snapshots are already spooled), and the hash slot repoints to
the promoted host.  ``kill_shard`` is the chaos hook: it crashes a
primary the way SIGKILL would (connections severed, nothing torn
down) and lets detection and promotion run for real.
"""

from __future__ import annotations

import socket
import threading
import time
import zlib

from repro.fs import wire
from repro.fs.errors import Busy, Closed, Invalid, NotFound
from repro.fs.mux import SocketChannel, channel_pair
from repro.metrics.counter import MetricsRegistry, current_registry
from repro.serve.host import SessionHost
from repro.serve.replica import ReplicaPair

_PEEK_SIZE = 1 << 16


class ShardRouter:
    """N SessionHost shards, routed by attach name, drained live."""

    def __init__(self, shards: int = 4, *, width: int = 100,
                 height: int = 40, record: bool = True,
                 extra_tools: bool = False, max_outstanding: int = 64,
                 workers: int = 4, max_live: int | None = None,
                 plan_for=None, replicate: bool = False,
                 replica_mode: str = "sync",
                 heartbeat_interval: float = 0.2,
                 heartbeat_miss: int = 3) -> None:
        if shards < 1:
            raise ValueError("a router needs at least one shard")
        self.metrics = MetricsRegistry("router")
        # max_live is a per-shard budget: N shards under one router
        # hold at most shards * max_live resident worlds; plan_for is
        # shared — a fault schedule keys on session id, not placement
        self.hosts = [SessionHost(width=width, height=height,
                                  record=record, extra_tools=extra_tools,
                                  id_prefix=f"sh{i}.",
                                  max_outstanding=max_outstanding,
                                  workers=workers, max_live=max_live,
                                  plan_for=plan_for)
                      for i in range(shards)]
        for host in self.hosts:
            host.directory = self
        self._lock = threading.Lock()
        self._placement: dict[str, int] = {}
        self._draining: set[int] = set()
        self._rr = 0
        self._sockets: list[socket.socket] = []
        self._closed = False
        # replication: one standby per shard, fed before first attach
        self.replicate = replicate
        self.heartbeat_miss = heartbeat_miss
        self._watch_interval = heartbeat_interval
        self.pairs: list[ReplicaPair | None] = [None] * shards
        # killed primaries, kept so close() can tear their threads down
        self.dead: list[SessionHost] = []
        self._monitor: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        if replicate:
            if not record:
                raise ValueError("replication needs journals: record=True")
            for i, host in enumerate(self.hosts):
                self.pairs[i] = ReplicaPair(host, mode=replica_mode,
                                            heartbeat=heartbeat_interval,
                                            standby_prefix=f"sh{i}r.")
            self._monitor = threading.Thread(target=self._watch,
                                             daemon=True,
                                             name="replica-monitor")
            self._monitor.start()

    # -- placement --------------------------------------------------------

    def shard_for(self, aname: str) -> int:
        """The shard that owns *aname*'s session (or will)."""
        with self._lock:
            placed = self._placement.get(aname) if aname else None
            if placed is not None:
                return placed
            active = [i for i in range(len(self.hosts))
                      if i not in self._draining]
            if not active:
                raise Busy("all shards draining", path="router", op="attach")
            if not aname:
                self._rr += 1
                return active[(self._rr - 1) % len(active)]
            return active[zlib.crc32(aname.encode("utf-8")) % len(active)]

    # -- accepting connections --------------------------------------------

    def pipe(self, max_chunk: int | None = None):
        """An in-memory attach: the client end of a routed pipe."""
        if self._closed:
            raise Closed("router is closed", path="router", op="pipe")
        client_end, server_end = channel_pair(max_chunk)
        threading.Thread(target=self._route_channel, args=(server_end,),
                         daemon=True, name="shard-route").start()
        return client_end

    def listen(self, host: str = "127.0.0.1",
               port: int = 0) -> tuple[str, int]:
        """Accept TCP attaches; returns the bound (host, port)."""
        if self._closed:
            raise Closed("router is closed", path="router", op="listen")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(128)
        self._sockets.append(sock)
        threading.Thread(target=self._accept_loop, args=(sock,),
                         daemon=True, name="shard-accept").start()
        return sock.getsockname()[:2]

    def _accept_loop(self, sock: socket.socket) -> None:
        while True:
            try:
                client, _addr = sock.accept()
            except OSError:
                return
            threading.Thread(target=self._route_channel,
                             args=(SocketChannel(client),),
                             daemon=True, name="shard-route").start()

    def _route_channel(self, channel) -> None:
        """Peek the Tattach, pick a shard, hand the channel over."""
        # routing threads carry no metrics context; errors constructed
        # here (eof mid-attach, a killed shard's server refusing the
        # handoff) book against the router, not the process default
        with self.metrics.activate():
            self._route(channel)

    def _route(self, channel) -> None:
        buf = bytearray()
        msg = None
        try:
            while msg is None:
                msg, _end = wire.decode(buf)
                if msg is not None:
                    break
                chunk = channel.recv(_PEEK_SIZE)
                if not chunk:
                    raise Closed("eof before attach", path="router",
                                 op="attach")
                buf += chunk
            if not isinstance(msg, wire.Tattach):
                raise Invalid("first frame is not Tattach", path="router",
                              op="attach")
            index = self.shard_for(msg.aname)
        except (Busy, Closed, Invalid, OSError):
            self.metrics.incr("router.attach.rejected")
            channel.close()
            return
        self.metrics.incr("router.attach.routed")
        self.metrics.incr(f"router.attach.shard{index}")
        try:
            self.hosts[index].server.serve(channel, initial=bytes(buf))
        except Closed:
            channel.close()

    # -- replication: failure detection and promotion ----------------------

    def _watch(self) -> None:
        """The monitor thread: promote any pair whose primary went
        silent for ``heartbeat_miss`` straight heartbeat intervals."""
        while not self._monitor_stop.wait(self._watch_interval):
            for i, pair in enumerate(self.pairs):
                if pair is None or pair.promoted:
                    continue
                if not pair.standby.primary_alive(self.heartbeat_miss):
                    try:
                        self.promote_shard(i)
                    except (Busy, Closed):
                        pass  # raced an explicit promote or a close

    def kill_shard(self, index: int) -> None:
        """Crash shard *index*'s primary (the SIGKILL stand-in).

        Connections sever mid-RPC, nothing is flushed or torn down,
        and the standby's feed goes silent — detection and promotion
        then run exactly as they would for a real dead process.
        """
        pair = self.pairs[index]
        if pair is None:
            raise Invalid(f"shard {index} has no standby",
                          path=f"shard/{index}", op="kill")
        self.metrics.incr("router.shards.killed")
        pair.kill_primary()

    def promote_shard(self, index: int) -> dict | None:
        """Fail shard *index* over to its standby, repointing the slot.

        The standby replays every shipped journal through recovery and
        adopts the sessions; the promoted host takes the dead
        primary's place in ``hosts`` — the placement hash lands on it
        from now on, so clients re-attach by the same name and find
        their session parked (hibernated wake) or freshly recovered.
        Returns the promotion report, or None if already promoted.
        """
        pair = self.pairs[index]
        if pair is None:
            raise Invalid(f"shard {index} has no standby",
                          path=f"shard/{index}", op="promote")
        if self._closed:
            raise Closed("router is closed", path="router", op="promote")
        with self._lock:
            if pair.promoted:
                return None
            old = self.hosts[index]
        start = time.perf_counter()
        promoted_host, report = pair.promote()
        promoted_host.directory = self
        with self._lock:
            self.hosts[index] = promoted_host
            if old is not promoted_host:
                self.dead.append(old)
        self.metrics.incr("router.shards.promoted")
        self.metrics.observe("router.promote_us",
                             (time.perf_counter() - start) * 1e6)
        if pair.killed_at is not None:
            # detection plus promotion: the availability gap a client
            # actually saw, measured from the kill
            self.metrics.observe(
                "router.failover_us",
                (time.monotonic() - pair.killed_at) * 1e6)
        self.metrics.incr("router.promote.problems",
                          len(report.get("problems", [])))
        return report

    # -- drain / migration ------------------------------------------------

    def drain_shard(self, index: int) -> list[str]:
        """Retire shard *index*: migrate every session elsewhere.

        Each live session is closed on the source shard under its
        oplock (so an in-flight RPC completes first), its journal text
        is adopted by a destination shard, and a placement override
        points the session's next attach there.  Hibernated sessions
        migrate too — their snapshot files move to the destination
        shard's spool (``adopt_hibernated``) without ever becoming
        resident, so a drained shard's nominal users survive the
        drain.  Returns the migrated session ids.  The shard keeps
        serving non-migrated traffic until its connections drop; new
        attaches never route to it again.
        """
        with self._lock:
            if index in self._draining:
                return []
            self._draining.add(index)
        source = self.hosts[index]
        with source._lock:
            live = [s for s in source.sessions.values() if s is not None]
        migrated: list[str] = []
        for session in live:
            target = self.shard_for(session.id)
            if self._migrate(session, self.hosts[target]):
                with self._lock:
                    self._placement[session.id] = target
                migrated.append(session.id)
                self.metrics.incr("router.sessions.migrated")
        for session_id in self._relocate_hibernated(source):
            migrated.append(session_id)
            self.metrics.incr("router.sessions.relocated")
        return migrated

    def _migrate(self, session, target_host: SessionHost) -> bool:
        with session.oplock:
            if session.closed:
                return False
            text = None
            if session.recorder is not None:
                with session.metrics.activate():
                    text = session.recorder.compact_to_text()
            uname = session.uname
            session_id = session.id
            session.close()
        target_host.adopt(session_id, uname, text)
        return True

    def _relocate_hibernated(self, source: SessionHost) -> list[str]:
        """Move *source*'s hibernated snapshots to their new shards."""
        with source._lock:
            parked = list(source.hibernated.items())
        moved: list[str] = []
        for session_id, path in parked:
            with source._lock:
                if source.hibernated.get(session_id) is not path:
                    continue  # woken or evicted while we iterated
                del source.hibernated[session_id]
                uname = source._hibernated_uname.pop(session_id, "")
            try:
                text = path.read_text()
            except OSError:
                continue  # an unreadable snapshot cannot move
            target = self.shard_for(session_id)
            self.hosts[target].adopt_hibernated(session_id, uname, text)
            source.metrics.incr("host.sessions.hib.out")
            try:
                path.unlink()
            except OSError:
                pass
            with self._lock:
                self._placement[session_id] = target
            moved.append(session_id)
        return moved

    # -- the federated srv/sessions directory ------------------------------

    def _knows(self, session_id: str) -> bool:
        return any(host._knows(session_id) for host in self.hosts)

    def _list_text(self) -> str:
        lines: list[str] = []
        for host in self.hosts:
            lines += host._list_text().splitlines(keepends=True)
        return "".join(sorted(lines))

    def _stat_text(self, session_id: str) -> str:
        for i, host in enumerate(self.hosts):
            if host._knows(session_id):
                return host._stat_text(session_id) + f"shard {i}\n"
        return f"id {session_id}\nstate gone\n"

    def evict(self, session_id: str) -> None:
        for host in self.hosts:
            if host._knows(session_id):
                host.evict(session_id)
                return
        raise NotFound(path=f"session/{session_id}", op="evict")

    def hibernate(self, session_id: str) -> None:
        for host in self.hosts:
            if host._knows(session_id):
                host.hibernate(session_id)
                return
        raise NotFound(path=f"session/{session_id}", op="hibernate")

    # -- the ledger -------------------------------------------------------

    def session_ledger(self) -> tuple[int, int]:
        opened = closed = 0
        for host in self.hosts:
            shard_opened, shard_closed = host.session_ledger()
            opened += shard_opened
            closed += shard_closed
        return opened, closed

    def audit(self) -> list[str]:
        """Every shard's audit, plus: no session id live on two shards."""
        problems: list[str] = []
        owner: dict[str, int] = {}
        dups = 0
        for i, host in enumerate(self.hosts):
            if host._killed:
                # a crashed primary's books are rightly unbalanced;
                # the promoted standby answers for its sessions
                continue
            problems += [f"shard{i}: {p}" for p in host.audit()]
            with host._lock:
                ids = [sid for sid, s in host.sessions.items()
                       if s is not None]
            for sid in ids:
                if sid in owner:
                    problems.append(f"session {sid!r} live on shard "
                                    f"{owner[sid]} and shard {i}")
                    dups += 1
                owner[sid] = i
        for i, pair in enumerate(self.pairs):
            if pair is not None and not pair.promoted:
                problems += [f"standby{i}: {p}"
                             for p in pair.standby.host.audit()]
        # an explicit zero is the audit's verdict — benchgate gates on
        # the counter's presence, not just its value
        self.metrics.incr("router.sessions.dup", dups)
        return problems

    def drain(self, into: MetricsRegistry | None = None) -> MetricsRegistry:
        """Fold the router ledger and every shard's ledgers into *into*."""
        target = into if into is not None else current_registry()
        target.merge(self.metrics)
        for host in self.hosts:
            host.drain(target)
        for pair in self.pairs:
            if pair is not None and not pair.promoted:
                pair.standby.host.drain(target)
        return target

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
        for sock in self._sockets:
            try:
                sock.close()
            except OSError:
                pass
        for pair in self.pairs:
            if pair is not None:
                pair.close()
        for host in self.hosts:
            host.close()
        for host in self.dead:
            host.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
