"""Sharded session hosting: N SessionHosts behind one attach router.

One :class:`~repro.serve.SessionHost` scales to one reactor's worth of
traffic; :class:`ShardRouter` multiplies that by running N independent
hosts (shards), each with its own :class:`~repro.fs.mux.WireServer`
reactor, worker pool and session registry.  The router owns nothing
but the attach decision:

* every connection starts with a Tattach (the protocol requires it);
  the router reads just enough bytes to decode that first frame,
  hashes the attach name onto an active shard, and hands the channel
  — buffered bytes included — to that shard's server via
  ``serve(channel, initial=...)``.  After the handoff the router is
  out of the data path entirely: no per-RPC hop, no shared lock.
* ``srv/sessions`` stays host-level: the router installs itself as
  every shard's ``directory``, so the control file lists, stats and
  evicts across all shards no matter which shard serves the read.
* :meth:`drain_shard` retires a shard gracefully: each live session is
  flushed and compacted, its journal (snapshot group + suffix, the
  PR 4 recovery format) is carried to another shard via
  :meth:`~repro.serve.SessionHost.adopt`, and a placement override
  routes the session's next attach to its new home.  In-flight RPCs
  finish first — migration takes each session's oplock.  Hibernated
  sessions relocate as snapshot files (``adopt_hibernated``) without
  ever becoming resident, and ``hibernate <id>`` on ``srv/sessions``
  reaches across shards the same way ``evict`` does.

Sessions are placed by ``crc32(aname)`` over the non-draining shards;
anonymous attaches round-robin.  Shard ids never collide because each
shard mints anonymous ids under its own prefix (``sh<i>.<n>``).
"""

from __future__ import annotations

import socket
import threading
import zlib

from repro.fs import wire
from repro.fs.errors import Busy, Closed, Invalid, NotFound
from repro.fs.mux import SocketChannel, channel_pair
from repro.metrics.counter import MetricsRegistry, current_registry
from repro.serve.host import SessionHost

_PEEK_SIZE = 1 << 16


class ShardRouter:
    """N SessionHost shards, routed by attach name, drained live."""

    def __init__(self, shards: int = 4, *, width: int = 100,
                 height: int = 40, record: bool = True,
                 extra_tools: bool = False, max_outstanding: int = 64,
                 workers: int = 4, max_live: int | None = None,
                 plan_for=None) -> None:
        if shards < 1:
            raise ValueError("a router needs at least one shard")
        self.metrics = MetricsRegistry("router")
        # max_live is a per-shard budget: N shards under one router
        # hold at most shards * max_live resident worlds; plan_for is
        # shared — a fault schedule keys on session id, not placement
        self.hosts = [SessionHost(width=width, height=height,
                                  record=record, extra_tools=extra_tools,
                                  id_prefix=f"sh{i}.",
                                  max_outstanding=max_outstanding,
                                  workers=workers, max_live=max_live,
                                  plan_for=plan_for)
                      for i in range(shards)]
        for host in self.hosts:
            host.directory = self
        self._lock = threading.Lock()
        self._placement: dict[str, int] = {}
        self._draining: set[int] = set()
        self._rr = 0
        self._sockets: list[socket.socket] = []
        self._closed = False

    # -- placement --------------------------------------------------------

    def shard_for(self, aname: str) -> int:
        """The shard that owns *aname*'s session (or will)."""
        with self._lock:
            placed = self._placement.get(aname) if aname else None
            if placed is not None:
                return placed
            active = [i for i in range(len(self.hosts))
                      if i not in self._draining]
            if not active:
                raise Busy("all shards draining", path="router", op="attach")
            if not aname:
                self._rr += 1
                return active[(self._rr - 1) % len(active)]
            return active[zlib.crc32(aname.encode("utf-8")) % len(active)]

    # -- accepting connections --------------------------------------------

    def pipe(self, max_chunk: int | None = None):
        """An in-memory attach: the client end of a routed pipe."""
        if self._closed:
            raise Closed("router is closed", path="router", op="pipe")
        client_end, server_end = channel_pair(max_chunk)
        threading.Thread(target=self._route_channel, args=(server_end,),
                         daemon=True, name="shard-route").start()
        return client_end

    def listen(self, host: str = "127.0.0.1",
               port: int = 0) -> tuple[str, int]:
        """Accept TCP attaches; returns the bound (host, port)."""
        if self._closed:
            raise Closed("router is closed", path="router", op="listen")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(128)
        self._sockets.append(sock)
        threading.Thread(target=self._accept_loop, args=(sock,),
                         daemon=True, name="shard-accept").start()
        return sock.getsockname()[:2]

    def _accept_loop(self, sock: socket.socket) -> None:
        while True:
            try:
                client, _addr = sock.accept()
            except OSError:
                return
            threading.Thread(target=self._route_channel,
                             args=(SocketChannel(client),),
                             daemon=True, name="shard-route").start()

    def _route_channel(self, channel) -> None:
        """Peek the Tattach, pick a shard, hand the channel over."""
        buf = bytearray()
        msg = None
        try:
            while msg is None:
                msg, _end = wire.decode(buf)
                if msg is not None:
                    break
                chunk = channel.recv(_PEEK_SIZE)
                if not chunk:
                    raise Closed("eof before attach", path="router",
                                 op="attach")
                buf += chunk
            if not isinstance(msg, wire.Tattach):
                raise Invalid("first frame is not Tattach", path="router",
                              op="attach")
            index = self.shard_for(msg.aname)
        except (Busy, Closed, Invalid, OSError):
            self.metrics.incr("router.attach.rejected")
            channel.close()
            return
        self.metrics.incr("router.attach.routed")
        self.metrics.incr(f"router.attach.shard{index}")
        try:
            self.hosts[index].server.serve(channel, initial=bytes(buf))
        except Closed:
            channel.close()

    # -- drain / migration ------------------------------------------------

    def drain_shard(self, index: int) -> list[str]:
        """Retire shard *index*: migrate every session elsewhere.

        Each live session is closed on the source shard under its
        oplock (so an in-flight RPC completes first), its journal text
        is adopted by a destination shard, and a placement override
        points the session's next attach there.  Hibernated sessions
        migrate too — their snapshot files move to the destination
        shard's spool (``adopt_hibernated``) without ever becoming
        resident, so a drained shard's nominal users survive the
        drain.  Returns the migrated session ids.  The shard keeps
        serving non-migrated traffic until its connections drop; new
        attaches never route to it again.
        """
        with self._lock:
            if index in self._draining:
                return []
            self._draining.add(index)
        source = self.hosts[index]
        with source._lock:
            live = [s for s in source.sessions.values() if s is not None]
        migrated: list[str] = []
        for session in live:
            target = self.shard_for(session.id)
            if self._migrate(session, self.hosts[target]):
                with self._lock:
                    self._placement[session.id] = target
                migrated.append(session.id)
                self.metrics.incr("router.sessions.migrated")
        for session_id in self._relocate_hibernated(source):
            migrated.append(session_id)
            self.metrics.incr("router.sessions.relocated")
        return migrated

    def _migrate(self, session, target_host: SessionHost) -> bool:
        with session.oplock:
            if session.closed:
                return False
            text = None
            if session.recorder is not None:
                with session.metrics.activate():
                    text = session.recorder.compact_to_text()
            uname = session.uname
            session_id = session.id
            session.close()
        target_host.adopt(session_id, uname, text)
        return True

    def _relocate_hibernated(self, source: SessionHost) -> list[str]:
        """Move *source*'s hibernated snapshots to their new shards."""
        with source._lock:
            parked = list(source.hibernated.items())
        moved: list[str] = []
        for session_id, path in parked:
            with source._lock:
                if source.hibernated.get(session_id) is not path:
                    continue  # woken or evicted while we iterated
                del source.hibernated[session_id]
                uname = source._hibernated_uname.pop(session_id, "")
            try:
                text = path.read_text()
            except OSError:
                continue  # an unreadable snapshot cannot move
            target = self.shard_for(session_id)
            self.hosts[target].adopt_hibernated(session_id, uname, text)
            source.metrics.incr("host.sessions.hib.out")
            try:
                path.unlink()
            except OSError:
                pass
            with self._lock:
                self._placement[session_id] = target
            moved.append(session_id)
        return moved

    # -- the federated srv/sessions directory ------------------------------

    def _knows(self, session_id: str) -> bool:
        return any(host._knows(session_id) for host in self.hosts)

    def _list_text(self) -> str:
        lines: list[str] = []
        for host in self.hosts:
            lines += host._list_text().splitlines(keepends=True)
        return "".join(sorted(lines))

    def _stat_text(self, session_id: str) -> str:
        for i, host in enumerate(self.hosts):
            if host._knows(session_id):
                return host._stat_text(session_id) + f"shard {i}\n"
        return f"id {session_id}\nstate gone\n"

    def evict(self, session_id: str) -> None:
        for host in self.hosts:
            if host._knows(session_id):
                host.evict(session_id)
                return
        raise NotFound(path=f"session/{session_id}", op="evict")

    def hibernate(self, session_id: str) -> None:
        for host in self.hosts:
            if host._knows(session_id):
                host.hibernate(session_id)
                return
        raise NotFound(path=f"session/{session_id}", op="hibernate")

    # -- the ledger -------------------------------------------------------

    def session_ledger(self) -> tuple[int, int]:
        opened = closed = 0
        for host in self.hosts:
            shard_opened, shard_closed = host.session_ledger()
            opened += shard_opened
            closed += shard_closed
        return opened, closed

    def audit(self) -> list[str]:
        """Every shard's audit, plus: no session id live on two shards."""
        problems: list[str] = []
        owner: dict[str, int] = {}
        dups = 0
        for i, host in enumerate(self.hosts):
            problems += [f"shard{i}: {p}" for p in host.audit()]
            with host._lock:
                ids = [sid for sid, s in host.sessions.items()
                       if s is not None]
            for sid in ids:
                if sid in owner:
                    problems.append(f"session {sid!r} live on shard "
                                    f"{owner[sid]} and shard {i}")
                    dups += 1
                owner[sid] = i
        # an explicit zero is the audit's verdict — benchgate gates on
        # the counter's presence, not just its value
        self.metrics.incr("router.sessions.dup", dups)
        return problems

    def drain(self, into: MetricsRegistry | None = None) -> MetricsRegistry:
        """Fold the router ledger and every shard's ledgers into *into*."""
        target = into if into is not None else current_registry()
        target.merge(self.metrics)
        for host in self.hosts:
            host.drain(target)
        return target

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for sock in self._sockets:
            try:
                sock.close()
            except OSError:
                pass
        for host in self.hosts:
            host.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
