"""Journal-shipping replication: primary/standby session hosts.

The journal *is* the session (PR 4), so shipping the journal is
replication, and failover is just :func:`~repro.journal.recovery.
recover` run on another host.  Three pieces make that real:

* :class:`ReplicaFeed` — the primary side.  It hangs off every hosted
  session's :attr:`~repro.journal.log.Journal.on_durable` hook and
  streams the bytes each flush/compaction made durable to the standby
  as :class:`~repro.fs.wire.Tship` frames (seq-watermarked, CRC'd per
  frame) over an ordinary wire connection.  In ``sync`` mode the ship
  blocks for the standby's :class:`~repro.fs.wire.Rship` ack, and
  because the recorder flushes an input *before* applying it, a client
  write is only acknowledged once the standby durably holds its
  record — zero acknowledged-write loss by construction.  ``async``
  mode trades that guarantee for latency: ships queue and drain on a
  background thread, with the debt metered as ``replica.lag_records``
  and ``replica.lag_us`` histograms.
* :class:`ReplicaStandby` — the standby side.  It wraps its own
  :class:`~repro.serve.SessionHost` and installs a ship handler on its
  wire server; per session it keeps the journal text, the park state
  and the feed watermark.  :meth:`ReplicaStandby.promote` turns the
  copies into sessions: every tracked journal enters the host's
  hibernated table (``adopt_hibernated``), so live sessions re-attach
  exactly like a hibernation wake — the journal tail replays through
  ``recover()`` — and parked snapshots are simply already there.
* :class:`ReplicaPair` — the wiring: one primary, one standby, the
  feed between them, and a kill switch that severs the primary with no
  orderly teardown (the in-process stand-in for SIGKILL).

Failure detection is feed silence: the feed heartbeats ``ping`` ships
every *heartbeat* seconds, the standby timestamps every frame, and
:meth:`ReplicaStandby.primary_alive` reports whether the allowance of
missed heartbeats is spent — the same staleness the ``srv/replica``
control file serves.  The ShardRouter's monitor thread polls it and
repoints the hash slot at the promoted standby.

The ledger: ``replica.ship.frames == replica.ack.frames + inflight +
replica.ship.errors`` on the primary (audited by ``host.audit()``),
and ``replica.sessions.promoted == replica.promoted.live +
replica.promoted.parked`` on the standby — the lost primary's resident
plus parked sessions, every one accounted for.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque

from repro.fs import wire
from repro.fs.errors import Busy, Closed, FsError, IOFault
from repro.fs.mux import MuxClient
from repro.metrics.counter import MetricsRegistry
from repro.serve.host import SessionHost

#: Ship frames split their data at this many characters so a frame
#: never exceeds the wire's MAX_MESSAGE even at four bytes per char.
_CHUNK_CHARS = 200_000


def _crc(data: str) -> int:
    return zlib.crc32(data.encode("utf-8")) & 0xFFFFFFFF


class ReplicaFeed:
    """The primary's end of the journal stream to one standby."""

    def __init__(self, channel, *, mode: str = "sync",
                 metrics: MetricsRegistry | None = None,
                 heartbeat: float = 0.2, timeout: float = 30.0) -> None:
        if mode not in ("sync", "async"):
            raise ValueError(f"replica mode {mode!r} is not sync/async")
        self.mode = mode
        self.heartbeat = heartbeat
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry("replica")
        # the feed's wire client books its lifecycle noise (a torn
        # channel when the primary dies, the close on stop) against
        # the feed's own registry, not whatever context made the feed
        with self.metrics.activate():
            self._client = MuxClient(channel, attach=False, timeout=timeout)
        self._lock = threading.Lock()
        self._shipped_records = 0
        self._acked_records = 0
        self._inflight_frames = 0
        self._stopped = False
        # async mode: ships queue here and drain strictly in order on
        # one thread, so per-session record order is preserved
        self._queue: deque = deque()
        self._qcond = threading.Condition(self._lock)
        self._drainer = None
        if mode == "async":
            self._drainer = threading.Thread(target=self._drain, daemon=True,
                                             name="replica-feed")
            self._drainer.start()
        self._beat = threading.Thread(target=self._heartbeat, daemon=True,
                                      name="replica-heartbeat")
        self._beat.start()

    # -- shipping ---------------------------------------------------------

    def ship(self, sid: str, verb: str, seq: int, data: str = "",
             meta: str = "") -> None:
        """Ship one journal event for session *sid*.

        ``sync``: blocks until the standby acks durability — a raise
        here propagates up through ``Journal.flush`` into the client's
        write, which is exactly the point.  ``async``: enqueues and
        returns; the drain thread pays the debt.
        """
        frames = self._frames(sid, verb, seq, data, meta)
        if self.mode == "sync":
            for frame, records in frames:
                self._send(frame, records, time.perf_counter())
            return
        with self._lock:
            if self._stopped:
                raise Closed("replica feed stopped", path=f"replica/{sid}",
                             op="ship")
            now = time.perf_counter()
            for frame, records in frames:
                self._queue.append((frame, records, now))
                self._shipped_records += records
                self._inflight_frames += 1
                self.metrics.incr("replica.ship.frames")
                self.metrics.incr("replica.ship.records", records)
                self.metrics.incr("replica.ship.bytes", len(frame.data))
                self.metrics.observe("replica.lag_records",
                                     self._shipped_records
                                     - self._acked_records)
            self._qcond.notify()

    def _frames(self, sid: str, verb: str, seq: int, data: str,
                meta: str) -> list[tuple[wire.Tship, int]]:
        """(frame, record-count) pairs; big payloads chunk into a
        ``reset`` head plus ``append`` continuations — the standby
        concatenates, so the final text is identical."""
        out: list[tuple[wire.Tship, int]] = []
        chunks = ([data[i:i + _CHUNK_CHARS]
                   for i in range(0, len(data), _CHUNK_CHARS)] or [""])
        for index, chunk in enumerate(chunks):
            chunk_verb = verb if index == 0 else "append"
            out.append((wire.Tship(sid=sid, verb=chunk_verb, seq=seq,
                                   crc=_crc(chunk), meta=meta, data=chunk),
                        chunk.count("\n")))
        return out

    def _send(self, frame: wire.Tship, records: int, t0: float) -> None:
        with self._lock:
            if self._stopped:
                raise Closed("replica feed stopped",
                             path=f"replica/{frame.sid}", op="ship")
            self._shipped_records += records
            self._inflight_frames += 1
            self.metrics.incr("replica.ship.frames")
            self.metrics.incr("replica.ship.records", records)
            self.metrics.incr("replica.ship.bytes", len(frame.data))
            self.metrics.observe("replica.lag_records",
                                 self._shipped_records - self._acked_records)
        try:
            reply = self._client.rpc(frame)
        except (FsError, OSError) as exc:
            with self._lock:
                self._inflight_frames -= 1
            self.metrics.incr("replica.ship.errors")
            raise IOFault(f"replica ship failed: {exc}",
                          path=f"replica/{frame.sid}", op="ship") from exc
        with self._lock:
            self._inflight_frames -= 1
            self._acked_records += records
        self.metrics.incr("replica.ack.frames")
        self.metrics.incr("replica.ack.records", records)
        self.metrics.observe("replica.lag_us",
                             (time.perf_counter() - t0) * 1e6)
        if reply.ack < frame.seq:
            self.metrics.incr("replica.ack.stale")

    def _drain(self) -> None:  # async mode only
        with self.metrics.activate():
            self._drain_loop()

    def _drain_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopped:
                    self._qcond.wait()
                if not self._queue:
                    return  # stopped and drained
                frame, records, t0 = self._queue.popleft()
            try:
                reply = self._client.rpc(frame)
            except (FsError, OSError):
                with self._lock:
                    self._inflight_frames -= 1
                self.metrics.incr("replica.ship.errors")
                continue
            with self._lock:
                self._inflight_frames -= 1
                self._acked_records += records
            self.metrics.incr("replica.ack.frames")
            self.metrics.incr("replica.ack.records", records)
            self.metrics.observe("replica.lag_us",
                                 (time.perf_counter() - t0) * 1e6)
            if reply.ack < frame.seq:
                self.metrics.incr("replica.ack.stale")

    def _heartbeat(self) -> None:
        with self.metrics.activate():
            while True:
                time.sleep(self.heartbeat)
                with self._lock:
                    if self._stopped:
                        return
                try:
                    self._client.rpc(wire.Tship(verb="ping"))
                    self.metrics.incr("replica.heartbeat.sent")
                except (FsError, OSError):
                    self.metrics.incr("replica.heartbeat.failed")

    # -- introspection ----------------------------------------------------

    def pending(self) -> int:
        """Frames shipped (or queued) but not yet acked."""
        with self._lock:
            return self._inflight_frames + len(self._queue)

    def quiesce(self, timeout: float = 10.0) -> bool:
        """Wait for the async queue to drain; True when it did."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.pending() == 0:
                return True
            time.sleep(0.002)
        return self.pending() == 0

    def status_text(self) -> str:
        with self._lock:
            shipped = self._shipped_records
            acked = self._acked_records
            inflight = self._inflight_frames + len(self._queue)
        return (f"role primary\nmode {self.mode}\n"
                f"shipped {shipped}\nacked {acked}\n"
                f"inflight {inflight}\n")

    # -- lifecycle --------------------------------------------------------

    def stop(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            self._qcond.notify_all()
        self._client.close()

    def __enter__(self) -> "ReplicaFeed":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


class _Tracked:
    """The standby's copy of one session: journal text + park state."""

    __slots__ = ("uname", "state", "parts", "seq", "records")

    def __init__(self, uname: str, state: str = "live") -> None:
        self.uname = uname
        self.state = state
        self.parts: list[str] = []
        self.seq = 0
        self.records = 0

    def text(self) -> str:
        if len(self.parts) > 1:
            self.parts = ["".join(self.parts)]
        return self.parts[0] if self.parts else ""


class ReplicaStandby:
    """A warm spare: a SessionHost plus the shipped journal copies."""

    def __init__(self, *, width: int = 100, height: int = 40,
                 extra_tools: bool = False, id_prefix: str = "rs",
                 max_outstanding: int = 64, workers: int = 4,
                 max_live: int | None = None, plan_for=None,
                 heartbeat: float = 0.2) -> None:
        self.host = SessionHost(width=width, height=height, record=True,
                                extra_tools=extra_tools, id_prefix=id_prefix,
                                max_outstanding=max_outstanding,
                                workers=workers, max_live=max_live,
                                plan_for=plan_for)
        self.heartbeat = heartbeat
        self.metrics = self.host.metrics
        self.promoted = False
        self._lock = threading.Lock()
        self._tracked: dict[str, _Tracked] = {}
        self._last_feed = time.monotonic()
        self.host.server.ship_handler = self._on_ship
        self.host.replica_status = self.status_text

    # -- the ship handler (wire worker threads) ---------------------------

    def _on_ship(self, msg: wire.Tship) -> int:
        # wire worker threads carry no metrics context of their own;
        # errors raised here (crc mismatch, unknown verb) must book
        # against the standby, not the process default registry
        with self.metrics.activate():
            return self._apply_ship(msg)

    def _apply_ship(self, msg: wire.Tship) -> int:
        now = time.monotonic()
        if msg.verb == "ping":
            with self._lock:
                self._last_feed = now
            self.metrics.incr("replica.heartbeat.seen")
            return 0
        if _crc(msg.data) != msg.crc:
            self.metrics.incr("replica.recv.crc_failed")
            raise IOFault("replica feed crc mismatch",
                          path=f"replica/{msg.sid}", op="ship")
        records = msg.data.count("\n")
        with self._lock:
            self._last_feed = now
            entry = self._tracked.get(msg.sid)
            if msg.verb == "reset":
                entry = _Tracked(msg.meta or (entry.uname if entry else ""))
                entry.parts.append(msg.data)
                entry.seq = msg.seq
                entry.records = records
                self._tracked[msg.sid] = entry
            elif msg.verb == "append":
                if entry is None:
                    # an append can only follow a reset; a standby that
                    # joined mid-stream asks for nothing — the next
                    # compaction's reset catches it up
                    self.metrics.incr("replica.recv.orphan")
                    return 0
                entry.parts.append(msg.data)
                entry.seq = max(entry.seq, msg.seq)
                entry.records += records
            elif msg.verb == "state":
                if entry is not None:
                    entry.state = msg.meta or entry.state
            elif msg.verb == "drop":
                self._tracked.pop(msg.sid, None)
            else:
                raise IOFault(f"unknown ship verb {msg.verb!r}",
                              path=f"replica/{msg.sid}", op="ship")
            ack = entry.seq if entry is not None else msg.seq
        self.metrics.incr("replica.recv.frames")
        self.metrics.incr("replica.recv.records", records)
        self.metrics.incr("replica.recv.bytes", len(msg.data))
        return ack

    # -- failure detection ------------------------------------------------

    def feed_age(self) -> float:
        """Seconds since the last frame (data or heartbeat) arrived."""
        with self._lock:
            return time.monotonic() - self._last_feed

    def primary_alive(self, miss: int = 3) -> bool:
        """False once *miss* heartbeat intervals pass in silence."""
        return self.feed_age() < miss * self.heartbeat

    # -- promotion --------------------------------------------------------

    def promote(self) -> dict:
        """Adopt every tracked session; the standby becomes primary.

        Each copy enters the host's hibernated table, so a live
        session's owner re-attaches exactly like a hibernation wake —
        ``recover()`` replays the journal tail — and parked snapshots
        are already in the only place they need to be.  Returns the
        promotion report; the host keeps serving as an ordinary
        SessionHost afterwards (the feed handler keeps answering, but
        a dead primary ships nothing).
        """
        with self._lock:
            if self.promoted:
                raise Busy("standby already promoted", path="replica",
                           op="promote")
            self.promoted = True
            entries = list(self._tracked.items())
        start = time.perf_counter()
        live = parked = 0
        problems: list[str] = []
        for sid, entry in entries:
            try:
                self.host.adopt_hibernated(sid, entry.uname, entry.text())
            except FsError as exc:
                problems.append(f"promote {sid}: {exc}")
                continue
            if entry.state == "parked":
                parked += 1
            else:
                live += 1
        elapsed_us = (time.perf_counter() - start) * 1e6
        self.metrics.incr("replica.sessions.promoted", live + parked)
        self.metrics.incr("replica.promoted.live", live)
        self.metrics.incr("replica.promoted.parked", parked)
        self.metrics.observe("replica.promote_us", elapsed_us)
        return {"sessions": live + parked, "live": live, "parked": parked,
                "elapsed_us": elapsed_us, "problems": problems}

    # -- introspection ----------------------------------------------------

    def tracked(self) -> dict[str, tuple[str, int]]:
        """sid -> (state, records shipped) for every tracked session."""
        with self._lock:
            return {sid: (e.state, e.records)
                    for sid, e in self._tracked.items()}

    def journal_text(self, sid: str) -> str | None:
        with self._lock:
            entry = self._tracked.get(sid)
            return entry.text() if entry is not None else None

    def status_text(self) -> str:
        with self._lock:
            sessions = len(self._tracked)
            promoted = int(self.promoted)
            age_ms = (time.monotonic() - self._last_feed) * 1e3
        return (f"role standby\npromoted {promoted}\n"
                f"sessions {sessions}\nfeed_age_ms {age_ms:.0f}\n")

    def close(self) -> None:
        self.host.close()

    def __enter__(self) -> "ReplicaStandby":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ReplicaPair:
    """One primary host, one standby, the feed between them."""

    def __init__(self, primary: SessionHost, *, mode: str = "sync",
                 heartbeat: float = 0.2, standby_prefix: str = "rs.",
                 standby: ReplicaStandby | None = None) -> None:
        self.primary = primary
        self.standby = standby if standby is not None else ReplicaStandby(
            width=primary.width, height=primary.height,
            extra_tools=primary.extra_tools, id_prefix=standby_prefix,
            workers=4, max_live=primary.max_live, plan_for=primary.plan_for,
            heartbeat=heartbeat)
        self.standby.heartbeat = heartbeat
        self.feed = ReplicaFeed(self.standby.host.pipe(), mode=mode,
                                metrics=primary.metrics, heartbeat=heartbeat)
        primary.attach_replica(self.feed)
        self.killed = False
        self.killed_at: float | None = None

    @property
    def promoted(self) -> bool:
        return self.standby.promoted

    def kill_primary(self) -> None:
        """Crash the primary: feed severed, connections dropped, no
        teardown — what SIGKILL leaves behind."""
        if self.killed:
            return
        self.killed = True
        self.killed_at = time.monotonic()
        self.feed.stop()
        self.primary.kill()

    def promote(self) -> tuple[SessionHost, dict]:
        """Promote the standby; returns (new primary host, report)."""
        report = self.standby.promote()
        return self.standby.host, report

    def close(self) -> None:
        self.feed.stop()
        self.primary.close()
        self.standby.close()

    def __enter__(self) -> "ReplicaPair":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
