"""The session host: N isolated help sessions in one process.

See :mod:`repro.serve.host` for the architecture; the short version::

    from repro.fs.mux import MuxClient
    from repro.serve import SessionHost

    host = SessionHost(width=160, height=60)
    addr = host.listen()                    # or host.pipe() in-memory
    client = MuxClient(dial(*addr), aname="alice")
    # the attached tree: id, screen, input, journal, metrics,
    # mnt/help/..., srv/sessions
"""

from repro.serve.host import (
    HostedSession,
    SESSION_PREFIXES,
    SessionHost,
    input_line,
    kind_class,
)
from repro.serve.replica import ReplicaFeed, ReplicaPair, ReplicaStandby
from repro.serve.shards import ShardRouter

__all__ = ["SessionHost", "HostedSession", "SESSION_PREFIXES",
           "ShardRouter", "ReplicaFeed", "ReplicaPair", "ReplicaStandby",
           "input_line", "kind_class"]
