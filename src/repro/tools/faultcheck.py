"""Prove the interface survives a misbehaving file server.

``help`` is one process whose whole user interface hangs off a file
service; a file server that refuses an open, drops a write, or errors
at close time must degrade into a diagnostic in the Errors window, not
take the session down.  This check replays the paper's Figures 5-12
session twice:

1. **clean** — no faults; the session must complete exactly as
   ``python -m repro`` 's ``demo`` does, producing the stack window;
2. **faulted** — ``/mnt/help`` is remounted behind a standard
   :class:`~repro.fs.faults.FaultPlan` (an open refused, a short read,
   a write fault, a close-time fault) and the same session is driven
   again.  Help must stay live, the screen must still render, every
   scheduled fault must actually fire, and each one must surface as a
   structured diagnostic.

Runs as a CLI (wired into the verify skill next to tier-1 and
figcheck)::

    python -m repro.tools.faultcheck

and from the test suite (``tests/tools/test_faultcheck.py``).  Exit 0
when both passes hold, 1 on any failed check, 2 on usage errors.
"""

from __future__ import annotations

import sys

from repro.core.help import ERRORS
from repro.fs.faults import Fault, FaultPlan, wrap
from repro.metrics.counter import counter, counters, reset_counters
from repro.core.render import render_screen
from repro.tools.install import System, build_system

MOUNT = "/mnt/help"


def standard_schedule() -> FaultPlan:
    """The standard fault schedule the figure session is replayed under.

    Each rule targets an op the session is known to perform, so every
    rule fires exactly once and the replay is a deterministic
    regression test rather than a fuzz run:

    - the first ``bodyapp`` write (``headers`` filling its window)
      fails mid-stream;
    - the 2nd window creation (``messages``) is refused at open;
    - the 3rd window creation (``stack``) reads back an empty window
      name (a short read), so the script's ``$x`` is a null list;
    - the 3rd ``ctl`` close (``stack`` closing ``new/ctl``) errors
      after the data arrived.
    """
    return FaultPlan(
        Fault(op="write", path=f"{MOUNT}/*/bodyapp", at=1),
        Fault(op="open", path=f"{MOUNT}/new/ctl", at=2),
        Fault(op="read", path=f"{MOUNT}/new/ctl", at=2, short=0),
        Fault(op="close", path=f"{MOUNT}/*/ctl", at=3),
    )


def replay(system: System) -> list[str]:
    """Drive the Figures 5-12 session, skipping steps whose window
    never appeared (an upstream fault may have eaten it).

    Returns notes about skipped steps; an empty list means the full
    session ran.
    """
    h = system.help
    skipped: list[str] = []

    def exec_in(name: str, text: str) -> None:
        window = h.window_by_name(name)
        if window is None:
            skipped.append(f"no window {name!r}; skipped {text!r}")
            return
        h.execute_text(window, text)

    def point(name: str, needle: str) -> None:
        window = h.window_by_name(name)
        if window is None or needle not in window.body.string():
            skipped.append(f"no {needle!r} in window {name!r}; not pointed")
            return
        h.point_at(window, window.body.string().index(needle))

    exec_in("/help/mail/stf", "headers")
    point("/mail/box/rob/mbox", "sean")
    exec_in("/help/mail/stf", "messages")
    point("From", "176153")
    exec_in("/help/db/stf", "stack")
    return skipped


def check_clean(width: int, height: int) -> list[str]:
    """The no-fault control: the demo session must fully complete."""
    problems: list[str] = []
    system = build_system(width=width, height=height)
    skipped = replay(system)
    for note in skipped:
        problems.append(f"clean: {note}")
    h = system.help
    if h.window_by_name("/usr/rob/src/help/") is None:
        problems.append("clean: stack window missing after replay")
    errors = h.window_by_name(ERRORS)
    if errors is not None and errors.body.string():
        head = errors.body.string().splitlines()[0]
        problems.append(f"clean: unexpected Errors output: {head}")
    render_screen(h)
    return problems


def check_faulted(width: int, height: int) -> list[str]:
    """The faulted pass: inject the standard schedule, demand grace."""
    problems: list[str] = []
    system = build_system(width=width, height=height)
    plan = standard_schedule()
    faulty = wrap(system.helpfs.root, plan, base=MOUNT)
    system.ns.unmount(MOUNT)
    system.ns.mount(faulty, MOUNT)

    before = counter("fs.fault.injected")
    replay(system)  # skipped steps are *expected* here
    injected = counter("fs.fault.injected") - before

    for rule, fired in zip(plan.faults, plan.fired):
        if rule.at != 0 and fired != 1:
            problems.append(
                f"faulted: rule {rule.op} {rule.path} at={rule.at} "
                f"fired {fired} times, want 1")
    if injected != plan.injected:
        problems.append(
            f"faulted: fs.fault.injected moved by {injected}, "
            f"plan says {plan.injected}")

    h = system.help
    if not h.running:
        problems.append("faulted: help stopped running")
    errors = h.window_by_name(ERRORS)
    if errors is None or not errors.body.string():
        problems.append("faulted: no diagnostics in the Errors window")
    elif "[" not in errors.body.string():
        problems.append("faulted: Errors output lacks structured [kind] tags")
    try:
        render_screen(h)
    except Exception as exc:  # any render crash is exactly the regression
        problems.append(f"faulted: render failed: {exc}")
    return problems


def run(width: int = 120, height: int = 40) -> list[str]:
    """Both passes; every problem found, empty when all is well."""
    reset_counters("fs.")
    problems = check_clean(width, height)
    problems += check_faulted(width, height)
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    width, height = 120, 40
    if len(args) == 2 and args[0].isdigit() and args[1].isdigit():
        width, height = int(args[0]), int(args[1])
    elif args:
        print("usage: faultcheck [width height]", file=sys.stderr)
        return 2
    problems = run(width, height)
    for problem in problems:
        print(f"faultcheck: {problem}", file=sys.stderr)
    if not problems:
        tallies = " ".join(f"{k}={v}" for k, v in
                           sorted(counters("fs.").items()))
        print("faultcheck: figure session survives the standard "
              "fault schedule")
        print(f"faultcheck: {tallies}")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
