"""Prove failover is invisible: SIGKILL the primary, goldens survive.

servecheck proved one session is byte-identical across the wire;
sessioncheck proved N concurrent sessions are isolated; this check
proves the replication story end to end with a **real process kill**:

1. the parent process starts a :class:`~repro.serve.replica.
   ReplicaStandby` listening on TCP and spawns a child process (this
   same module with ``--primary``) hosting the primary
   :class:`~repro.serve.SessionHost`, whose :class:`~repro.serve.
   replica.ReplicaFeed` dials the standby over that socket in ``sync``
   mode — every acknowledged write is durably on the standby first;
2. each Figures 5-12 scenario is recorded locally into its input
   records (the same traffic models loadgen replays); the parent
   attaches one session per figure to the child and writes a *seeded
   prefix* of each figure's records — every figure is mid-stream;
3. the parent sends the child a real ``SIGKILL``.  No teardown, no
   flush, no goodbye: exactly the failure the journal-shipping design
   claims to survive;
4. the standby notices the feed silence (missed heartbeats), is
   promoted — every shipped journal enters the hibernated table — and
   the parent re-attaches each figure session to the promoted host:
   the session's ``inputs`` file (the replication resume index) must
   cover every write the dead primary acknowledged (**zero
   acknowledged-write loss**), the parent replays only the
   unacknowledged tail, and the final screen must equal the pinned
   golden (``tests/goldens/fig*.txt``) **byte-for-byte**;
5. the promoted host's ledger is audited: the promotion books balance
   and no session was lost or duplicated.

::

    python -m repro.tools.replicacheck [--figures N] [--seed S]

``--figures N`` narrows the sweep to the first N figures (the test
suite's fast path).  ``--primary --standby HOST:PORT`` is the child
entry — not for humans.  Exit 0 when every screen matches, 1 on any
divergence or lost write, 2 on usage errors.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import time

from repro.fs.errors import FsError
from repro.fs.mux import MuxClient, dial, mount_remote
from repro.fs.namespace import Namespace
from repro.fs.vfs import VFS
from repro.metrics.counter import MetricsRegistry
from repro.serve import SessionHost
from repro.serve.replica import ReplicaFeed, ReplicaStandby

WIDTH, HEIGHT = 160, 60
GOLDENS = pathlib.Path(__file__).resolve().parents[3] / "tests" / "goldens"

# the figures the check drives, in walkthrough order
FIGURE_NAMES = ("fig05_headers", "fig06_messages", "fig07_stack",
                "fig08_openline", "fig09_openline2", "fig10_uses",
                "fig11_culprit", "fig12_mk")

HEARTBEAT = 0.1        # feed heartbeat; detection = 3 missed beats
DETECT_TIMEOUT = 30.0  # how long the parent waits for feed silence
CHILD_TIMEOUT = 30.0   # how long the parent waits for the child banner


def _split_points(seed: int, names: list[str],
                  scripts: dict[str, dict]) -> dict[str, int]:
    """Seeded per-figure kill points: how many records ship pre-kill.

    Every figure is left genuinely mid-stream — at least one record
    written (so the session exists and shipped) and, where the figure
    is long enough, at least one still unwritten (so promotion must
    hand the resume index back to the client).
    """
    import random
    rng = random.Random(f"replicacheck:{seed}")
    points: dict[str, int] = {}
    for name in names:
        total = len(scripts[name]["lines"])
        if total <= 1:
            points[name] = total
        else:
            points[name] = max(1, min(total - 1,
                                      round(total * rng.uniform(0.3, 0.8))))
    return points


def _record_scripts(names: list[str]) -> dict[str, dict]:
    """Each figure's input records, split into per-write lines."""
    from repro.tools.sessioncheck import record_figures

    with MetricsRegistry("replicacheck.models").activate():
        recorded = record_figures()
    scripts: dict[str, dict] = {}
    for name in names:
        if name not in recorded:
            raise ValueError(f"no recorded journal for figure {name!r}")
        scripts[name] = {
            "lines": recorded[name]["input"].splitlines(keepends=True)}
    return scripts


def _mount(client: MuxClient) -> Namespace:
    ns = Namespace(VFS())
    ns.mkdir("/s", parents=True)
    ns.mount(mount_remote(client), "/s")
    return ns


# -- the child: a primary host shipping to the parent's standby -----------

def run_primary(standby_host: str, standby_port: int) -> int:
    """Host the primary until SIGKILL takes it.  Child entry point."""
    primary = SessionHost(width=WIDTH, height=HEIGHT)
    feed = ReplicaFeed(dial(standby_host, standby_port), mode="sync",
                       metrics=primary.metrics, heartbeat=HEARTBEAT)
    primary.attach_replica(feed)
    addr = primary.listen()
    print(f"primary {addr[0]} {addr[1]}", flush=True)
    while True:  # the parent's SIGKILL is the only way out
        time.sleep(60)


# -- the parent: drive, kill, promote, compare ----------------------------

def run_check(figures: int | None, seed: int) -> int:
    names = list(FIGURE_NAMES[:figures] if figures else FIGURE_NAMES)
    scripts = _record_scripts(names)
    points = _split_points(seed, names, scripts)
    problems: list[str] = []

    standby = ReplicaStandby(width=WIDTH, height=HEIGHT, id_prefix="rc.",
                             heartbeat=HEARTBEAT)
    sb_host, sb_port = standby.host.listen()
    child = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.replicacheck",
         "--primary", "--standby", f"{sb_host}:{sb_port}"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 [str(pathlib.Path(__file__).resolve().parents[2])]
                 + os.environ.get("PYTHONPATH", "").split(os.pathsep))})
    clients: list[MuxClient] = []
    try:
        banner = child.stdout.readline().split()
        if len(banner) != 3 or banner[0] != "primary":
            print(f"replicacheck: bad child banner {banner!r}",
                  file=sys.stderr)
            return 2
        addr = (banner[1], int(banner[2]))

        # every figure mid-stream: attach, write the seeded prefix,
        # leave the connection open (the sessions stay live)
        acked: dict[str, int] = {}
        for name in names:
            client = MuxClient(dial(*addr), aname=name)
            clients.append(client)
            ns = _mount(client)
            count = 0
            for line in scripts[name]["lines"][:points[name]]:
                ns.append("/s/input", line)
                count += 1  # the append returned: the write was acked
            acked[name] = count
        print(f"replicacheck: {len(names)} figures mid-stream, "
              f"{sum(acked.values())} writes acknowledged")

        # the real thing: SIGKILL, no teardown of any kind
        t_kill = time.monotonic()
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=10)
        deadline = t_kill + DETECT_TIMEOUT
        while standby.primary_alive(miss=3):
            if time.monotonic() > deadline:
                print("replicacheck: standby never noticed the kill",
                      file=sys.stderr)
                return 1
            time.sleep(HEARTBEAT / 5)
        detect_ms = (time.monotonic() - t_kill) * 1e3

        report = standby.promote()
        promote_ms = report["elapsed_us"] / 1e3
        problems += [f"promote: {p}" for p in report["problems"]]
        if report["sessions"] != len(names):
            problems.append(
                f"promotion adopted {report['sessions']} sessions, "
                f"expected {len(names)}")
        print(f"replicacheck: killed pid {child.pid}, detected in "
              f"{detect_ms:.0f}ms, promoted {report['sessions']} "
              f"sessions in {promote_ms:.1f}ms")

        # every figure resumes on the promoted standby and must land
        # byte-identical on its golden
        for name in names:
            try:
                client = MuxClient(standby.host.pipe(), aname=name)
            except FsError as exc:
                problems.append(f"{name}: re-attach failed: {exc}")
                continue
            try:
                ns = _mount(client)
                held = int(ns.read("/s/inputs"))
                if held < acked[name]:
                    problems.append(
                        f"{name}: acked-write loss — standby holds "
                        f"{held} records, primary acked {acked[name]}")
                for line in scripts[name]["lines"][held:]:
                    ns.append("/s/input", line)
                screen = ns.read("/s/screen")
            finally:
                client.close()
            golden = (GOLDENS / f"{name}.txt").read_text()
            if screen != golden:
                got = screen.splitlines()
                want = golden.splitlines()
                at = next((i + 1 for i, (g, w)
                           in enumerate(zip(got, want)) if g != w),
                          min(len(got), len(want)) + 1)
                problems.append(f"{name}: post-promotion screen differs "
                                f"from golden (first at line {at})")

        problems += [f"audit: {p}" for p in standby.host.audit()]
    finally:
        for client in clients:
            try:
                client.close()
            except (FsError, OSError):
                pass
        if child.poll() is None:
            child.kill()
            child.wait(timeout=10)
        child.stdout.close()
        standby.close()

    for problem in problems:
        print(f"replicacheck: {problem}", file=sys.stderr)
    if not problems:
        print(f"replicacheck: all {len(names)} post-promotion screens "
              f"byte-identical to goldens, zero acknowledged writes lost")
    return 1 if problems else 0


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    figures: int | None = None
    seed = 1
    primary = False
    standby_addr: str | None = None
    i = 0
    try:
        while i < len(args):
            arg = args[i]
            if arg == "--figures":
                i += 1
                figures = int(args[i])
                if not 1 <= figures <= len(FIGURE_NAMES):
                    raise ValueError(figures)
            elif arg == "--seed":
                i += 1
                seed = int(args[i])
            elif arg == "--primary":
                primary = True
            elif arg == "--standby":
                i += 1
                standby_addr = args[i]
            else:
                raise ValueError(arg)
            i += 1
    except (IndexError, ValueError) as exc:
        print(f"replicacheck: bad arguments: {exc}", file=sys.stderr)
        print("usage: replicacheck [--figures N] [--seed S]",
              file=sys.stderr)
        return 2
    if primary:
        if not standby_addr or ":" not in standby_addr:
            print("replicacheck: --primary needs --standby HOST:PORT",
                  file=sys.stderr)
            return 2
        host, _, port = standby_addr.rpartition(":")
        return run_primary(host, int(port))
    return run_check(figures, seed)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
