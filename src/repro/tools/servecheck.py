"""Prove the wire path is invisible: remote /mnt/help, identical bytes.

The paper's claim that ``help`` *is* a file server is only honest if
serving the UI across a real transport changes nothing.  This check
replays each of the Figures 5-12 scenarios twice over:

1. the window server is exported through :class:`repro.fs.mux.WireServer`
   — over a real TCP socket by default, or in-memory pipes with forced
   short reads (``--pipe``) — and mounted back into the namespace as a
   :class:`~repro.fs.mux.RemoteDir` proxy, replacing the local mount;
2. the figure's session is driven exactly as the benchmarks drive it,
   with ``help``, the shell and the tool scripts untouched;
3. the rendered screen is compared byte-for-byte against the pinned
   golden (``tests/goldens/fig*.txt``), and the ``wire.rpc.*``
   counters are checked to confirm traffic really crossed the wire.

Runs as a CLI (wired into the verify skill next to figcheck and
faultcheck)::

    python -m repro.tools.servecheck [--pipe]

Exit 0 when every figure matches, 1 on drift or a silent wire, 2 on
usage errors.
"""

from __future__ import annotations

import pathlib
import sys

from repro.core.render import render_screen
from repro.core.window import Subwindow
from repro.fs.mux import (
    MuxClient,
    WireServer,
    channel_pair,
    dial,
    mount_remote,
)
from repro.metrics.counter import counter, counters
from repro.tools.corpus import SRC_DIR
from repro.tools.install import System, build_system

MOUNT = "/mnt/help"
GOLDENS = pathlib.Path(__file__).resolve().parents[3] / "tests" / "goldens"

USES = "./dat.h:136\nexec.c:213\nexec.c:252\nhelp.c:35\n"


# -- the Figures 5-12 scenarios, exactly as the benchmarks drive them --------


def fig05_headers(system: System) -> None:
    h = system.help
    h.execute_text(h.window_by_name("/help/mail/stf"), "headers")


def fig06_messages(system: System) -> None:
    h = system.help
    mail = h.window_by_name("/help/mail/stf")
    h.execute_text(mail, "headers")
    mbox = h.window_by_name("/mail/box/rob/mbox")
    h.point_at(mbox, mbox.body.string().index("19:26"))
    h.execute_text(mail, "messages")


def fig07_stack(system: System) -> None:
    h = system.help
    mail = h.window_by_name("/help/mail/stf")
    h.execute_text(mail, "headers")
    mbox = h.window_by_name("/mail/box/rob/mbox")
    h.point_at(mbox, mbox.body.string().index("sean"))
    h.execute_text(mail, "messages")
    msg = h.window_by_name("From")
    h.point_at(msg, msg.body.string().index("176153"))
    h.execute_text(h.window_by_name("/help/db/stf"), "stack")


def fig08_openline(system: System) -> None:
    h = system.help
    trace = "strlen(s=0x0) called from textinsert+0x30 text.c:32\n"
    stack_w = h.new_window(f"{SRC_DIR}/", trace)
    h.point_at(stack_w, stack_w.body.string().index("text.c:32") + 2)
    h.exec_builtin("Open", stack_w)


def fig09_openline2(system: System) -> None:
    h = system.help
    stack_w = h.new_window(
        f"{SRC_DIR}/",
        "errs(s=0x0) called from Xdie2+0x14 exec.c:252\n"
        "lookup(s=0x40be8) called from execute+0x50 exec.c:207\n")
    h.point_at(stack_w, stack_w.body.string().index("exec.c:252") + 2)
    h.exec_builtin("Open", stack_w)


def fig10_uses(system: System) -> None:
    h = system.help
    exec_w = h.open_path(f"{SRC_DIR}/exec.c", line=252)
    start = exec_w.body.pos_of_line(252)
    n_pos = exec_w.body.string().index("errs(n)", start) + 5
    h.point_at(exec_w, n_pos)
    h.execute_text(h.window_by_name("/help/cbr/stf"), "uses *.c")


def fig11_culprit(system: System) -> None:
    h = system.help
    uses_w = h.new_window(f"{SRC_DIR}/", USES)
    h.point_at(uses_w, uses_w.body.string().index("help.c:35") + 2)
    h.exec_builtin("Open", uses_w)
    h.point_at(uses_w, uses_w.body.string().index("exec.c:213") + 2)
    h.exec_builtin("Open", uses_w)


def fig12_mk(system: System) -> None:
    # two rounds, like the benchmark's timing loop: the first builds
    # the whole program, the second (the figure) recompiles exec.c
    # alone after the Cut + Put! edit
    h = system.help
    exec_w = h.open_path(f"{SRC_DIR}/exec.c", line=213)
    edit_stf = h.window_by_name("/help/edit/stf")
    cbr_stf = h.window_by_name("/help/cbr/stf")
    original = exec_w.body.string()
    for _ in range(2):
        h.replace_body(exec_w, original)
        for w in list(h.windows.values()):
            if w.name() == f"{SRC_DIR}/mk":
                h.close_window(w)
        start, end = exec_w.body.line_span(213)
        h.select(exec_w, start, end + 1)
        h.exec_builtin("Cut", edit_stf)
        h.exec_builtin("Put!", exec_w, Subwindow.TAG)
        h.execute_text(cbr_stf, "mk")


# (name, scenario, uses_wire): figures 8, 9 and 11 exercise built-in
# Open on plain files — no tool script, so no /mnt/help traffic; they
# prove the remote mount does not *disturb* an unrelated session.
FIGURES = [
    ("fig05_headers", fig05_headers, True),
    ("fig06_messages", fig06_messages, True),
    ("fig07_stack", fig07_stack, True),
    ("fig08_openline", fig08_openline, False),
    ("fig09_openline2", fig09_openline2, False),
    ("fig10_uses", fig10_uses, True),
    ("fig11_culprit", fig11_culprit, False),
    ("fig12_mk", fig12_mk, True),
]


def wire_mount(system: System, transport: str = "socket"
               ) -> tuple[WireServer, MuxClient]:
    """Swap the local /mnt/help mount for one served across the wire."""
    server = WireServer(system.helpfs.root)
    if transport == "socket":
        host, port = server.listen()
        channel = dial(host, port)
    else:
        client_end, server_end = channel_pair(max_chunk=13)
        server.serve(server_end)
        channel = client_end
    client = MuxClient(channel)
    system.ns.unmount(MOUNT)
    system.ns.mount(mount_remote(client), MOUNT)
    return server, client


def check_figure(name: str, scenario, transport: str,
                 uses_wire: bool = True,
                 width: int = 160, height: int = 60) -> list[str]:
    """Drive one figure over the wire; report every divergence."""
    problems: list[str] = []
    golden = GOLDENS / f"{name}.txt"
    if not golden.exists():
        return [f"{name}: no golden at {golden}"]
    system = build_system(width=width, height=height)
    server, client = wire_mount(system, transport)
    rpcs_before = counter("wire.rpc.open") + counter("wire.rpc.write")
    try:
        scenario(system)
        got = render_screen(system.help)
    except Exception as exc:  # noqa: BLE001 - any crash is the finding
        return [f"{name}: session failed over the wire: {exc!r}"]
    finally:
        client.close()
        server.close()
    want = golden.read_text()
    if got != want:
        line = _first_divergent_line(want, got)
        problems.append(f"{name}: differs from golden (first at line {line})")
    moved = counter("wire.rpc.open") + counter("wire.rpc.write")
    if uses_wire and moved == rpcs_before:
        problems.append(f"{name}: no traffic crossed the wire — the "
                        f"session bypassed the remote mount")
    return problems


def _first_divergent_line(want: str, got: str) -> int:
    for i, (a, b) in enumerate(zip(want.splitlines(), got.splitlines()),
                               start=1):
        if a != b:
            return i
    return min(want.count("\n"), got.count("\n")) + 1


def run(transport: str = "socket") -> list[str]:
    problems: list[str] = []
    for name, scenario, uses_wire in FIGURES:
        problems += check_figure(name, scenario, transport, uses_wire)
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    transport = "socket"
    if args == ["--pipe"]:
        transport = "pipe"
    elif args:
        print("usage: servecheck [--pipe]", file=sys.stderr)
        return 2
    problems = run(transport)
    for problem in problems:
        print(f"servecheck: {problem}", file=sys.stderr)
    if not problems:
        rpcs = " ".join(f"{k.removeprefix('wire.rpc.')}={v}" for k, v in
                        sorted(counters("wire.rpc.").items()))
        print(f"servecheck: Figures 5-12 byte-identical over the "
              f"{transport} transport")
        print(f"servecheck: rpcs {rpcs}")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
