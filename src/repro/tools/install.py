"""Assembling the whole world: one call builds the paper's machine.

:func:`build_system` creates the VFS and namespace, installs the
reconstructed help sources, the profile, the seven-message mailbox,
the broken process, the simulated userland, the ``/bin/help``
utilities, and the four tool directories (edit, cbr, db, mail) with
their rc scripts — then boots a :class:`~repro.core.help.Help`
session with ``/mnt/help`` mounted.  Everything the example session
in the paper does is reachable from the returned :class:`System`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.execute import CommandResult
from repro.core.help import Help
from repro.fs import VFS, Namespace
from repro.helpfs import HelpFS
from repro.mail import Mailbox, cmd_mbox, sample_mailbox
from repro.mk import cmd_imk, cmd_mk, cmd_vc, cmd_vl
from repro.proc import ProcessTable, cmd_adb, cmd_ps, paper_crash
from repro.session import SessionContext
from repro.shell import Interp
from repro.shell.commands import DEFAULT_COMMANDS
from repro.cbrowse.tools import CBROWSE_COMMANDS
from repro.tools import corpus
from repro.tools.helpers import make_help_commands

PROFILE = """# /usr/rob/lib/profile — the Figure 2 profile
bind -c $home/tmp /tmp
bind -a $home/bin/rc /bin
fn x { if(! ~ $#* 0) $* }
switch($service){
case terminal
\tprompt=('g* ' '')
\tsite=plan9
case cpu
\tnews
}
"""

# -- the tool scripts ----------------------------------------------------------

# The names each stf file advertises; "A help window on such a file
# behaves much like a menu, but is really just a window on a plain
# file."
EDIT_STF = "Open\nPattern \"\nText ' '\nCut Paste Snarf\nWrite New\n"
CBR_STF = "Open mk src decl uses *.c\n"
DB_STF = "ps broke pc regs\nstack kstack nextkstack\n"
MAIL_STF = "headers messages delete reread send\n"

# The decl script, transliterated from the paper (the shape —
# parse, new window, tag through help/buf, cpp|rcc|sed 1q into
# bodyapp — is the original's; the ctl grammar is ours).
CBR_DECL = """eval `{help/parse -c}
x=`{cat /mnt/help/new/ctl}
{
\techo tag $dir/ Close!
} | help/buf > /mnt/help/$x/ctl
cpp $cppflags $file |
help/rcc -w -g -i$id -n$line |
sed 1q > /mnt/help/$x/bodyapp
"""

CBR_USES = """eval `{help/parse -c}
x=`{cat /mnt/help/new/ctl}
echo tag $dir/ Close! > /mnt/help/$x/ctl
cd $dir
help/cuses -i$id -f$file -n$line $dir/*.c > /mnt/help/$x/bodyapp
"""

# src closes the loop decl leaves open: it jumps straight to the
# declaration (the paper: "A future change to help will be to close
# this loop so the Open operation also happens automatically").
CBR_SRC = """eval `{help/parse -c}
loc=`{cpp $cppflags $file | help/rcc -w -g -i$id -n$line | sed 1q}
cd $dir
help/goto $loc
"""

CBR_MK = """eval `{help/parse}
x=`{cat /mnt/help/new/ctl}
echo tag $dir/mk Close! > /mnt/help/$x/ctl
cd $dir
mk > /mnt/help/$x/bodyapp
"""

CBR_IMK = """eval `{help/parse}
x=`{cat /mnt/help/new/ctl}
echo tag $dir/imk Close! > /mnt/help/$x/ctl
cd $dir
imk > /mnt/help/$x/bodyapp
"""

CBR_OPEN = """eval `{help/parse}
cd $dir
help/goto $name
"""

DB_PS = """x=`{cat /mnt/help/new/ctl}
echo tag ps Close! > /mnt/help/$x/ctl
ps > /mnt/help/$x/bodyapp
"""

DB_BROKE = """x=`{cat /mnt/help/new/ctl}
echo tag broke Close! > /mnt/help/$x/ctl
ps -b > /mnt/help/$x/bodyapp
"""

DB_STACK = """eval `{help/parse}
x=`{cat /mnt/help/new/ctl}
d=`{echo '$s' | adb $word}
echo tag $d/ $word stack Close! > /mnt/help/$x/ctl
echo '$C' | adb $word > /mnt/help/$x/bodyapp
"""

DB_KSTACK = """eval `{help/parse}
x=`{cat /mnt/help/new/ctl}
echo tag $word kstack Close! > /mnt/help/$x/ctl
echo '$K' | adb $word > /mnt/help/$x/bodyapp
"""

DB_NEXTKSTACK = """eval `{help/parse}
next=`{ps -b | grep -v $word | sed 1q}
if(~ $#next 0) echo no more broken processes
if not {
\tx=`{cat /mnt/help/new/ctl}
\techo tag $next(1) kstack Close! > /mnt/help/$x/ctl
\techo '$K' | adb $next(1) > /mnt/help/$x/bodyapp
}
"""

DB_PC = """eval `{help/parse}
echo '$p' | adb $word
"""

DB_REGS = """eval `{help/parse}
x=`{cat /mnt/help/new/ctl}
echo tag $word regs Close! > /mnt/help/$x/ctl
echo '$r' | adb $word > /mnt/help/$x/bodyapp
"""

MAIL_HEADERS = """x=`{cat /mnt/help/new/ctl}
box=`{mbox path}
echo tag $box /bin/help/mail Close! > /mnt/help/$x/ctl
mbox headers > /mnt/help/$x/bodyapp
"""

MAIL_MESSAGES = """eval `{help/parse}
x=`{cat /mnt/help/new/ctl}
who=`{mbox from $first}
echo tag From $who Close! > /mnt/help/$x/ctl
mbox show $first > /mnt/help/$x/bodyapp
"""

MAIL_DELETE = """eval `{help/parse}
mbox delete $first
/help/mail/reread
"""

MAIL_REREAD = """box=`{mbox path}
x=`{help/window $box}
if(~ $#x 0) /help/mail/headers
if not mbox headers > /mnt/help/$x/body
"""

MAIL_SEND = """eval `{help/parse}
cat /mnt/help/$wid/body | mbox sendstdin $word
"""

# The rc browser: the paper's "given another language, we would need
# only to modify the compiler" claim, applied to rc itself.
RCB_STF = "rdecl ruses *.rc\n"

RCB_RDECL = """eval `{help/parse}
loc=`{help/rdecl -i$word $dir/*}
cd $dir
help/goto $loc
"""

RCB_RUSES = """eval `{help/parse}
x=`{cat /mnt/help/new/ctl}
echo tag $dir/ Close! > /mnt/help/$x/ctl
help/ruses -i$word $dir/* > /mnt/help/$x/bodyapp
"""

_TOOL_SCRIPTS = {
    "/help/edit/stf": EDIT_STF,
    "/help/cbr/stf": CBR_STF,
    "/help/cbr/decl": CBR_DECL,
    "/help/cbr/uses": CBR_USES,
    "/help/cbr/src": CBR_SRC,
    "/help/cbr/mk": CBR_MK,
    "/help/cbr/imk": CBR_IMK,
    "/help/cbr/open": CBR_OPEN,
    "/help/db/stf": DB_STF,
    "/help/db/ps": DB_PS,
    "/help/db/broke": DB_BROKE,
    "/help/db/stack": DB_STACK,
    "/help/db/kstack": DB_KSTACK,
    "/help/db/nextkstack": DB_NEXTKSTACK,
    "/help/db/pc": DB_PC,
    "/help/db/regs": DB_REGS,
    "/help/mail/stf": MAIL_STF,
    "/help/mail/headers": MAIL_HEADERS,
    "/help/mail/messages": MAIL_MESSAGES,
    "/help/mail/delete": MAIL_DELETE,
    "/help/mail/reread": MAIL_REREAD,
    "/help/mail/send": MAIL_SEND,
}

# Installed only with build_system(extra_tools=True): the rc browser
# is an extension, and loading it at boot would change the Figure 4
# screen the benches reproduce.
_EXTRA_TOOL_SCRIPTS = {
    "/help/rcb/stf": RCB_STF,
    "/help/rcb/rdecl": RCB_RDECL,
    "/help/rcb/ruses": RCB_RUSES,
}

# /bin/help wrappers: the scripts say "help/parse"; rc finds these on
# $path and they forward to the registered commands.
_BIN_HELP = {
    "/bin/help/parse": "help-parse $*\n",
    "/bin/help/buf": "help-buf\n",
    "/bin/help/goto": "help-goto $*\n",
    "/bin/help/window": "help-window $*\n",
    "/bin/help/rcc": "help-rcc $*\n",
    "/bin/help/cuses": "help-cuses $*\n",
    "/bin/help/cdecls": "help-cdecls $*\n",
    "/bin/help/rdecl": "help-rdecl $*\n",
    "/bin/help/ruses": "help-ruses $*\n",
}


@dataclass
class System:
    """The assembled world."""

    ns: Namespace
    help: Help
    helpfs: HelpFS
    procs: ProcessTable
    mailbox: Mailbox
    commands: dict
    user: str = "rob"
    context: SessionContext | None = None

    def shell(self, cwd: str = "/") -> Interp:
        """A fresh interactive shell on the shared namespace."""
        interp = Interp(self.ns, cwd=cwd, commands=self.commands,
                        context=self.context)
        recorder = getattr(self.help, "journal", None)
        if recorder is not None:
            interp.trace = recorder.shell_trace
        interp.set("user", [self.user])
        interp.set("home", [f"/usr/{self.user}"])
        interp.set("service", ["terminal"])
        interp.set("cputype", ["mips"])
        return interp


def build_system(width: int = 100, height: int = 40,
                 user: str = "rob", boot: bool = True,
                 remote: bool = False, extra_tools: bool = False,
                 session_id: str = "local",
                 metrics=None) -> System:
    """Create the full simulated machine and boot help on it.

    With ``remote=True``, external commands run on a simulated CPU
    server over an exported namespace instead of on the terminal —
    the multi-machine arrangement the paper's Discussion sketches.
    With ``extra_tools=True``, the extension tools (the rc browser in
    ``/help/rcb``) load at boot alongside the paper's four.

    The world gets a :class:`~repro.session.SessionContext` named
    *session_id*; pass *metrics* (a
    :class:`~repro.metrics.MetricsRegistry`) to give the session a
    private ledger — by default it reports into whatever registry is
    active for the calling context, so standalone use is unchanged.
    """
    from repro.metrics.counter import current_registry

    vfs = VFS()
    ns = Namespace(vfs)
    context = SessionContext(
        session_id=session_id, ns=ns,
        metrics=metrics if metrics is not None else current_registry())
    for directory in ("/bin/help", "/tmp", "/mnt", "/lib", "/sys/include",
                      f"/usr/{user}/lib", f"/usr/{user}/tmp",
                      f"/usr/{user}/bin/rc",
                      "/help/edit", "/help/cbr", "/help/db", "/help/mail"):
        ns.mkdir(directory, parents=True)

    corpus.install_help_sources(ns)
    ns.write(f"/usr/{user}/lib/profile", PROFILE)
    ns.write("/lib/news", "UNIX in song & verse — send contributions.\n")
    ns.write("/lib/fortunes",
             "Minimalism is not a style, it is an attitude.\n"
             "The best user interface is no user interface at all.\n"
             "When in doubt, use brute force. - Ken Thompson\n")
    ns.write("/sys/include/u.h", "typedef unsigned long ulong;\n")
    ns.write("/sys/include/libc.h",
             "int strlen(char *s);\nchar *strchr(char *s, int c);\n")
    for path, text in _TOOL_SCRIPTS.items():
        ns.write(path, text)
    if extra_tools:
        ns.mkdir("/help/rcb", parents=True)
        for path, text in _EXTRA_TOOL_SCRIPTS.items():
            ns.write(path, text)
    for path, text in _BIN_HELP.items():
        ns.write(path, text)

    procs = ProcessTable()
    paper_crash(procs)
    mailbox = sample_mailbox(ns, user)

    commands = dict(DEFAULT_COMMANDS)
    commands["cpp"] = CBROWSE_COMMANDS["cpp"]
    commands["help-rcc"] = CBROWSE_COMMANDS["rcc"]
    commands["help-cuses"] = CBROWSE_COMMANDS["cuses"]
    commands["help-cdecls"] = CBROWSE_COMMANDS["cdecls"]
    from repro.cbrowse.rcbrowse import RCBROWSE_COMMANDS
    commands.update(RCBROWSE_COMMANDS)
    commands["mk"] = cmd_mk
    commands["imk"] = cmd_imk
    commands["vc"] = cmd_vc
    commands["vl"] = cmd_vl
    commands["mbox"] = cmd_mbox
    commands["adb"] = cmd_adb(procs)
    commands["ps"] = cmd_ps(procs)

    # filled in once help exists; the runner closes over it so shells
    # it spawns inherit the session's journal trace hook
    state: dict = {}

    def local_runner(cmdline: str, directory: str,
                     env: dict[str, str]) -> CommandResult:
        interp = Interp(ns, cwd=directory, commands=commands,
                        context=context)
        interp.set("user", [user])
        interp.set("home", [f"/usr/{user}"])
        interp.set("cppflags", [])
        for key, value in env.items():
            interp.set(key, [value])
        recorder = getattr(state.get("help"), "journal", None)
        if recorder is not None:
            interp.trace = recorder.shell_trace
        result = interp.run(cmdline)
        return CommandResult(result.status, result.stdout, result.stderr)

    runner = local_runner
    if remote:
        from repro.proc.cpu import CpuServer, RemoteRunner
        server = CpuServer()
        # dialing is deferred until help has mounted /mnt/help, so the
        # exported namespace includes the window file server
        deferred: dict[str, RemoteRunner] = {}

        def runner(cmdline: str, directory: str,
                   env: dict[str, str]) -> CommandResult:
            if "conn" not in deferred:
                deferred["conn"] = RemoteRunner(
                    server.dial(ns, commands, user))
            return deferred["conn"](cmdline, directory, env)

    help_app = Help(ns, width, height, runner=runner, context=context)
    state["help"] = help_app
    commands.update(make_help_commands(help_app))
    helpfs = HelpFS(help_app, context=context)
    helpfs.mount(ns)
    if boot:
        help_app.boot()
    return System(ns=ns, help=help_app, helpfs=helpfs, procs=procs,
                  mailbox=mailbox, commands=commands, user=user,
                  context=context)
