"""The help sources, reconstructed to the paper's coordinates.

The example session depends on exact file:line landmarks:

=============  =====================================================
dat.h:136      ``extern uchar *n;`` — "clearly the declaration"
help.c:35      ``n = (uchar*)"a test string";`` — the initialization
exec.c:213     ``n = 0;`` in Xdie1 — "the jackpot of this contrived
               example": the write that cleared it
exec.c:252     ``errs(n);`` in Xdie2 — the read that crashed
exec.c:101     the call of Xdie2 from lookup
exec.c:207     the call of lookup from execute
text.c:32      ``n = strlen((char*)s);`` in textinsert (a *local* n)
errs.c:34      the call of textinsert from errs
ctrl.c:331     the call of execute from control
=============  =====================================================

``install_help_sources`` writes the tree and returns the landmark
table; `_landmark` assertions make line drift impossible.
"""

from __future__ import annotations

from repro.fs.namespace import Namespace

SRC_DIR = "/usr/rob/src/help"


def _pad(lines: list[str], upto: int, what: str) -> None:
    """Fill with plausible comment lines so the next line is *upto*."""
    assert len(lines) < upto, f"{what}: already past line {upto}"
    i = 0
    while len(lines) < upto - 1:
        lines.append(f"/* {what} {i} */")
        i += 1


def _landmark(lines: list[str], expect: int, what: str) -> None:
    assert len(lines) == expect, \
        f"{what} landed on line {len(lines)}, wanted {expect}"


def _dat_h() -> str:
    lines = [
        "/*",
        " *\tstring routines",
        " */",
        "typedef struct Addr Addr;",
        "typedef struct Client Client;",
        "typedef struct Page Page;",
        "typedef struct Proc Proc;",
        "typedef struct String String;",
        "typedef struct Text Text;",
        "typedef unsigned char uchar;",
        "",
        "struct Addr {",
        "\tint q0;",
        "\tint q1;",
        "};",
        "",
        "struct Text {",
        "\tint org;",
        "\tint nchars;",
        "\tint q0;",
        "\tchar *base;",
        "};",
        "",
        "struct Page {",
        "\tText *text;",
        "\tPage *next;",
        "\tchar *name;",
        "};",
    ]
    _pad(lines, 136, "dat.h declarations")
    lines.append("extern uchar *n;")
    _landmark(lines, 136, "extern uchar *n;")
    lines.extend([
        "extern int nwindows;",
        "extern char *version;",
    ])
    return "\n".join(lines) + "\n"


def _fns_h() -> str:
    lines = [
        "void\tcontrol(void);",
        "void\texecute(Text *t, int p0, int p1);",
        "void\tlookup(char *s);",
        "void\tXdie1(int argc, char *argv[], Page *page, Text *curt);",
        "void\tXdie2(int argc, char *argv[], Page *page, Text *curt);",
        "void\terrs(uchar *s);",
        "int\ttextinsert(int sel, Text *t, uchar *s, int q0, int full);",
        "int\tstrinsert(Text *t, uchar *s, int nn, int q0);",
        "void\tfrinsert(Text *t, uchar **s, int p0);",
        "void\tnewsel(Text *t);",
        "int\tstrlen(char *s);",
        "char*\tstrchr(char *s, int c);",
        "Page*\tfindopen1(Page *p, char *name);",
    ]
    return "\n".join(lines) + "\n"


def _help_c() -> str:
    lines = [
        "#include \"dat.h\"",
        "#include \"fns.h\"",
        "",
        "int mouseslave;",
        "int kbdslave;",
        "",
    ]
    _pad(lines, 30, "help.c setup")
    lines.extend([
        "void",
        "main(int argc, char *argv[])",
        "{",
        "\tint fn;",
        "",
    ])
    lines.append("\tn = (uchar*)\"a test string\";")
    _landmark(lines, 35, "n = \"a test string\";")
    lines.extend([
        "\tfn = 0;",
        "\tnwindows = fn;",
        "\tcontrol();",
        "}",
    ])
    return "\n".join(lines) + "\n"


def _exec_c() -> str:
    lines = [
        "#include \"dat.h\"",
        "#include \"fns.h\"",
        "",
    ]
    _pad(lines, 95, "exec.c tables")
    lines.extend([
        "void",                          # 95
        "lookup(char *s)",               # 96
        "{",                             # 97
        "\tif(s == 0)",                  # 98
        "\t\treturn;",                   # 99
        "\tif(strchr(s, 'X'))",          # 100
    ])
    lines.append("\t\tXdie2(0, 0, 0, 0);")
    _landmark(lines, 101, "Xdie2 call")
    lines.extend([
        "}",
        "",
    ])
    _pad(lines, 203, "exec.c helpers")
    lines.extend([
        "void",                                  # 203
        "execute(Text *t, int p0, int p1)",      # 204
        "{",                                     # 205
        "\tint i;",                              # 206
    ])
    lines.append("\tlookup(t->base + p0 + p1 + i);")
    _landmark(lines, 207, "lookup call")
    lines.extend([
        "}",                                     # 208
        "",                                      # 209
        "void",                                  # 210
        "Xdie1(int argc, char *argv[], Page *page, Text *curt)",  # 211
        "{",                                     # 212
    ])
    lines.append("\tn = 0;")
    _landmark(lines, 213, "n = 0;")
    lines.extend([
        "}",
        "",
    ])
    _pad(lines, 249, "exec.c command glue")
    lines.extend([
        "void",                                  # 249
        "Xdie2(int argc, char *argv[], Page *page, Text *curt)",  # 250
        "{",                                     # 251
    ])
    lines.append("\terrs(n);")
    _landmark(lines, 252, "errs(n);")
    lines.extend([
        "}",
        "",
        "/*",
        " * Exact match",
        " */",
        "Page*",
        "findopen1(Page *p, char *name)",
        "{",
        "\tchar *s;",
        "\tint n;",
        "\tPage *q;",
        "",
        "Again:",
        "\tif(p == 0)",
        "\t\treturn p;",
        "\ts = p->name;",
        "\tn = strlen(s);",
        "\tq = p->next;",
        "\tif(n == 0)",
        "\t\tgoto Again;",
        "\treturn q;",
        "}",
    ])
    return "\n".join(lines) + "\n"


def _errs_c() -> str:
    lines = [
        "#include \"dat.h\"",
        "#include \"fns.h\"",
        "",
        "extern Text *errtext;",
    ]
    _pad(lines, 28, "errs.c buffers")
    lines.extend([
        "void",                          # 28
        "errs(uchar *s)",                # 29
        "{",                             # 30
        "\tint full;",                   # 31
        "",                              # 32
        "\tfull = 1;",                   # 33
    ])
    lines.append("\ttextinsert(1, errtext, s, 13, full);")
    _landmark(lines, 34, "textinsert call")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _text_c() -> str:
    lines = [
        "#include \"dat.h\"",
        "#include \"fns.h\"",
        "",
        "Text *errtext;",
        "",
    ]
    _pad(lines, 25, "text.c helpers")
    lines.extend([
        "int",                                           # 25
        "textinsert(int sel, Text *t, uchar *s, int q0, int full)",  # 26
        "{",                                             # 27
        "\tint nn;",                                     # 28
        "\tint p0;",                                     # 29
        "\tif(sel)",                                     # 30
        "\t\tnewsel(t);",                                # 31
    ])
    lines.append("\tnn = strlen((char*)s);")
    _landmark(lines, 32, "strlen call")
    lines.extend([
        "\tstrinsert(t, s, nn, q0);",
        "\tp0 = q0 - t->org;",
        "\tif(p0 < 0)",
        "\t\tt->org += nn;",
        "\telse if(p0 <= t->nchars)",
        "\t\tfrinsert(t, &s, p0);",
        "\tt->q0 = q0;",
        "\tif(!full)",
        "\t\treturn 0;",
        "\treturn nn;",
        "}",
    ])
    return "\n".join(lines) + "\n"


def _ctrl_c() -> str:
    lines = [
        "#include \"dat.h\"",
        "#include \"fns.h\"",
        "",
    ]
    _pad(lines, 318, "ctrl.c event loop")
    lines.extend([
        "void",              # 318
        "control(void)",     # 319
        "{",                 # 320
        "\tText *t;",        # 321
        "\tint p0;",         # 322
        "\tint p1;",         # 323
        "",                  # 324
        "\tt = 0;",          # 325
        "\tp0 = 2;",         # 326
        "\tp1 = 2;",         # 327
        "\tfor(;;){",        # 328
        "\t\tif(t == 0)",    # 329
        "\t\t\tbreak;",      # 330
    ])
    lines.append("\t\texecute(t, p0, p1);")
    _landmark(lines, 331, "execute call")
    lines.extend([
        "\t}",
        "}",
    ])
    return "\n".join(lines) + "\n"


def _file_c() -> str:
    return (
        "#include \"dat.h\"\n"
        "#include \"fns.h\"\n"
        "\n"
        "/* file ops */\n"
        "int\n"
        "fileload(Text *t, char *name)\n"
        "{\n"
        "\tif(name == 0)\n"
        "\t\treturn -1;\n"
        "\treturn 0;\n"
        "}\n"
    )


def _mkfile() -> str:
    # mirrors Figure 12's compile: vc -w exec.c; vl help.v ... (Plan 9
    # mips toolchain).  Our mk substrate reads this dependency form.
    return (
        "OBJS=help.v ctrl.v exec.v errs.v text.v file.v\n"
        "\n"
        "help: $OBJS\n"
        "\tvl -o help $OBJS -lg -lregexp -ldmalloc\n"
        "\n"
        "%.v: %.c dat.h fns.h\n"
        "\tvc -w $stem.c\n"
    )


#: name -> builder
_FILES = {
    "dat.h": _dat_h,
    "fns.h": _fns_h,
    "help.c": _help_c,
    "exec.c": _exec_c,
    "errs.c": _errs_c,
    "text.c": _text_c,
    "ctrl.c": _ctrl_c,
    "file.c": _file_c,
    "mkfile": _mkfile,
}

#: the coordinates the figures rely on
LANDMARKS = {
    "n-declaration": ("dat.h", 136),
    "n-initialized": ("help.c", 35),
    "n-cleared": ("exec.c", 213),
    "n-read": ("exec.c", 252),
    "xdie2-call": ("exec.c", 101),
    "lookup-call": ("exec.c", 207),
    "strlen-call": ("text.c", 32),
    "textinsert-call": ("errs.c", 34),
    "execute-call": ("ctrl.c", 331),
}


def install_help_sources(ns: Namespace, directory: str = SRC_DIR,
                         ) -> dict[str, tuple[str, int]]:
    """Write the reconstructed sources under *directory*.

    Returns :data:`LANDMARKS` for callers that assert coordinates.
    """
    ns.mkdir(directory, parents=True)
    for name, builder in _FILES.items():
        ns.write(f"{directory}/{name}", builder())
    return dict(LANDMARKS)
