"""Record/replay tracing: every figure session as a replayable artifact.

For each of the Figures 5-12 scenarios this check

1. **records** the session: a journal is attached to a fresh system
   and the scenario drives it exactly as the benchmarks do;
2. **replays** the journal headlessly into a second fresh system (a
   shadow journal regenerates the trace stream as it goes);
3. **compares** — the final screen byte-for-byte against the pinned
   golden (``tests/goldens/fig*.txt``), the regenerated records
   against the recorded ones (reporting the **first divergent
   sequence number**), and, with ``--screens``, a screen CRC after
   every input record;
4. **crash-recovers** — one scenario is re-run with a ``crash`` fault
   tearing the journal mid-append, and the recovered session must
   render byte-identical to the crashed session's pre-crash screen.

Replay also lands per-record latency samples in the
``replay.apply_us`` histograms, so a replay doubles as a profile.

When a figure fails, its journal is written to
``bench_artifacts/journals/<fig>.journal`` — a red run ships its own
repro.  Runs as a CLI (wired into the verify skill)::

    python -m repro.tools.replaycheck [--screens]

Exit 0 when every figure replays clean, 1 on divergence, 2 on usage
errors.
"""

from __future__ import annotations

import pathlib
import sys

from repro.core.render import render_screen
from repro.fs.errors import Crashed
from repro.fs.faults import Fault, FaultPlan, wrap
from repro.journal import Journal, attach, scan_text
from repro.journal.recorder import divergence, replay
from repro.journal.recovery import recover
from repro.metrics.counter import counter
from repro.tools.install import System, build_system
from repro.tools.servecheck import FIGURES, GOLDENS, fig07_stack

JOURNAL_PATH = "/usr/rob/help.journal"
ARTIFACTS = pathlib.Path("bench_artifacts") / "journals"


def record_figure(scenario, width: int = 160, height: int = 60,
                  trace_screens: bool = False) -> tuple[System, str]:
    """Drive *scenario* with a journal attached; return (system, text)."""
    system = build_system(width=width, height=height)
    journal = Journal.create(system.ns, JOURNAL_PATH)
    attach(system.help, journal, ns=system.ns, trace_screens=trace_screens)
    scenario(system)
    journal.flush()
    return system, system.ns.read(JOURNAL_PATH)


def replay_journal(text: str, width: int = 160, height: int = 60,
                   trace_screens: bool = False):
    """Replay journal *text* into a fresh system with a shadow journal.

    Returns ``(system, shadow_journal, scan)`` — the shadow journal
    holds the regenerated record stream for divergence comparison.
    """
    scan = scan_text(text)
    if scan.torn:
        raise ValueError(f"journal is torn: {scan.problems}")
    fresh = build_system(width=width, height=height)
    shadow = Journal()
    attach(fresh.help, shadow, ns=fresh.ns, trace_screens=trace_screens)
    replay(fresh.help, scan.records)
    return fresh, shadow, scan


def check_figure(name: str, scenario, screens: bool = False) -> list[str]:
    """Record, replay, and compare one figure; report every divergence."""
    problems: list[str] = []
    golden = GOLDENS / f"{name}.txt"
    if not golden.exists():
        return [f"{name}: no golden at {golden}"]
    try:
        recorded, text = record_figure(scenario, trace_screens=screens)
    except Exception as exc:  # noqa: BLE001 - any crash is the finding
        return [f"{name}: recording failed: {exc!r}"]
    try:
        replayed, shadow, scan = replay_journal(text, trace_screens=screens)
    except Exception as exc:  # noqa: BLE001
        _save_journal(name, text)
        return [f"{name}: replay failed: {exc!r}"]
    got = render_screen(replayed.help)
    want = golden.read_text()
    if got != want:
        problems.append(f"{name}: replayed screen differs from golden")
    div = divergence(scan.records, shadow.records)
    if div is not None:
        seq, why = div
        problems.append(f"{name}: first divergent sequence number {seq}: "
                        f"{why}")
    if problems:
        _save_journal(name, text)
    return problems


def check_recovery(width: int = 160, height: int = 60) -> list[str]:
    """A crash-faulted session must recover to its pre-crash screen."""
    system = build_system(width=width, height=height)
    journal = Journal.create(system.ns, JOURNAL_PATH)
    recorder = attach(system.help, journal, ns=system.ns, snapshot_every=3)
    fig07_stack(system)
    recorder.compact()   # exercise snapshot + truncate on a live session
    pre_crash = render_screen(system.help, full=True)
    plan = FaultPlan(Fault(op="write", path="*/help.journal", crash=True))
    system.ns.mount(wrap(system.ns.walk("/usr/rob"), plan, base="/usr/rob"),
                    "/usr/rob")
    try:
        system.help.type_text("lost to the crash")
        return ["recovery: crash fault never fired"]
    except Crashed:
        pass
    system.ns.unmount("/usr/rob")
    text = system.ns.read(JOURNAL_PATH)
    fresh = build_system(width=width, height=height)
    try:
        report = recover(fresh.help, text)
    except Exception as exc:  # noqa: BLE001
        _save_journal("recovery", text)
        return [f"recovery: recover() failed: {exc!r}"]
    problems: list[str] = []
    if not report.torn:
        problems.append("recovery: the torn tail went undetected")
    if render_screen(fresh.help, full=True) != pre_crash:
        problems.append("recovery: recovered screen differs from the "
                        "crashed session's pre-crash screen")
    if problems:
        _save_journal("recovery", text)
    return problems


def _save_journal(name: str, text: str) -> None:
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    (ARTIFACTS / f"{name}.journal").write_text(text)


def run(screens: bool = False) -> list[str]:
    problems: list[str] = []
    for name, scenario, _ in FIGURES:
        problems += check_figure(name, scenario, screens=screens)
    problems += check_recovery()
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    screens = False
    if args == ["--screens"]:
        screens = True
    elif args:
        print("usage: replaycheck [--screens]", file=sys.stderr)
        return 2
    problems = run(screens=screens)
    for problem in problems:
        print(f"replaycheck: {problem}", file=sys.stderr)
    if not problems:
        mode = "with intermediate screens" if screens else "final screens"
        print(f"replaycheck: Figures 5-12 replay byte-identical "
              f"({mode}); crash recovery restores the pre-crash screen")
        print(f"replaycheck: {counter('journal.append.records')} appended, "
              f"{counter('journal.replay.records')} scanned, "
              f"{counter('journal.replay.applied')} applied, "
              f"{counter('journal.checksum.failed')} checksum failures")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
