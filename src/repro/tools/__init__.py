"""Wiring: the /help tool directories, the world builder, and helpers.

- :mod:`repro.tools.corpus` — reconstructs the C sources of ``help``
  itself with the exact coordinates the figures show (``dat.h:136``,
  ``exec.c:213``, ``exec.c:252``, ``help.c:35``, ``text.c:32`` ...);
- :mod:`repro.tools.helpers` — the ``help/parse`` and ``help/buf``
  utilities the tool scripts call;
- :mod:`repro.tools.install` — assembles the whole world: VFS, shell,
  process table, mailbox, tool scripts, and a booted help session.
"""

__all__ = ["System", "build_system"]


def __getattr__(name: str):
    """Lazy re-exports so the corpus imports without the full wiring."""
    if name in ("System", "build_system"):
        from repro.tools import install
        return getattr(install, name)
    raise AttributeError(f"module 'repro.tools' has no attribute {name!r}")
