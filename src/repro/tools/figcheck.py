"""Guard against silent rendering drift in the paper's figure artifacts.

The twelve figure benchmarks save ASCII screenshots under
``bench_artifacts/fig*.txt``; byte-identical copies live next to the
test suite as baselines (``tests/goldens/fig*.txt``).  The incremental display
pipeline (layout caching, damage-tracked repaints) must never change a
rendered byte, so this check compares every regenerated artifact
against its baseline and reports any drift.  It runs both as a CLI::

    python -m repro.tools.figcheck [baseline_dir artifact_dir]

and from the test suite (``tests/tools/test_figcheck.py``), so a
refactor that perturbs rendering fails CI instead of silently
rewriting the figures.
"""

from __future__ import annotations

import pathlib
import sys

DEFAULT_PATTERN = "fig*.txt"


def compare(baseline_dir: str | pathlib.Path,
            artifact_dir: str | pathlib.Path,
            pattern: str = DEFAULT_PATTERN) -> list[str]:
    """Drift messages for every artifact that disagrees with its baseline.

    An artifact that has not been regenerated (benchmarks not run) is
    not drift; an artifact with no baseline at all is — it means a new
    figure appeared without a pinned reference.
    """
    baseline_dir = pathlib.Path(baseline_dir)
    artifact_dir = pathlib.Path(artifact_dir)
    problems: list[str] = []
    for artifact in sorted(artifact_dir.glob(pattern)):
        baseline = baseline_dir / artifact.name
        if not baseline.exists():
            problems.append(f"{artifact.name}: no baseline in {baseline_dir}")
            continue
        got = artifact.read_text()
        want = baseline.read_text()
        if got != want:
            line = _first_divergent_line(want, got)
            problems.append(
                f"{artifact.name}: differs from baseline (first at line {line})")
    return problems


def _first_divergent_line(want: str, got: str) -> int:
    for i, (a, b) in enumerate(zip(want.splitlines(), got.splitlines()),
                               start=1):
        if a != b:
            return i
    return min(want.count("\n"), got.count("\n")) + 1


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(__file__).resolve().parents[3]
    if len(args) == 2:
        baseline_dir, artifact_dir = args
    elif not args:
        baseline_dir = root / "tests" / "goldens"
        artifact_dir = root / "bench_artifacts"
    else:
        print("usage: figcheck [baseline_dir artifact_dir]", file=sys.stderr)
        return 2
    problems = compare(baseline_dir, artifact_dir)
    for problem in problems:
        print(f"figcheck: {problem}", file=sys.stderr)
    if not problems:
        print("figcheck: all figure artifacts match their baselines")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
