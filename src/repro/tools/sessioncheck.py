"""Prove session hosting is invisible AND isolated: K sessions, one host.

PR 3's servecheck proved one session is byte-identical across the
wire; this check proves **N concurrent sessions in one process** are
each byte-identical *and* fully isolated from one another:

1. each Figures 5-12 scenario is recorded once locally into a shadow
   journal (PR 4's recorder), yielding the stream of input records
   that reproduces it;
2. a :class:`~repro.serve.SessionHost` hosts the sessions; a **solo**
   pass drives every figure through one connection at a time,
   pinning the per-session baseline — rendered screen (compared
   byte-for-byte against the pinned goldens), journal kind sequence,
   and counter ledger;
3. K workers then drive all the figures **concurrently**, each in its
   own hosted session, and every session's screen, journal and ledger
   must equal the solo baseline exactly — any cross-session counter
   bleed, journal cross-talk or screen corruption is a diff;
4. the host's own ledger is audited: sessions opened == closed, and
   zero session-scoped counters in the host registry.

Runs over both transports (in-memory pipes with forced short reads,
and real TCP sockets) unless narrowed::

    python -m repro.tools.sessioncheck [--sessions K] [--pipe | --tcp]
                                       [--shards N] [--budget N]

With ``--shards N`` the sessions are hosted by a
:class:`~repro.serve.ShardRouter` over N independent shard hosts
instead of a single :class:`~repro.serve.SessionHost` — the same
byte-identity and isolation must hold when attaches are hashed across
shards, or sharding is visible to clients.

With ``--budget N`` the check instead proves **hibernation** is
invisible: the host gets an LRU memory budget of N resident worlds,
every figure session is driven, detached (which hibernates it to a
disk snapshot), and re-attached — the woken screen must equal the
pinned golden byte-for-byte, at most N worlds may ever be resident,
and the wake ledger must balance (every hibernation accounted for by
a wake or a snapshot still parked on the spool).

Exit 0 when every session matches, 1 on any divergence, 2 on usage
errors.
"""

from __future__ import annotations

import pathlib
import sys
import threading
import time

from repro.core.render import render_screen
from repro.fs.mux import MuxClient, dial, mount_remote
from repro.fs.namespace import Namespace
from repro.fs.vfs import VFS
from repro.journal.log import Journal
from repro.journal.recorder import attach
from repro.serve import SessionHost, ShardRouter
from repro.tools.install import build_system
from repro.tools.servecheck import FIGURES

WIDTH, HEIGHT = 160, 60
GOLDENS = pathlib.Path(__file__).resolve().parents[3] / "tests" / "goldens"

# Ledger entries whose values depend on connection identity (the
# attach name's length changes frame sizes) or are transient gauges;
# everything else must match the solo baseline exactly.
_UNSTABLE = ("wire.bytes.",)
_GAUGES = {"mux.inflight"}


def record_figures() -> dict[str, dict]:
    """Record each figure locally: its input records and final screen."""
    scripts: dict[str, dict] = {}
    for name, scenario, _uses_wire in FIGURES:
        system = build_system(width=WIDTH, height=HEIGHT)
        journal = Journal()  # shadow: records in memory only
        attach(system.help, journal)
        scenario(system)
        lines = "".join(
            f"{r.kind} {r.payload}\n" if r.payload else f"{r.kind}\n"
            for r in journal.records if r.applies)
        scripts[name] = {"input": lines,
                         "screen": render_screen(system.help)}
    return scripts


def _ledger_of(metrics_text: str) -> dict[str, int]:
    ledger: dict[str, int] = {}
    for line in metrics_text.splitlines():
        name, _, value = line.rpartition(" ")
        if name.startswith(_UNSTABLE) or name in _GAUGES:
            continue
        ledger[name] = int(value)
    return ledger


def drive_session(host: SessionHost, transport: str, addr, name: str,
                  script: dict) -> dict:
    """One hosted session: attach, apply the records, collect the state.

    Reads happen in a fixed order ending with the ledger, so every
    run's ledger covers exactly the same preceding traffic and the
    solo/concurrent comparison is exact.
    """
    if transport == "tcp":
        channel = dial(*addr)
    else:
        channel = host.pipe(max_chunk=13)
    client = MuxClient(channel, aname=name)
    try:
        ns = Namespace(VFS())
        ns.mkdir("/s", parents=True)
        ns.mount(mount_remote(client), "/s")
        ns.append("/s/input", script["input"])
        return {"screen": ns.read("/s/screen"),
                "journal": ns.read("/s/journal"),
                "ledger": _ledger_of(ns.read("/s/metrics"))}
    finally:
        client.close()


def _compare(name: str, got: dict, baseline: dict,
             golden: str) -> list[str]:
    problems: list[str] = []
    if got["screen"] != golden:
        line = _first_divergent_line(golden, got["screen"])
        problems.append(f"{name}: screen differs from golden "
                        f"(first at line {line})")
    if got["journal"] != baseline["journal"]:
        problems.append(f"{name}: journal kind sequence diverged from "
                        f"the solo baseline")
    if got["ledger"] != baseline["ledger"]:
        diffs = [key for key in sorted(set(got["ledger"])
                                       | set(baseline["ledger"]))
                 if got["ledger"].get(key) != baseline["ledger"].get(key)]
        shown = ", ".join(
            f"{key}={baseline['ledger'].get(key, 0)}->"
            f"{got['ledger'].get(key, 0)}" for key in diffs[:4])
        problems.append(f"{name}: counter bleed — {len(diffs)} ledger "
                        f"entries differ from the solo baseline ({shown})")
    return problems


def _first_divergent_line(want: str, got: str) -> int:
    for i, (a, b) in enumerate(zip(want.splitlines(), got.splitlines()),
                               start=1):
        if a != b:
            return i
    return min(want.count("\n"), got.count("\n")) + 1


def check_transport(transport: str, sessions: int,
                    scripts: dict[str, dict],
                    shards: int = 0) -> list[str]:
    """Solo baseline, then K concurrent workers, then the host audit."""
    problems: list[str] = []
    goldens: dict[str, str] = {}
    for name in scripts:
        path = GOLDENS / f"{name}.txt"
        if not path.exists():
            return [f"{transport}: no golden at {path}"]
        goldens[name] = path.read_text()

    if shards:
        host = ShardRouter(shards=shards, width=WIDTH, height=HEIGHT,
                           workers=max(4, sessions))
    else:
        host = SessionHost(width=WIDTH, height=HEIGHT,
                           workers=max(4, sessions))
    addr = host.listen() if transport == "tcp" else None
    try:
        # -- solo: one session per figure, nothing else running ----------
        baselines: dict[str, dict] = {}
        for name, script in scripts.items():
            try:
                baselines[name] = drive_session(
                    host, transport, addr, f"{name}.solo", script)
            except Exception as exc:  # noqa: BLE001 - the crash IS the finding
                return [f"{transport}/{name}: solo session failed: {exc!r}"]
            problems += _compare(f"{transport}/{name}.solo",
                                 baselines[name], baselines[name],
                                 goldens[name])
        if problems:
            return problems  # a broken baseline makes the rest noise

        # -- concurrent: K workers, all figures each --------------------
        start = threading.Barrier(sessions)
        failures: list[str] = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            start.wait()
            for name, script in scripts.items():
                label = f"{transport}/{name}.w{index}"
                try:
                    got = drive_session(host, transport, addr,
                                        f"{name}.w{index}", script)
                except Exception as exc:  # noqa: BLE001
                    with lock:
                        failures.append(f"{label}: session failed: {exc!r}")
                    continue
                found = _compare(label, got, baselines[name], goldens[name])
                with lock:
                    failures.extend(found)

        threads = [threading.Thread(target=worker, args=(i,),
                                    name=f"sessioncheck-w{i}")
                   for i in range(sessions)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        problems += failures
    finally:
        host.close()

    problems += [f"{transport}: {p}" for p in host.audit()]
    opened, closed = host.session_ledger()
    want = (sessions + 1) * len(scripts)
    if opened != want or closed != want:
        problems.append(f"{transport}: expected {want} sessions opened "
                        f"and closed, saw opened={opened} closed={closed}")
    return problems


def _read_screen(host: SessionHost, name: str) -> str:
    """Attach (waking the session if hibernated) and read the screen."""
    client = MuxClient(host.pipe(), aname=name)
    try:
        ns = Namespace(VFS())
        ns.mkdir("/s", parents=True)
        ns.mount(mount_remote(client), "/s")
        return ns.read("/s/screen")
    finally:
        client.close()


def _await_counter(host: SessionHost, name: str, want: int,
                   timeout: float = 10.0) -> bool:
    """Detach-driven hibernation is asynchronous; wait for the ledger."""
    deadline = time.monotonic() + timeout
    while host.metrics.counter(name) < want:
        if time.monotonic() > deadline:
            return False
        time.sleep(0.005)
    return True


def check_budget(budget: int, scripts: dict[str, dict]) -> list[str]:
    """Drive every figure through a hibernate/wake cycle under a budget."""
    problems: list[str] = []
    goldens: dict[str, str] = {}
    for name in scripts:
        path = GOLDENS / f"{name}.txt"
        if not path.exists():
            return [f"budget: no golden at {path}"]
        goldens[name] = path.read_text()

    host = SessionHost(width=WIDTH, height=HEIGHT, max_live=budget)
    try:
        # -- pass 1: drive each figure, detach -> hibernate ----------------
        for name, script in scripts.items():
            try:
                got = drive_session(host, "pipe", None, f"{name}.hib",
                                    script)
            except Exception as exc:  # noqa: BLE001 - the crash IS it
                return [f"budget/{name}: session failed: {exc!r}"]
            if got["screen"] != goldens[name]:
                line = _first_divergent_line(goldens[name], got["screen"])
                problems.append(f"budget/{name}: live screen differs "
                                f"from golden (first at line {line})")
        if not _await_counter(host, "host.sessions.hibernated",
                              len(scripts)):
            problems.append(
                f"budget: only "
                f"{host.metrics.counter('host.sessions.hibernated')} of "
                f"{len(scripts)} detached sessions hibernated")
        resident = sum(1 for s in host.sessions.values() if s is not None)
        if resident > budget:
            problems.append(f"budget: {resident} worlds resident after "
                            f"hibernation, budget is {budget}")
        if problems:
            return problems  # a broken park makes the wake pass noise

        # -- pass 2: wake each, the screen must still match the golden ----
        for name in scripts:
            try:
                screen = _read_screen(host, f"{name}.hib")
            except Exception as exc:  # noqa: BLE001
                problems.append(f"budget/{name}: wake failed: {exc!r}")
                continue
            if screen != goldens[name]:
                line = _first_divergent_line(goldens[name], screen)
                problems.append(f"budget/{name}: woken screen differs "
                                f"from golden (first at line {line})")
        _await_counter(host, "host.sessions.hibernated", 2 * len(scripts))
        if host.live_peak > budget:
            problems.append(f"budget: live_peak {host.live_peak} "
                            f"exceeded the budget {budget}")
    finally:
        host.close()

    problems += [f"budget: {p}" for p in host.audit()]
    woken = host.metrics.counter("host.sessions.woken")
    if woken != len(scripts):
        problems.append(f"budget: expected {len(scripts)} wakes, "
                        f"ledger says {woken}")
    if not (host.metrics.histogram("host.wake_us") or {}).get("count"):
        problems.append("budget: no host.wake_us latency samples")
    return problems


def run(sessions: int, transports: list[str],
        shards: int = 0) -> list[str]:
    scripts = record_figures()
    problems: list[str] = []
    for transport in transports:
        problems += check_transport(transport, sessions, scripts, shards)
    return problems


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    sessions = 4
    shards = 0
    budget = 0
    transports = ["pipe", "tcp"]
    while args:
        arg = args.pop(0)
        if arg == "--sessions" and args and args[0].isdigit():
            sessions = int(args.pop(0))
        elif arg == "--shards" and args and args[0].isdigit():
            shards = int(args.pop(0))
        elif arg == "--budget" and args and args[0].isdigit():
            budget = int(args.pop(0))
        elif arg == "--pipe":
            transports = ["pipe"]
        elif arg == "--tcp":
            transports = ["tcp"]
        else:
            print("usage: sessioncheck [--sessions K] [--pipe | --tcp] "
                  "[--shards N] [--budget N]", file=sys.stderr)
            return 2
    if budget:
        problems = check_budget(budget, record_figures())
        for problem in problems:
            print(f"sessioncheck: {problem}", file=sys.stderr)
        if not problems:
            print(f"sessioncheck: Figures 5-12 byte-identical through a "
                  f"hibernate/wake cycle under a {budget}-world budget")
        return 1 if problems else 0
    problems = run(sessions, transports, shards)
    for problem in problems:
        print(f"sessioncheck: {problem}", file=sys.stderr)
    if not problems:
        hosting = (f"a {shards}-shard router" if shards
                   else "one session host")
        print(f"sessioncheck: Figures 5-12 byte-identical and fully "
              f"isolated across {sessions} concurrent sessions over "
              f"{' and '.join(transports)} on {hosting}")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
