"""Audit a benchmark run's counter record for regressions.

``bench_artifacts/BENCH_perf.json`` is more than a scoreboard: its
counters section is a ledger of everything the benchmarks did to the
filesystem substrate.  On a healthy run the ledger balances — every
server-side open was closed (no leaked sessions), and the clean path
raised no taxonomy errors and injected no faults.  A PR that breaks
session teardown or starts erroring under load shifts these totals
long before any median moves, so CI runs the benchmarks (counters-only
is enough: ``pytest benchmarks --benchmark-disable``) and then gates
on this audit::

    python -m repro.tools.benchgate [path/to/BENCH_perf.json]

Checks applied:

- ``fs.open == fs.close`` — a mismatch means a leaked (or
  double-closed) file-server session somewhere in the run;
- every ``fs.error.*`` counter is zero — benchmarks drive the clean
  path only, so any taxonomy error is a regression;
- ``fs.fault.injected`` is zero — fault plans belong to the fault
  matrix tests, never to benchmarks;
- the wire transport really ran: at least ``MIN_SESSIONS`` sessions
  attached and per-op latency histograms were recorded;
- the journal ledger balances: every record the replay benches
  appended durably was either scanned back or dropped by an accounted
  compaction (``journal.append.records == journal.replay.records +
  journal.compact.dropped``) and the clean path verified every
  checksum (``journal.checksum.failed == 0``);
- the session-host ledger balances: every hosted session opened was
  closed, the host audit ran (``host.sessions.bleed`` recorded) and
  found zero cross-session counter bleed, and per-record apply
  latencies reached the report's ``sessions`` section;
- the shard-router ledger balances: at least ``MIN_SHARDS`` shards
  ran, every shard's attaches were clunked (``per_shard`` in the
  ``shards`` section), the router audit ran and found no session id
  live on two shards (``router.sessions.dup`` recorded, zero), and no
  attach was rejected on the clean path.  The 100k RPC/s aggregate
  floor is advisory — single-core runners record it honestly in
  ``extra_info`` (``meets_100k_floor``) without failing the gate;
- the wake ledger balances: every hibernation is accounted for by a
  wake, a discarded snapshot, a cross-shard relocation, or a snapshot
  still parked on the spool (``host.sessions.hibernated + hib.in ==
  woken + discarded + hib.out + still_hibernated``), wake latencies
  reached the report's ``hibernate`` section, the resident peak never
  exceeded the configured budget, and no session was retired twice
  (``host.sessions.evicted <= host.sessions.closed``);
- the loadgen SLOs hold: the soak drove at least
  ``MIN_LOADGEN_USERS`` users through at least ``MIN_SHARDS`` shards,
  every op class (attach/read/write/apply/wake) recorded samples, each
  class's p99 stays under its :data:`SLO_P99_US` ceiling, the
  unexpected-error rate stays under :data:`SLO_MAX_ERROR_RATE`, the
  backpressure verdict was recorded, and the fleet itself reported no
  problems.  These are *hard budgets*, not advisory medians: a
  latency regression that moves a tail past its ceiling turns this
  gate red even when every ledger still balances;
- the replica SLOs hold (the ``replica`` section, deposited by the
  chaos soak): at least ``MIN_CHAOS_KILLS`` primaries were killed
  across at least ``MIN_REPLICA_SHARDS`` replicated shards with every
  kill answered by a promotion, **zero** acknowledged writes were
  lost and zero severed users stayed unrecovered, promotion and
  failover p99 stay under their :data:`SLO_REPLICA_P99_US` budgets,
  replication lag p99 stays under its ceiling, and the ship ledger
  balances (``shipped == acked + inflight + errors``, ``promoted ==
  promoted_live + promoted_parked``).

Every check is *guarded*: a malformed section makes that one check
report "crashed" and the audit moves on, so a single bad section can
never hide the remaining violations — one run reports **all** broken
budgets, not just the first.

Exit 0 when the ledger balances, 1 on any violation, 2 on usage
errors or an unreadable report.
"""

from __future__ import annotations

import json
import pathlib
import sys

DEFAULT_REPORT = (pathlib.Path(__file__).resolve().parents[3]
                  / "bench_artifacts" / "BENCH_perf.json")

# the acceptance floor for concurrent wire sessions in a bench run
MIN_SESSIONS = 4

# the acceptance floor for shards in the sharded-host bench
MIN_SHARDS = 4

# the acceptance floor for simulated users in the loadgen soak
MIN_LOADGEN_USERS = 1000

# the chaos soak's floors: replicated shards driven and primaries killed
MIN_REPLICA_SHARDS = 2
MIN_CHAOS_KILLS = 3

# Per-op-class p99 ceilings, microseconds.  Calibrated ~25x above the
# soak's measured tails on a development machine, so a slow CI runner
# passes with room while a real regression — a lock held across an
# apply, an O(sessions) scan on attach, a wake that re-renders the
# world twice — still blows through.  Tighten these as the substrate
# gets faster; loosening one is a red flag in review.
SLO_P99_US = {
    "attach": 2_000_000,   # cold attach builds a whole world
    "read":     500_000,   # screen snapshot round trip
    "write":    500_000,   # one input record round trip
    "apply":    250_000,   # server-side record application
    "wake":   5_000_000,   # attach + journal rehydration
}

# ceiling on unexpected client-visible errors per op (0.2%)
SLO_MAX_ERROR_RATE = 0.002

# Replication budgets, microseconds at p99.  ``promote`` is the
# standby's adopt-everything sweep; ``failover`` is the client-visible
# gap from kill to repointed slot (detection + promotion); ``lag`` is
# the sync-ship round trip a write pays for its durability guarantee.
SLO_REPLICA_P99_US = {
    "promote":   5_000_000,
    "failover": 30_000_000,
    "lag":       1_000_000,
}


def audit(report: dict) -> list[str]:
    """Every violated invariant in *report*, as human-readable lines.

    Each section check runs guarded: one that crashes on a malformed
    section contributes a "crashed" line and the rest still run — the
    whole point is that a single run surfaces every broken budget.
    """
    counters = report.get("counters")
    if not isinstance(counters, dict) or not counters:
        return ["report has no counters section — not a benchmark run?"]
    checks = (
        _check_fs, _check_wire, _check_journal, _check_host,
        _check_shards, _check_hibernate, _check_loadgen, _check_replica,
    )
    problems: list[str] = []
    for check in checks:
        try:
            problems += check(report, counters)
        except Exception as exc:  # noqa: BLE001 - keep auditing
            name = check.__name__.removeprefix("_check_")
            problems.append(f"audit check {name!r} crashed on this "
                            f"report: {exc!r}")
    return problems


def _check_fs(report: dict, counters: dict) -> list[str]:
    problems: list[str] = []
    opened = counters.get("fs.open", 0)
    closed = counters.get("fs.close", 0)
    if opened != closed:
        problems.append(
            f"session leak: fs.open={opened} != fs.close={closed} "
            f"({opened - closed:+d} never closed)")
    for name in sorted(counters):
        if name.startswith("fs.error.") and counters[name]:
            problems.append(
                f"clean path raised errors: {name}={counters[name]}")
    if counters.get("fs.fault.injected", 0):
        problems.append(
            f"fault injection ran during benchmarks: "
            f"fs.fault.injected={counters['fs.fault.injected']}")
    return problems


def _check_wire(report: dict, counters: dict) -> list[str]:
    problems: list[str] = []
    sessions = counters.get("wire.rpc.attach", 0)
    for op in report.get("ops", {}).values():
        sessions = max(sessions, op.get("extra_info", {}).get("sessions", 0))
    if sessions < MIN_SESSIONS:
        problems.append(
            f"wire bench underpowered: {sessions} concurrent sessions "
            f"recorded, need >= {MIN_SESSIONS}")
    wire = report.get("wire", {})
    for side in ("server_rpc_us", "client_rpc_us"):
        stats = wire.get(side) or {}
        if not any(entry.get("count", 0) for entry in stats.values()):
            problems.append(f"no wire latency samples recorded ({side})")
    return problems


def _check_journal(report: dict, counters: dict) -> list[str]:
    appended = counters.get("journal.append.records")
    if appended is None:
        return []
    # the journal bench ran: its ledger must balance exactly
    problems: list[str] = []
    replayed = counters.get("journal.replay.records", 0)
    dropped = counters.get("journal.compact.dropped", 0)
    if appended != replayed + dropped:
        problems.append(
            f"journal ledger imbalance: journal.append.records="
            f"{appended} != journal.replay.records={replayed} "
            f"+ journal.compact.dropped={dropped}")
    failed = counters.get("journal.checksum.failed", 0)
    if failed:
        problems.append(
            f"checksum failures on the clean path: "
            f"journal.checksum.failed={failed}")
    if not counters.get("journal.replay.applied", 0):
        problems.append("journal bench recorded but never applied "
                        "a record on replay")
    return problems


def _check_host(report: dict, counters: dict) -> list[str]:
    hosted = counters.get("host.sessions.opened")
    if hosted is None:
        return []
    # the session-host bench ran: its ledger must balance exactly
    problems: list[str] = []
    retired = counters.get("host.sessions.closed", 0)
    if hosted != retired:
        problems.append(
            f"hosted-session leak: host.sessions.opened={hosted} "
            f"!= host.sessions.closed={retired}")
    if "host.sessions.bleed" not in counters:
        problems.append("session host ran but was never audited "
                        "(no host.sessions.bleed verdict)")
    elif counters["host.sessions.bleed"]:
        problems.append(
            f"cross-session counter bleed: host.sessions.bleed="
            f"{counters['host.sessions.bleed']}")
    section = report.get("sessions") or {}
    apply_us = section.get("session_us") or {}
    if not any(entry.get("count", 0) for entry in apply_us.values()):
        problems.append(
            "no session apply-latency samples recorded (sessions "
            "section empty)")
    return problems


def _check_shards(report: dict, counters: dict) -> list[str]:
    routed = counters.get("router.attach.routed")
    if routed is None:
        return []
    # the sharded-host bench ran: its ledger must balance too
    problems: list[str] = []
    section = report.get("shards") or {}
    per_shard = section.get("per_shard") or []
    if len(per_shard) < MIN_SHARDS:
        problems.append(
            f"shard bench underpowered: {len(per_shard)} shard "
            f"ledgers recorded, need >= {MIN_SHARDS}")
    for entry in per_shard:
        attached = entry.get("attached", 0)
        clunked = entry.get("clunked", 0)
        if attached != clunked:
            problems.append(
                f"shard {entry.get('shard')} leaked sessions: "
                f"attached={attached} != clunked={clunked}")
    if "router.sessions.dup" not in counters:
        problems.append("shard router ran but was never audited "
                        "(no router.sessions.dup verdict)")
    elif counters["router.sessions.dup"]:
        problems.append(
            f"cross-shard bleed: router.sessions.dup="
            f"{counters['router.sessions.dup']} session ids live "
            f"on more than one shard")
    rejected = counters.get("router.attach.rejected", 0)
    if rejected:
        problems.append(
            f"router rejected attaches on the clean path: "
            f"router.attach.rejected={rejected}")
    return problems


def _check_hibernate(report: dict, counters: dict) -> list[str]:
    hibernated = counters.get("host.sessions.hibernated")
    if hibernated is None:
        return []
    # the hibernation bench ran: the wake ledger must balance
    problems: list[str] = []
    section = report.get("hibernate") or {}
    woken = counters.get("host.sessions.woken", 0)
    discarded = counters.get("host.sessions.discarded", 0)
    hib_in = counters.get("host.sessions.hib.in", 0)
    hib_out = counters.get("host.sessions.hib.out", 0)
    still = section.get("still_hibernated") or 0
    if hibernated + hib_in != woken + discarded + hib_out + still:
        problems.append(
            f"wake ledger imbalance: host.sessions.hibernated="
            f"{hibernated} + hib.in={hib_in} != woken={woken} + "
            f"discarded={discarded} + hib.out={hib_out} + "
            f"still_hibernated={still}")
    wake_us = section.get("wake_us") or {}
    if not any(entry.get("count", 0) for entry in wake_us.values()):
        problems.append(
            "no wake latency samples recorded (hibernate section "
            "empty)")
    max_live = section.get("max_live") or 0
    live_peak = section.get("live_peak") or 0
    if max_live and live_peak > max_live:
        problems.append(
            f"memory budget breached: live_peak={live_peak} > "
            f"max_live={max_live}")
    evicted = counters.get("host.sessions.evicted", 0)
    retired = counters.get("host.sessions.closed", 0)
    if evicted > retired:
        problems.append(
            f"evict ledger imbalance: host.sessions.evicted="
            f"{evicted} > host.sessions.closed={retired}")
    return problems


def _check_loadgen(report: dict, counters: dict) -> list[str]:
    if counters.get("loadgen.ops.total") is None:
        return []
    # the loadgen soak ran: enforce the SLO budget table
    return audit_loadgen(report.get("loadgen") or {})


def _check_replica(report: dict, counters: dict) -> list[str]:
    section = report.get("replica")
    if not section:
        return []
    return audit_replica(section)


def audit_loadgen(section: dict,
                  budgets: dict[str, int] | None = None,
                  max_error_rate: float = SLO_MAX_ERROR_RATE,
                  min_users: int = MIN_LOADGEN_USERS) -> list[str]:
    """Every violated SLO in a ``loadgen`` report section.

    *budgets* overrides :data:`SLO_P99_US` (tests inject tight
    ceilings to prove a slowed handler turns the gate red); the
    defaults are the CI budgets.
    """
    ceilings = SLO_P99_US if budgets is None else budgets
    problems: list[str] = []
    if not section:
        return ["loadgen counters present but the loadgen report "
                "section is missing"]
    users = section.get("users") or 0
    if users < min_users:
        problems.append(
            f"loadgen soak underpowered: {users} users driven, "
            f"need >= {min_users}")
    shards = section.get("shards") or 0
    if shards < MIN_SHARDS:
        problems.append(
            f"loadgen soak underpowered: {shards} shards driven, "
            f"need >= {MIN_SHARDS}")
    op_us = section.get("op_us") or {}
    for op, ceiling in sorted(ceilings.items()):
        stats = op_us.get(op) or {}
        if not stats.get("count"):
            problems.append(
                f"loadgen op class {op!r} never sampled — the SLO "
                f"for it gates nothing")
            continue
        p99 = stats.get("p99", 0.0)
        if p99 > ceiling:
            problems.append(
                f"SLO breach: loadgen {op} p99={p99:.0f}us exceeds "
                f"the {ceiling}us budget")
    rate = section.get("error_rate")
    if rate is None:
        problems.append("loadgen recorded no error-rate verdict")
    elif rate > max_error_rate:
        problems.append(
            f"SLO breach: loadgen error_rate={rate:.4f} exceeds "
            f"the {max_error_rate} ceiling "
            f"(errors: {section.get('errors')})")
    if not isinstance(section.get("backpressure"), dict):
        problems.append("loadgen recorded no backpressure verdict")
    for problem in section.get("problems") or []:
        problems.append(f"loadgen run problem: {problem}")
    return problems


def audit_replica(section: dict,
                  budgets: dict[str, int] | None = None,
                  min_shards: int = MIN_REPLICA_SHARDS,
                  min_kills: int = MIN_CHAOS_KILLS,
                  min_users: int = MIN_LOADGEN_USERS) -> list[str]:
    """Every violated SLO in a ``replica`` (chaos soak) section.

    *budgets* overrides :data:`SLO_REPLICA_P99_US`; tests inject tight
    ceilings to prove a slow promotion turns the gate red.
    """
    ceilings = SLO_REPLICA_P99_US if budgets is None else budgets
    problems: list[str] = []
    users = section.get("users") or 0
    if users < min_users:
        problems.append(
            f"chaos soak underpowered: {users} users driven, "
            f"need >= {min_users}")
    shards = section.get("shards") or 0
    if shards < min_shards:
        problems.append(
            f"chaos soak underpowered: {shards} replicated shards, "
            f"need >= {min_shards}")
    kills = section.get("kills") or 0
    if kills < min_kills:
        problems.append(
            f"chaos soak underpowered: {kills} primaries killed, "
            f"need >= {min_kills}")
    promotions = section.get("promotions") or 0
    if promotions != kills:
        problems.append(
            f"failover incomplete: {kills} kills but {promotions} "
            f"promotions")
    lost = section.get("acked_lost")
    if lost is None:
        problems.append("chaos soak recorded no acked_lost verdict")
    elif lost:
        problems.append(
            f"SLO breach: {lost} acknowledged writes lost to failover "
            f"— the budget is zero")
    unrecovered = section.get("unrecovered")
    if unrecovered is None:
        problems.append("chaos soak recorded no unrecovered verdict")
    elif unrecovered:
        problems.append(
            f"SLO breach: {unrecovered} severed users never recovered")
    for name, key in (("promote", "promote_us"),
                      ("failover", "failover_us"),
                      ("lag", "lag_us")):
        ceiling = ceilings.get(name)
        if ceiling is None:
            continue
        stats = section.get(key) or {}
        if not stats.get("count"):
            problems.append(
                f"replica {key} never sampled — the {name} SLO gates "
                f"nothing")
            continue
        p99 = stats.get("p99", 0.0)
        if p99 > ceiling:
            problems.append(
                f"SLO breach: replica {name} p99={p99:.0f}us exceeds "
                f"the {ceiling}us budget")
    ledger = section.get("ledger")
    if not isinstance(ledger, dict):
        problems.append("chaos soak recorded no replica ledger")
    else:
        shipped = ledger.get("shipped_frames", 0)
        acked = ledger.get("acked_frames", 0)
        inflight = ledger.get("inflight", 0)
        errors = ledger.get("ship_errors", 0)
        if shipped != acked + inflight + errors:
            problems.append(
                f"replica ship ledger imbalance: shipped={shipped} != "
                f"acked={acked} + inflight={inflight} + errors={errors}")
        promoted = ledger.get("promoted", 0)
        p_live = ledger.get("promoted_live", 0)
        p_parked = ledger.get("promoted_parked", 0)
        if promoted != p_live + p_parked:
            problems.append(
                f"replica promotion ledger imbalance: promoted="
                f"{promoted} != live={p_live} + parked={p_parked}")
    for problem in section.get("problems") or []:
        problems.append(f"chaos run problem: {problem}")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) > 1:
        print("usage: benchgate [BENCH_perf.json]", file=sys.stderr)
        return 2
    path = pathlib.Path(args[0]) if args else DEFAULT_REPORT
    try:
        report = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"benchgate: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    problems = audit(report)
    for problem in problems:
        print(f"benchgate: {problem}", file=sys.stderr)
    if not problems:
        counters = report["counters"]
        print(f"benchgate: ledger balances — "
              f"fs.open == fs.close == {counters.get('fs.open', 0)}, "
              f"no errors, no faults, "
              f"{counters.get('wire.rpc.attach', 0)} wire sessions")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
