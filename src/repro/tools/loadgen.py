"""Load generation: recorded journals replayed as traffic, at fleet scale.

Every bench so far measures one op at a time; production scale is
*traffic* — thousands of users arriving with different intents,
pausing to read, leaving, coming back.  This module turns the PR 4
record/replay substrate into exactly that: each Figures 5-12 scenario
is recorded once into a journal (:func:`~repro.tools.sessioncheck.
record_figures`), and the recorded input records become a **traffic
model** — a weighted scenario a simulated user replays through a
hosted session's ``input`` file, one record per write, with seeded
per-user think times between them.

The fleet is a closed loop.  ``users`` simulated users are planned
up front by a deterministic schedule (same seed ⇒ byte-identical
plans, see :func:`schedule_text`), then driven by a worker pool
against a real :class:`~repro.serve.SessionHost` — or a
:class:`~repro.serve.ShardRouter` over N shards — across real TCP
sockets (or in-memory pipes).  A user's visit is: attach (a world is
built server-side), replay the model's records through ``input``,
read the screen at a seeded cadence, drop the connection.  The host
runs under a hibernation budget, so every drop parks the session on
disk; a seeded cohort of users then *returns*, and their re-attach —
a wake, the worst attach there is — is timed as its own op class.

Latency lands in per-op-class histograms (attach / read / write /
apply / wake: client round trips for the first four minus apply,
which is the server-side ``session.apply_us``), plus error and
backpressure counters, and the whole record becomes the ``loadgen``
section of ``BENCH_perf.json`` where :mod:`repro.tools.benchgate`
enforces hard p99 budgets and an error-rate ceiling.

CLI::

    python -m repro.tools.loadgen [--users N] [--shards N] [--workers K]
                                  [--seed S] [--pipe | --tcp] [--think X]
                                  [--faults] [--chaos N] [--json]
                                  [--report PATH] [--smoke]

``--smoke`` is the CI entry: a small fixed-seed fleet driven twice —
once on a plain host, once through a 4-shard router — asserting every
op class sampled, zero errors, balanced ledgers, and identical
op-class counts across the two topologies (sharding must be invisible
to traffic, not just to screens).  On failure the latency report and
a sample of the spooled session journals land under
``bench_artifacts/loadgen/`` for the CI artifact upload.

``--chaos N`` turns the run into a failover proof: the shards run
**replicated** (each primary ships its journals to a standby, PR 9),
and a controller thread SIGKILLs N distinct primaries at seeded
points mid-soak.  Severed users recover by re-attaching (the router
repoints their hash slot at the promoted standby), reading the
session's ``inputs`` file — the replication resume index — asserting
it covers every write the dead primary *acknowledged*, and replaying
only the unacknowledged tail.  The report gains a ``chaos`` section
(kills, promotions, severed/recovered/unrecovered users,
``acked_lost`` — the SLO is exactly zero — plus promotion/failover
latency and replication-lag histograms) that benchgate's ``replica``
budget table audits.

``--json`` additionally writes every run's LoadReport as a
machine-readable artifact under ``bench_artifacts/loadgen/`` (smoke
runs included, success included — the artifact is the point, not a
failure record).

Exit 0 clean, 1 on any violation, 2 on usage errors.
"""

from __future__ import annotations

import json
import pathlib
import random
import sys
import threading
import time
import zlib
from dataclasses import dataclass

from repro.fs.errors import Busy, FsError
from repro.fs.faults import Fault, FaultPlan
from repro.fs.mux import MuxClient, dial, mount_remote
from repro.metrics.counter import MetricsRegistry
from repro.serve import SessionHost, ShardRouter

ARTIFACTS = (pathlib.Path(__file__).resolve().parents[3]
             / "bench_artifacts" / "loadgen")

OP_CLASSES = ("attach", "read", "write", "apply", "wake")

# Scenario weights: mail reading dominates, debugger walks are
# occasional, full mk rebuilds are rare — the shape of a working day,
# not a uniform sweep.  Weights are relative; any recorded journal can
# join the mix.
DEFAULT_WEIGHTS = {
    "fig05_headers": 24,
    "fig06_messages": 16,
    "fig07_stack": 8,
    "fig08_openline": 12,
    "fig09_openline2": 8,
    "fig10_uses": 10,
    "fig11_culprit": 6,
    "fig12_mk": 4,
}

# Mean think time between records, milliseconds (exponential draw per
# record).  Scheduled values are always recorded — they are part of
# the deterministic plan — but only slept when think_scale > 0.
THINK_MEAN_MS = 200.0

# Fraction of users that return after their session hibernates; their
# re-attach is the "wake" op class.
WAKE_FRACTION = 0.25

# With --faults, every FAULT_EVERY-th user's session gets a
# deterministic fault schedule (a storm, in aggregate).
FAULT_EVERY = 10

_RETRIES = 3  # bounded retry on busy replies (client-side backpressure)

# chaos: feed heartbeat interval (detection = 3 missed beats) and how
# long a severed user keeps retrying before it counts as unrecovered
CHAOS_HEARTBEAT = 0.05
CHAOS_RECOVER_TIMEOUT = 30.0


@dataclass(frozen=True)
class TrafficModel:
    """One recorded scenario: a name, a weight, its input records."""

    name: str
    weight: float
    lines: tuple[str, ...]


@dataclass(frozen=True)
class UserPlan:
    """One user's deterministic visit: model, steps, return intent.

    ``steps`` is a tuple of ``("think", ms)``, ``("write", index)``
    (index into the model's record lines) and ``("read", 0)`` steps,
    fully determined by the seed — two runs with the same seed drive
    byte-identical schedules.
    """

    uid: int
    aname: str
    model: str
    wake: bool
    steps: tuple[tuple[str, float], ...]


def build_models(weights: dict[str, float] | None = None
                 ) -> list[TrafficModel]:
    """Record the Figures 5-12 journals once and weight them.

    Recording replays every scenario locally, which generates fs
    traffic of its own; it runs under a throwaway registry so a bench
    or test ledger never inherits the model-building noise.
    """
    from repro.tools.sessioncheck import record_figures

    chosen = DEFAULT_WEIGHTS if weights is None else weights
    with MetricsRegistry("loadgen.models").activate():
        scripts = record_figures()
    models = []
    for name in sorted(chosen):
        if name not in scripts:
            raise ValueError(f"no recorded journal for model {name!r}")
        lines = tuple(scripts[name]["input"].splitlines(keepends=True))
        models.append(TrafficModel(name, float(chosen[name]), lines))
    return models


def plan_user(seed: int, uid: int, models: list[TrafficModel]) -> UserPlan:
    """The deterministic plan for one user (pure function of the seed)."""
    rng = random.Random(f"loadgen:{seed}:{uid}")
    model = rng.choices(models, weights=[m.weight for m in models])[0]
    read_every = rng.randrange(2, 5)
    wake = rng.random() < WAKE_FRACTION
    steps: list[tuple[str, float]] = []
    for index in range(len(model.lines)):
        steps.append(("think", rng.expovariate(1.0 / THINK_MEAN_MS)))
        steps.append(("write", float(index)))
        if (index + 1) % read_every == 0:
            steps.append(("read", 0.0))
    steps.append(("read", 0.0))  # every visit ends looking at the screen
    return UserPlan(uid=uid, aname=f"lg.u{uid}", model=model.name,
                    wake=wake, steps=tuple(steps))


def schedule(seed: int, users: int,
             models: list[TrafficModel]) -> list[UserPlan]:
    """Every user's plan.  At least one user always returns (wakes),
    so the wake op class is never silently unsampled in a small run."""
    plans = [plan_user(seed, uid, models) for uid in range(users)]
    if plans and not any(p.wake for p in plans):
        first = plans[0]
        plans[0] = UserPlan(first.uid, first.aname, first.model, True,
                            first.steps)
    return plans


def schedule_text(plans: list[UserPlan]) -> str:
    """The canonical serialization of a schedule.

    Byte-identical across runs for the same seed — the determinism
    tests compare this text, and its CRC travels in every report as a
    cross-run witness.
    """
    out = ["loadgen-schedule 1\n"]
    for p in plans:
        steps = ";".join(
            f"t{arg:.3f}" if op == "think"
            else (f"w{int(arg)}" if op == "write" else "r")
            for op, arg in p.steps)
        out.append(f"{p.aname} model={p.model} wake={int(p.wake)} {steps}\n")
    return "".join(out)


def schedule_crc(plans: list[UserPlan]) -> str:
    return f"{zlib.crc32(schedule_text(plans).encode()) & 0xffffffff:08x}"


@dataclass
class LoadReport:
    """What the fleet saw: per-op-class latency, errors, backpressure."""

    users: int
    shards: int
    seed: int
    transport: str
    workers: int
    duration_s: float
    ops: dict[str, int]
    op_us: dict[str, dict[str, float]]
    apply_us_by_kind: dict[str, dict[str, float]]
    errors: dict[str, int]
    error_rate: float
    backpressure: dict[str, int]
    retries: dict[str, int]
    max_live: int
    live_peak: int
    schedule_crc: str
    problems: list[str]
    chaos: dict | None = None

    def to_dict(self) -> dict:
        return {
            "users": self.users,
            "shards": self.shards,
            "seed": self.seed,
            "transport": self.transport,
            "workers": self.workers,
            "duration_s": round(self.duration_s, 3),
            "ops": dict(sorted(self.ops.items())),
            "op_us": {op: {k: round(v, 3) for k, v in stats.items()}
                      for op, stats in sorted(self.op_us.items())},
            "apply_us_by_kind": {
                kind: {k: round(v, 3) for k, v in stats.items()}
                for kind, stats in sorted(self.apply_us_by_kind.items())},
            "errors": dict(sorted(self.errors.items())),
            "error_rate": round(self.error_rate, 6),
            "backpressure": dict(sorted(self.backpressure.items())),
            "retries": dict(sorted(self.retries.items())),
            "max_live": self.max_live,
            "live_peak": self.live_peak,
            "schedule_crc": self.schedule_crc,
            "problems": list(self.problems),
            **({"chaos": self.chaos} if self.chaos is not None else {}),
        }


class LoadGen:
    """A closed-loop fleet of simulated users against a hosted system.

    The driver owns the host (or shard router) it attacks: it needs
    the hosts' ledgers to await hibernation quiesce between phases,
    discard the parked snapshots at the end, and fold the host-level
    counters into its own registry for the bench report.  Session-
    scoped counters (fs traffic, journal appends) stay inside the
    sessions' private ledgers and never reach the process default —
    the loadgen contribution to a bench's counter section is exactly
    the host-level and client-side loadgen ledger, both balanced.
    """

    def __init__(self, *, users: int, shards: int = 0, seed: int = 1,
                 workers: int = 8, transport: str = "tcp",
                 think_scale: float = 0.0, faults: bool = False,
                 models: list[TrafficModel] | None = None,
                 max_live: int | None = None, chaos: int = 0,
                 chaos_heartbeat: float = CHAOS_HEARTBEAT) -> None:
        if users < 1:
            raise ValueError("a fleet needs at least one user")
        if chaos and (not shards or chaos > shards):
            raise ValueError(
                "chaos kills each hit a distinct replicated shard: "
                f"need shards >= {chaos}, have {shards}")
        self.users = users
        self.shards = shards
        self.seed = seed
        self.chaos = chaos
        self.chaos_heartbeat = chaos_heartbeat
        self._chaos_stop = threading.Event()
        self.workers = max(1, min(workers, users))
        self.transport = transport
        self.think_scale = think_scale
        self.faults = faults
        self.models = models
        # the hibernation budget: small enough that every drop
        # hibernates (users >> budget), large enough that a victim is
        # never a *connected* session — at most `workers` visits are
        # live at once in a closed loop, and the margin absorbs
        # server-side teardown lag after a client drops its channel
        self.max_live = max_live if max_live is not None \
            else self.workers * 4 + 4
        self.metrics = MetricsRegistry("loadgen")
        # client-side traffic runs under this registry so rehydrated
        # taxonomy errors (fs.error.* bumps in MuxClient) never leak
        # into the process-default ledger a bench is balancing
        self._client_metrics = MetricsRegistry("loadgen.client")
        self._lock = threading.Lock()
        self._attached = 0
        self.problems: list[str] = []
        self.journal_samples: dict[str, str] = {}

    # -- plumbing ---------------------------------------------------------

    def _make_target(self):
        kwargs = dict(width=160, height=60, workers=4,
                      max_live=self.max_live,
                      plan_for=self._plan_for if self.faults else None)
        if self.chaos:
            return ShardRouter(shards=self.shards, replicate=True,
                               heartbeat_interval=self.chaos_heartbeat,
                               **kwargs)
        if self.shards:
            return ShardRouter(shards=self.shards, **kwargs)
        return SessionHost(**kwargs)

    def _hosts(self, target) -> list[SessionHost]:
        return target.hosts if self.shards else [target]

    def _plan_for(self, session_id: str) -> FaultPlan | None:
        """The storm schedule: every FAULT_EVERY-th user misbehaves."""
        try:
            uid = int(session_id.rsplit("u", 1)[1])
        except (IndexError, ValueError):
            return None
        if uid % FAULT_EVERY:
            return None
        return FaultPlan(Fault(op="read", path="*screen*", at=2),
                         Fault(op="write", path="*input*", at=3))

    def _faulted(self, plan: UserPlan) -> bool:
        return self.faults and plan.uid % FAULT_EVERY == 0

    def _counter(self, hosts, name: str) -> int:
        return sum(host.metrics.counter(name) for host in hosts)

    def _await_counter(self, hosts, name: str, want: int,
                       timeout: float = 60.0) -> bool:
        deadline = time.monotonic() + timeout
        while self._counter(hosts, name) < want:
            if time.monotonic() > deadline:
                return False
            time.sleep(0.005)
        return True

    def _dial(self, target, addr):
        if self.transport == "tcp":
            return dial(*addr)
        return target.pipe()

    # -- one user's visit -------------------------------------------------

    def _timed(self, op: str, fn):
        """Run one op, retrying busy replies, timing the success."""
        for attempt in range(_RETRIES + 1):
            start = time.perf_counter()
            try:
                result = fn()
            except Busy:
                self.metrics.incr("loadgen.backpressure.busy")
                if attempt == _RETRIES:
                    raise
                self.metrics.incr(f"loadgen.retry.{op}")
                time.sleep(0.01 * (attempt + 1))
                continue
            self.metrics.observe_op("loadgen.op_us", op,
                                    (time.perf_counter() - start) * 1e6)
            self.metrics.incr(f"loadgen.ops.{op}")
            self.metrics.incr("loadgen.ops.total")
            return result
        raise AssertionError("unreachable")

    def _visit(self, target, addr, plan: UserPlan,
               lines: tuple[str, ...], returning: bool,
               acked: list[int] | None = None) -> None:
        """Attach (or wake), replay the plan, drop the connection.

        *acked* (chaos runs) is a one-slot box counting the writes the
        server acknowledged — the floor the promoted standby's
        ``inputs`` index must reach, because sync replication ships a
        record before its write is acked.
        """
        attach_op = "wake" if returning else "attach"
        client = self._timed(
            attach_op,
            lambda: MuxClient(self._dial(target, addr), aname=plan.aname,
                              uname=f"lg{plan.uid}"))
        with self._lock:
            self._attached += 1
        try:
            remote = mount_remote(client)
            screen = remote.lookup("screen")
            if returning:
                # a woken world must still render; one look is the visit
                text = self._timed("read", lambda: screen.data)
                if not text:
                    self._problem(f"{plan.aname}: woken screen is empty")
                return
            with remote.lookup("input").open("a") as sink:
                for op, arg in plan.steps:
                    if op == "think":
                        if self.think_scale > 0:
                            time.sleep(arg / 1000.0 * self.think_scale)
                    elif op == "write":
                        line = lines[int(arg)]
                        self._timed("write", lambda: sink.write(line))
                        if acked is not None:
                            acked[0] += 1
                    else:
                        self._timed("read", lambda: screen.data)
        finally:
            client.close()  # the drop hibernates the session

    def _problem(self, text: str) -> None:
        with self._lock:
            if len(self.problems) < 32:
                self.problems.append(text)

    # -- chaos: kills, severed users, recovery ----------------------------

    def _chaos_visit(self, target, addr, plan: UserPlan,
                     lines: tuple[str, ...]) -> None:
        """One visit that survives its shard being killed under it."""
        acked = [0]
        try:
            self._visit(target, addr, plan, lines, returning=False,
                        acked=acked)
        except (FsError, OSError):
            self.metrics.incr("loadgen.chaos.severed")
            self._recover(target, addr, plan, lines, acked[0])

    def _recover(self, target, addr, plan: UserPlan,
                 lines: tuple[str, ...], acked: int) -> None:
        """Re-attach after a kill and finish the visit on the standby.

        Retries until the router repoints the slot at the promoted
        host, then reads the session's ``inputs`` file — how many
        input records the promoted journal holds.  Every acknowledged
        write MUST be covered (that is the sync-replication contract;
        a shortfall counts into ``loadgen.chaos.acked_lost``, the
        zero-tolerance SLO) and only the unacknowledged tail replays.
        """
        deadline = time.monotonic() + CHAOS_RECOVER_TIMEOUT
        while time.monotonic() < deadline:
            client = None
            try:
                start = time.perf_counter()
                client = MuxClient(self._dial(target, addr),
                                   aname=plan.aname, uname=f"lg{plan.uid}")
                self.metrics.observe_op(
                    "loadgen.op_us", "recover",
                    (time.perf_counter() - start) * 1e6)
                remote = mount_remote(client)
                held = int(remote.lookup("inputs").data.strip() or "0")
                if held < acked:
                    self.metrics.incr("loadgen.chaos.acked_lost",
                                      acked - held)
                    self._problem(
                        f"{plan.aname}: standby holds {held} inputs but "
                        f"{acked} writes were acknowledged")
                with remote.lookup("input").open("a") as sink:
                    for line in lines[held:]:
                        sink.write(line)
                if not remote.lookup("screen").data:
                    self._problem(f"{plan.aname}: recovered screen empty")
                self.metrics.incr("loadgen.chaos.recovered")
                return
            except (FsError, OSError):
                time.sleep(0.05)
            finally:
                if client is not None:
                    client.close()
        self.metrics.incr("loadgen.chaos.unrecovered")
        self._problem(f"{plan.aname}: never recovered after the kill")

    def _chaos_controller(self, target, total_writes: int) -> None:
        """Kill ``chaos`` distinct primaries at seeded soak points.

        Each kill waits for its promotion before the next, so the
        fleet never faces two simultaneous outages; kills not yet due
        when the drive finishes fire immediately (the kill count is
        part of the deterministic plan, not best-effort).
        """
        rng = random.Random(f"loadgen:chaos:{self.seed}")
        victims = rng.sample(range(self.shards), k=self.chaos)
        points = sorted(rng.uniform(0.15, 0.7) for _ in victims)
        for index, frac in zip(victims, points):
            threshold = int(frac * total_writes)
            while (self.metrics.counter("loadgen.ops.write") < threshold
                    and not self._chaos_stop.is_set()):
                time.sleep(0.01)
            target.kill_shard(index)
            self.metrics.incr("loadgen.chaos.kills")
            pair = target.pairs[index]
            deadline = time.monotonic() + CHAOS_RECOVER_TIMEOUT
            while not pair.promoted and time.monotonic() < deadline:
                time.sleep(0.01)
            if not pair.promoted:
                self._problem(f"chaos: shard {index} never promoted")

    def _drive(self, target, addr, plans: list[UserPlan],
               by_name: dict[str, TrafficModel],
               returning: bool) -> None:
        """Fan the visits over the worker pool (stride partition)."""
        def worker(offset: int) -> None:
            with self._client_metrics.activate():
                for plan in plans[offset::self.workers]:
                    lines = by_name[plan.model].lines
                    if self.chaos and not returning:
                        self._chaos_visit(target, addr, plan, lines)
                        continue
                    try:
                        self._visit(target, addr, plan, lines, returning)
                    except FsError as exc:
                        if self._faulted(plan):
                            self.metrics.incr("loadgen.errors.faulted")
                        else:
                            self.metrics.incr(f"loadgen.errors.{exc.kind}")
                            self.metrics.incr("loadgen.users.failed")
                            self._problem(
                                f"{plan.aname}: {exc.diagnostic()}")
                    except Exception as exc:  # noqa: BLE001 - keep driving
                        self.metrics.incr("loadgen.errors.exception")
                        self.metrics.incr("loadgen.users.failed")
                        self._problem(f"{plan.aname}: {exc!r}")

        threads = [threading.Thread(target=worker, args=(i,),
                                    name=f"loadgen-w{i}")
                   for i in range(self.workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    # -- the run ----------------------------------------------------------

    def run(self) -> LoadReport:
        models = self.models if self.models is not None else build_models()
        by_name = {m.name: m for m in models}
        plans = schedule(self.seed, self.users, models)
        crc = schedule_crc(plans)
        if self.chaos:
            return self._run_chaos(plans, by_name, crc)
        target = self._make_target()
        hosts = self._hosts(target)
        addr = target.listen() if self.transport == "tcp" else None
        start = time.perf_counter()
        try:
            # phase 1: every user visits once; each drop hibernates
            self._drive(target, addr, plans, by_name, returning=False)
            if not self._await_counter(hosts, "host.sessions.hibernated",
                                       self._attached):
                self._problem(
                    f"quiesce timeout: "
                    f"{self._counter(hosts, 'host.sessions.hibernated')} "
                    f"of {self._attached} drops hibernated")
            # phase 2: the wake cohort returns to parked sessions
            cohort = [p for p in plans if p.wake]
            self._drive(target, addr, cohort, by_name, returning=True)
            if not self._await_counter(hosts, "host.sessions.hibernated",
                                       self._attached):
                self._problem("quiesce timeout after the wake wave")
        finally:
            duration = time.perf_counter() - start
            self._cleanup(target, hosts)
        return self._report(target, hosts, duration, crc)

    def _run_chaos(self, plans: list[UserPlan],
                   by_name: dict[str, TrafficModel],
                   crc: str) -> LoadReport:
        """The failover soak: one visit wave with seeded kills under it.

        There is no wake phase and no strict hibernation quiesce —
        sessions resident on a killed primary never hibernate there;
        they resurface on the promoted standby.  The verdicts live in
        the ``chaos`` section instead: kills == promotions, severed ==
        recovered (``unrecovered`` is zero-tolerance), ``acked_lost``
        is zero, and the replica ship/promotion ledgers balance.
        The chaos ledgers are **self-contained**: killed hosts' books
        are rightly unbalanced, so nothing here merges into the
        process-default registry a clean bench is balancing.
        """
        total_writes = sum(len(by_name[p.model].lines) for p in plans)
        target = self._make_target()
        addr = target.listen() if self.transport == "tcp" else None
        controller = threading.Thread(
            target=self._chaos_controller, args=(target, total_writes),
            daemon=True, name="loadgen-chaos")
        start = time.perf_counter()
        controller.start()
        try:
            self._drive(target, addr, plans, by_name, returning=False)
        finally:
            self._chaos_stop.set()
            controller.join(timeout=2 * CHAOS_RECOVER_TIMEOUT)
            duration = time.perf_counter() - start
        try:
            section = self._chaos_section(target, duration)
        finally:
            target.close()
        ops = {op: self.metrics.counter(f"loadgen.ops.{op}")
               for op in OP_CLASSES if op != "apply"}
        ops["apply"] = 0
        total = sum(ops.values())
        op_us = {op: self.metrics.histogram(f"loadgen.op_us.{op}") or {}
                 for op in OP_CLASSES if op != "apply"}
        op_us["apply"] = {}
        errors = {name.removeprefix("loadgen.errors."): value
                  for name, value in
                  self.metrics.counters("loadgen.errors.").items()}
        unexpected = sum(v for k, v in errors.items() if k != "faulted")
        return LoadReport(
            users=self.users, shards=self.shards, seed=self.seed,
            transport=self.transport, workers=self.workers,
            duration_s=duration, ops=ops, op_us=op_us,
            apply_us_by_kind={}, errors=errors,
            error_rate=(unexpected / total) if total else 0.0,
            backpressure={"busy": self.metrics.counter(
                "loadgen.backpressure.busy")},
            retries={name.removeprefix("loadgen.retry."): value
                     for name, value in
                     self.metrics.counters("loadgen.retry.").items()},
            max_live=self.max_live,
            live_peak=max(host.live_peak for host in target.hosts),
            schedule_crc=crc, problems=list(self.problems), chaos=section)

    def _chaos_section(self, target, duration: float) -> dict:
        """The replication verdicts, aggregated across every ledger the
        run touched — killed primaries and surviving standbys included."""
        for pair in target.pairs:
            if pair is not None and not pair.killed:
                pair.feed.quiesce()
        problems = [f"audit: {p}" for p in target.audit()]
        agg = MetricsRegistry("loadgen.replica")
        agg.merge(target.metrics)
        for host in list(target.hosts) + list(target.dead):
            agg.merge(host.metrics)
        for pair in target.pairs:
            if pair is not None and not pair.promoted:
                agg.merge(pair.standby.host.metrics)
        shipped = agg.counter("replica.ship.frames")
        acked = agg.counter("replica.ack.frames")
        ship_errors = agg.counter("replica.ship.errors")
        inflight = sum(pair.feed.pending() for pair in target.pairs
                       if pair is not None)
        if shipped != acked + inflight + ship_errors:
            problems.append(
                f"replica ship ledger unbalanced: shipped {shipped} != "
                f"acked {acked} + inflight {inflight} + errors "
                f"{ship_errors}")
        promoted = agg.counter("replica.sessions.promoted")
        p_live = agg.counter("replica.promoted.live")
        p_parked = agg.counter("replica.promoted.parked")
        if promoted != p_live + p_parked:
            problems.append(
                f"replica promotion ledger unbalanced: promoted "
                f"{promoted} != live {p_live} + parked {p_parked}")

        def hist(name: str, source=agg) -> dict:
            return {k: round(v, 3)
                    for k, v in (source.histogram(name) or {}).items()}

        return {
            "users": self.users, "shards": self.shards, "mode": "sync",
            "kills": self.metrics.counter("loadgen.chaos.kills"),
            "promotions": target.metrics.counter("router.shards.promoted"),
            "severed": self.metrics.counter("loadgen.chaos.severed"),
            "recovered": self.metrics.counter("loadgen.chaos.recovered"),
            "unrecovered": self.metrics.counter(
                "loadgen.chaos.unrecovered"),
            "acked_lost": self.metrics.counter("loadgen.chaos.acked_lost"),
            "promote_us": hist("replica.promote_us"),
            "failover_us": hist("router.failover_us"),
            "recover_us": hist("loadgen.op_us.recover", self.metrics),
            "lag_us": hist("replica.lag_us"),
            "lag_records": hist("replica.lag_records"),
            "ledger": {
                "shipped_frames": shipped, "acked_frames": acked,
                "ship_errors": ship_errors, "inflight": inflight,
                "promoted": promoted, "promoted_live": p_live,
                "promoted_parked": p_parked,
            },
            "duration_s": round(duration, 3),
            "problems": problems[:32],
        }

    def _cleanup(self, target, hosts) -> None:
        """Discard the parked snapshots (sampling a few first), close."""
        for host in hosts:
            for sid, path in dict(host.hibernated).items():
                if len(self.journal_samples) < 6:
                    try:
                        self.journal_samples[sid] = path.read_text()
                    except OSError:
                        pass
                try:
                    host.evict(sid)
                except FsError:
                    pass  # woken or already discarded
        target.close()

    def _report(self, target, hosts, duration: float,
                crc: str) -> LoadReport:
        for problem in target.audit():
            self._problem(f"audit: {problem}")
        opened, closed = target.session_ledger()
        if opened != closed:
            self._problem(f"session leak: opened={opened} closed={closed}")
        # the complete ledger — host + retired sessions — stays private
        # to this report; only host-level counters are folded into
        # self.metrics for the bench's global (and benchgate-audited)
        # counter section
        full = MetricsRegistry("loadgen.sessions")
        target.drain(into=full)
        if self.shards:
            self.metrics.merge(target.metrics)
        for host in hosts:
            self.metrics.merge(host.metrics)

        ops = {op: self.metrics.counter(f"loadgen.ops.{op}")
               for op in OP_CLASSES if op != "apply"}
        apply_stats = full.histogram("session.apply_us") or {}
        ops["apply"] = int(apply_stats.get("count", 0))
        total = sum(ops.values())
        self.metrics.incr("loadgen.ops.apply", ops["apply"])
        self.metrics.incr("loadgen.ops.total", ops["apply"])

        op_us = {op: self.metrics.histogram(f"loadgen.op_us.{op}") or {}
                 for op in OP_CLASSES if op != "apply"}
        op_us["apply"] = apply_stats
        prefix = "session.apply_us."
        by_kind = {name.removeprefix(prefix): stats
                   for name, stats in full.histograms(prefix).items()}

        errors = {name.removeprefix("loadgen.errors."): value
                  for name, value in
                  self.metrics.counters("loadgen.errors.").items()}
        unexpected = sum(v for k, v in errors.items() if k != "faulted")
        backpressure = {
            "busy": self.metrics.counter("loadgen.backpressure.busy"),
            "paused": self.metrics.counter("wire.backpressure.paused"),
            "resumed": self.metrics.counter("wire.backpressure.resumed"),
        }
        retries = {name.removeprefix("loadgen.retry."): value
                   for name, value in
                   self.metrics.counters("loadgen.retry.").items()}
        return LoadReport(
            users=self.users, shards=self.shards, seed=self.seed,
            transport=self.transport, workers=self.workers,
            duration_s=duration, ops=ops, op_us=op_us,
            apply_us_by_kind=by_kind, errors=errors,
            error_rate=(unexpected / total) if total else 0.0,
            backpressure=backpressure, retries=retries,
            max_live=self.max_live,
            live_peak=max(host.live_peak for host in hosts),
            schedule_crc=crc, problems=list(self.problems))


def validate(report: LoadReport) -> list[str]:
    """The smoke acceptance: sampled everywhere, clean everywhere."""
    problems = list(report.problems)
    for op in OP_CLASSES:
        if report.chaos is not None and op in ("apply", "wake"):
            continue  # a chaos run has no wake phase; apply stays server-side
        if not (report.op_us.get(op) or {}).get("count"):
            problems.append(f"op class {op!r} never sampled")
    unexpected = {k: v for k, v in report.errors.items()
                  if k != "faulted" and v}
    if unexpected:
        problems.append(f"unexpected errors: {unexpected}")
    if report.chaos is not None:
        chaos = report.chaos
        if chaos.get("kills", 0) != chaos.get("promotions", 0):
            problems.append(
                f"chaos: {chaos.get('kills')} kills but "
                f"{chaos.get('promotions')} promotions")
        if chaos.get("acked_lost"):
            problems.append(
                f"chaos: {chaos['acked_lost']} acknowledged writes lost "
                f"to failover — the budget is zero")
        if chaos.get("unrecovered"):
            problems.append(
                f"chaos: {chaos['unrecovered']} severed users never "
                f"recovered")
        for problem in chaos.get("problems") or []:
            if problem not in problems:
                problems.append(f"chaos: {problem}")
    return problems


def _write_artifacts(tag: str, report: LoadReport,
                     journals: dict[str, str],
                     problems: list[str]) -> pathlib.Path:
    """The failure record CI uploads: report, verdicts, journals."""
    outdir = ARTIFACTS
    outdir.mkdir(parents=True, exist_ok=True)
    (outdir / f"report-{tag}.json").write_text(
        json.dumps(report.to_dict(), indent=2) + "\n")
    (outdir / f"problems-{tag}.txt").write_text(
        "".join(f"{p}\n" for p in problems) or "no problems recorded\n")
    jdir = outdir / "journals"
    jdir.mkdir(exist_ok=True)
    for sid, text in journals.items():
        (jdir / f"{tag}.{sid}.journal").write_text(text)
    return outdir


def _write_json_report(tag: str, report: LoadReport) -> pathlib.Path:
    """The machine-readable artifact ``--json`` asks for."""
    ARTIFACTS.mkdir(parents=True, exist_ok=True)
    path = ARTIFACTS / f"report-{tag}.json"
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return path


def smoke(users: int, shards: int, seed: int, transport: str,
          json_out: bool = False) -> int:
    """The CI gate: one small fleet, two topologies, identical counts."""
    models = build_models()
    reports: dict[str, LoadReport] = {}
    failed = False
    for tag, n_shards in (("plain", 0), (f"shards{shards}", shards)):
        lg = LoadGen(users=users, shards=n_shards, seed=seed,
                     workers=8, transport=transport, models=models)
        report = lg.run()
        reports[tag] = report
        if json_out:
            print(f"loadgen: report-{tag}.json -> "
                  f"{_write_json_report(tag, report)}")
        problems = validate(report)
        for problem in problems:
            print(f"loadgen: {tag}: {problem}", file=sys.stderr)
        if problems:
            failed = True
            outdir = _write_artifacts(tag, report, lg.journal_samples,
                                      problems)
            print(f"loadgen: {tag}: failure artifacts in {outdir}",
                  file=sys.stderr)
    plain, sharded = reports["plain"], reports[f"shards{shards}"]
    if plain.ops != sharded.ops:
        failed = True
        print(f"loadgen: op-class counts diverge across topologies: "
              f"plain={plain.ops} shards={sharded.ops}", file=sys.stderr)
        _write_artifacts("divergence", sharded, {}, [
            f"plain ops:   {plain.ops}",
            f"sharded ops: {sharded.ops}"])
    if plain.schedule_crc != sharded.schedule_crc:
        failed = True
        print("loadgen: schedule CRC diverged between runs of one seed",
              file=sys.stderr)
    if not failed:
        for tag, report in reports.items():
            p99 = {op: round((stats or {}).get("p99", 0.0))
                   for op, stats in report.op_us.items()}
            print(f"loadgen: {tag}: {report.users} users, "
                  f"{report.ops['write']} writes, p99(us)={p99}")
        print(f"loadgen: smoke clean — {users} users, seed {seed}, "
              f"identical op-class counts on 1 host and {shards} shards")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    users = 0
    shards = 0
    seed = 20260808
    workers = 8
    transport = "tcp"
    think = 0.0
    faults = False
    chaos = 0
    json_out = False
    run_smoke = False
    report_path: str | None = None
    usage = ("usage: loadgen [--users N] [--shards N] [--workers K] "
             "[--seed S] [--pipe | --tcp] [--think X] [--faults] "
             "[--chaos N] [--json] [--report PATH] [--smoke]")
    while args:
        arg = args.pop(0)
        if arg == "--users" and args and args[0].isdigit():
            users = int(args.pop(0))
        elif arg == "--shards" and args and args[0].isdigit():
            shards = int(args.pop(0))
        elif arg == "--workers" and args and args[0].isdigit():
            workers = int(args.pop(0))
        elif arg == "--seed" and args and args[0].isdigit():
            seed = int(args.pop(0))
        elif arg == "--chaos" and args and args[0].isdigit():
            chaos = int(args.pop(0))
        elif arg == "--think" and args:
            try:
                think = float(args.pop(0))
            except ValueError:
                print(usage, file=sys.stderr)
                return 2
        elif arg == "--pipe":
            transport = "pipe"
        elif arg == "--tcp":
            transport = "tcp"
        elif arg == "--faults":
            faults = True
        elif arg == "--json":
            json_out = True
        elif arg == "--smoke":
            run_smoke = True
        elif arg == "--report" and args:
            report_path = args.pop(0)
        else:
            print(usage, file=sys.stderr)
            return 2
    if run_smoke:
        return smoke(users or 24, shards or 4, seed, transport,
                     json_out=json_out)
    if chaos and not shards:
        shards = max(chaos, 4)
    try:
        lg = LoadGen(users=users or 100, shards=shards, seed=seed,
                     workers=workers, transport=transport,
                     think_scale=think, faults=faults, chaos=chaos)
    except ValueError as exc:
        print(f"loadgen: {exc}", file=sys.stderr)
        return 2
    report = lg.run()
    text = json.dumps(report.to_dict(), indent=2) + "\n"
    if report_path:
        pathlib.Path(report_path).write_text(text)
    else:
        print(text, end="")
    if json_out:
        _write_json_report("chaos" if chaos else "run", report)
    problems = validate(report)
    for problem in problems:
        print(f"loadgen: {problem}", file=sys.stderr)
    if problems:
        _write_artifacts("run", report, lg.journal_samples, problems)
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
