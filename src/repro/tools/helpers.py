"""help/parse, help/buf, help/goto, help/window: the glue utilities.

``help/parse`` is the first line of every tool script: "examines
$helpsel and establishes another set of environment variables, file,
id, and line, describing what the user is pointing at."  Ours emits
rc assignments on standard output for ``eval`` to absorb::

    word='176153' id='n' first='2' file='/usr/rob/src/help/exec.c'
    dir='/usr/rob/src/help' line='252' q0='4078' q1='4078' wid='7'

``help/buf`` buffers its input completely before writing it on (so a
window update arrives atomically), ``help/goto`` closes the loop the
paper left open ("a future change to help will be to close this loop
so the Open operation also happens automatically"), and
``help/window`` maps a window name to its number for scripts that
update an existing window (the mail tool's ``reread``).

These commands need the live :class:`~repro.core.help.Help` object, so
they are built by :func:`make_help_commands` as closures over it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.execute import parse_helpsel
from repro.core.selection import parse_address, resolve_name
from repro.core.window import Subwindow
from repro.shell.interp import IO, Interp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.help import Help


def _quote(value: str) -> str:
    """rc single-quoting."""
    return "'" + value.replace("'", "''") + "'"


def make_help_commands(
        help_app: "Help",
) -> dict[str, Callable[[Interp, list[str], IO], int]]:
    """The command table entries that need the application object."""

    def cmd_parse(interp: Interp, args: list[str], io: IO) -> int:
        """help-parse [-c] — describe the current selection as rc vars."""
        raw = (interp.get("helpsel") or [""])[0]
        try:
            wid, sub_name, q0, q1 = parse_helpsel(raw)
        except ValueError:
            io.stderr.append("parse: no usable $helpsel\n")
            return 1
        window = help_app.windows.get(wid)
        if window is None:
            io.stderr.append(f"parse: window {wid} is gone\n")
            return 1
        sub = Subwindow(sub_name)
        text = window.text(sub)
        if q0 == q1:
            w0, w1 = text.word_at(q0)
            word = text.slice(w0, w1) or text.slice(*text.filename_at(q0))
        else:
            word = text.slice(q0, q1)
        name0, name1 = (q0, q1) if q0 != q1 else text.filename_at(q0)
        name = text.slice(name0, name1)
        line = text.line_of(q0)
        line_start = text.pos_of_line(line)
        line_end = text.line_span(line)[1]
        first_words = text.slice(line_start, line_end).split()
        first = first_words[0] if first_words else ""
        file_name = window.name().rstrip("/")
        if "-c" in args and not file_name:
            io.stderr.append("parse: window has no file\n")
            return 1
        pairs = [
            ("word", word), ("id", word), ("name", name), ("first", first),
            ("file", file_name), ("dir", window.directory()),
            ("line", str(line)), ("q0", str(q0)), ("q1", str(q1)),
            ("wid", str(wid)),
        ]
        io.stdout.append(" ".join(f"{key}={_quote(value)}"
                                  for key, value in pairs) + "\n")
        return 0

    def cmd_buf(interp: Interp, args: list[str], io: IO) -> int:
        """help-buf — pass stdin through whole (atomic window updates)."""
        io.stdout.append(io.stdin)
        return 0

    def cmd_goto(interp: Interp, args: list[str], io: IO) -> int:
        """help-goto file[:line] — Open directly (the closed loop)."""
        if not args:
            io.stderr.append("usage: goto file:line\n")
            return 1
        address = parse_address(args[0])
        path = resolve_name(address.name, interp.cwd)
        window = help_app.open_path(path, line=address.line)
        return 0 if window is not None else 1

    def cmd_window(interp: Interp, args: list[str], io: IO) -> int:
        """help-window name — print the number of the window named name."""
        if not args:
            io.stderr.append("usage: window name\n")
            return 1
        window = help_app.window_by_name(args[0])
        if window is None:
            return 1
        io.stdout.append(f"{window.id}\n")
        return 0

    return {
        "help-parse": cmd_parse,
        "help-buf": cmd_buf,
        "help-goto": cmd_goto,
        "help-window": cmd_window,
    }
