"""Interaction-cost instrumentation.

The paper's evaluation is a demonstration with quantified gestures:
"two button clicks" to open ``dat.h``, "three button clicks" to fetch
a declaration, "a total of three clicks of the middle button" to fix
and rebuild, and "through this entire demo I haven't yet touched the
keyboard."  This package makes those claims measurable:

- :mod:`repro.metrics.counter` — per-session counters help maintains
  (button presses, keystrokes, gesture log);
- :mod:`repro.metrics.klm` — a keystroke-level model assigning times
  to operators (K, P, B, H) so interaction *cost* can be compared;
- :mod:`repro.metrics.baseline` — KLM scripts of the same tasks in a
  traditional pop-up-menu / typing interface, the implicit baseline
  the paper argues against.
"""

from repro.metrics.counter import (InteractionStats, MetricsRegistry, counter,
                                   counters, current_registry,
                                   default_registry, hit_rate, histogram,
                                   histograms, incr, observe, observe_op,
                                   percentile, reset_counters,
                                   reset_histograms, set_default_registry,
                                   use_registry)
from repro.metrics.klm import KLM_TIMES, Action, Script, script_time

__all__ = ["InteractionStats", "Action", "Script", "script_time", "KLM_TIMES",
           "incr", "counter", "counters", "reset_counters", "hit_rate",
           "observe", "observe_op", "histogram", "histograms",
           "reset_histograms",
           "percentile", "MetricsRegistry", "current_registry",
           "default_registry", "set_default_registry", "use_registry"]
