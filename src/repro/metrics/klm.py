"""A keystroke-level model (KLM) of interaction cost.

Card, Moran & Newell's keystroke-level model assigns an expert time to
each physical operator; summing a task's operators predicts its
duration.  The paper argues in these exact terms — "involving less
mouse activity than with a typical pop-up menu", "it often seems
easier to retype the text than to use the mouse to pick it up, which
indicates that the interface has failed" — so the benchmarks score
help and a traditional interface with the same model.

Operator times are the standard published values (seconds).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Op(enum.Enum):
    """KLM operators."""

    K = "keystroke"      # one key press (skilled typist)
    P = "point"          # point with the mouse at a target
    B = "button"         # mouse button press or release
    H = "home"           # move hands keyboard <-> mouse
    M = "mental"         # mental preparation


#: Expert operator times in seconds (Card, Moran & Newell 1980).
KLM_TIMES: dict[Op, float] = {
    Op.K: 0.28,
    Op.P: 1.10,
    Op.B: 0.10,
    Op.H: 0.40,
    Op.M: 1.35,
}


@dataclass(frozen=True)
class Action:
    """*count* repetitions of one operator, with a note for the report."""

    op: Op
    count: int = 1
    note: str = ""

    @property
    def seconds(self) -> float:
        return KLM_TIMES[self.op] * self.count


@dataclass
class Script:
    """A task as a sequence of KLM actions."""

    name: str
    actions: list[Action] = field(default_factory=list)

    def add(self, op: Op, count: int = 1, note: str = "") -> "Script":
        """Append an action; returns self for chaining."""
        self.actions.append(Action(op, count, note))
        return self

    @property
    def seconds(self) -> float:
        return sum(action.seconds for action in self.actions)

    def count(self, op: Op) -> int:
        """Total repetitions of *op* in the script."""
        return sum(a.count for a in self.actions if a.op is op)

    @property
    def clicks(self) -> int:
        """Button *presses*: half the B operators (press + release)."""
        return self.count(Op.B) // 2

    @property
    def keystrokes(self) -> int:
        return self.count(Op.K)

    def report(self) -> str:
        """A one-line summary for the benchmark output."""
        return (f"{self.name}: {self.seconds:.2f}s "
                f"({self.clicks} clicks, {self.keystrokes} keystrokes)")


def script_time(actions: list[Action]) -> float:
    """Total time of a bare action list."""
    return sum(action.seconds for action in actions)


# -- help-side script builders ----------------------------------------------


def help_click(script: Script, note: str) -> Script:
    """Point somewhere and click: P B B."""
    return script.add(Op.P, 1, note).add(Op.B, 2, "press+release")


def help_chord(script: Script, note: str) -> Script:
    """A chord click needs no pointing: the hand is already there."""
    return script.add(Op.B, 2, note)
