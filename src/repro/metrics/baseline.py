"""KLM scripts for help and for the traditional interface it replaces.

The paper's implicit baseline is the early-90s status quo: a window
system with pop-up menus over character editors (vi/emacs) and typed
shell commands.  Each function below returns the same task scripted
both ways, so benchmarks can compare predicted times and click/key
counts.

Modelling choices (kept deliberately favourable to the baseline):

- a pop-up menu selection is press, drag to the item, release
  (B P B) — no time charged for menu appearance;
- the baseline user is a skilled typist (K = 0.28 s);
- mental-preparation M operators are charged equally to both sides
  at task boundaries, so they cancel; we omit them.
"""

from __future__ import annotations

from repro.metrics.klm import Op, Script, help_chord, help_click


def cut_selection() -> tuple[Script, Script]:
    """Cut already-selected text: help chord vs pop-up menu.

    Help: while the left button is still down from the selection,
    click middle ("it is convenient not to move the mouse").  The
    pop-up baseline must press the menu button, point at the Cut
    entry, and release.
    """
    ours = help_chord(Script("help: chord Cut"), "middle while left held")
    menu = (Script("menu: popup Cut")
            .add(Op.B, 1, "press menu button")
            .add(Op.P, 1, "point at Cut entry")
            .add(Op.B, 1, "release"))
    return ours, menu


def cut_via_word() -> tuple[Script, Script]:
    """Cut by clicking the word Cut on screen vs a pop-up menu.

    "one may just select the text normally, then click on Cut with
    the middle button, involving less mouse activity than with a
    typical pop-up menu" — the word is a fixed target already on
    screen; the menu item requires post-then-point.
    """
    ours = help_click(Script("help: click word Cut"), "middle-click on Cut")
    menu = (Script("menu: popup Cut")
            .add(Op.B, 1, "press menu button")
            .add(Op.P, 1, "point at Cut entry")
            .add(Op.B, 1, "release"))
    return ours, menu


def open_file_by_pointing(
        path: str = "/usr/rob/src/help/dat.h") -> tuple[Script, Script]:
    """Open a file whose name is on screen: two clicks vs retyping.

    Help (Figure 3): point into the name, click Open.  Baseline: home
    to the keyboard and retype the name into an editor command —
    "for small pieces of text such as file names it often seems
    easier to retype the text than to use the mouse to pick it up."
    """
    ours = Script("help: point+Open")
    help_click(ours, "point into file name")
    help_click(ours, "click Open")
    typed = f":e {path}\n"
    baseline = (Script("editor: retype name")
                .add(Op.H, 1, "hands to keyboard")
                .add(Op.K, len(typed), f"type {typed.strip()!r}"))
    return ours, baseline


def fetch_declaration() -> tuple[Script, Script]:
    """Fetch a variable's declaration: three clicks vs grep-and-open.

    Help: point at the variable, click decl, point at the output
    (done — the paper counts three button clicks).  Baseline: type a
    grep, read, then type an editor command with the file and line.
    """
    ours = Script("help: decl tool")
    help_click(ours, "point at variable")
    help_click(ours, "click decl")
    help_click(ours, "point at result / Open")
    grep_cmd = "grep -n n *.c\n"
    edit_cmd = "vi +136 dat.h\n"
    baseline = (Script("shell: grep + editor")
                .add(Op.H, 1, "hands to keyboard")
                .add(Op.K, len(grep_cmd), "type the grep")
                .add(Op.K, len(edit_cmd), "type the editor command"))
    return ours, baseline


def run_build() -> tuple[Script, Script]:
    """Rebuild after an edit: click mk vs typing make in a shell."""
    ours = help_click(Script("help: click mk"), "mk in the C browser tool")
    typed = "make\n"
    baseline = (Script("shell: type make")
                .add(Op.H, 1, "hands to keyboard")
                .add(Op.K, len(typed), "type make"))
    return ours, baseline


ALL_TASKS = {
    "cut-selection-chord": cut_selection,
    "cut-via-word": cut_via_word,
    "open-file-by-pointing": open_file_by_pointing,
    "fetch-declaration": fetch_declaration,
    "run-build": run_build,
}


def comparison_table() -> list[tuple[str, float, float, float]]:
    """(task, help seconds, baseline seconds, speedup) for every task."""
    rows = []
    for name, build in ALL_TASKS.items():
        ours, baseline = build()
        rows.append((name, ours.seconds, baseline.seconds,
                     baseline.seconds / ours.seconds))
    return rows
