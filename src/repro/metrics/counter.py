"""Counting what the user actually did: clicks, sweeps, keystrokes.

:class:`InteractionStats` is attached to every
:class:`repro.core.help.Help` instance and updated by its event layer;
integration tests assert the paper's numbers against it.

The module also hosts the **performance counters** the incremental
display pipeline, the file servers, the wire transport and the journal
report into.  Since the session-scoped refactor they live in a
:class:`MetricsRegistry` — a thread-safe object holding counters and
bounded latency histograms — rather than in module globals, so one
process can run many isolated ``help`` sessions (see
:mod:`repro.serve`) without their ledgers bleeding into each other.

Call sites did not have to change: the module-level :func:`incr` /
:func:`observe` / :func:`counter` functions still exist, but they are
a shim that delegates to the **active** registry — the one installed
for the current execution context with :func:`use_registry` (a
``contextvars`` binding, so each session-host worker routes to its own
session's registry), falling back to the process-wide default that
:func:`set_default_registry` swaps (a fresh registry per test).
"""

from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

# -- bounded latency reservoirs ----------------------------------------------

# Per-histogram sample cap.  Exact count/sum/min/max are always kept;
# beyond the cap the sample list is decimated (every other sample
# dropped, stride doubled), a deterministic systematic sample that
# keeps quantiles stable while bounding a long-running host's memory.
RESERVOIR_CAP = 2048


class Reservoir:
    """One histogram: exact moments plus a capped, decimated sample."""

    __slots__ = ("count", "total", "minimum", "maximum", "samples",
                 "stride", "_pending")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.samples: list[float] = []
        self.stride = 1        # keep every stride-th observation
        self._pending = 0      # observations since the last kept one

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._pending += 1
        if self._pending < self.stride:
            return
        self._pending = 0
        self.samples.append(value)
        if len(self.samples) >= RESERVOIR_CAP:
            # decimate: keep every other sample, double the stride
            del self.samples[1::2]
            self.stride *= 2

    def fold(self, other: "Reservoir") -> None:
        """Absorb *other* (a closed session's ledger roll-up)."""
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.samples.extend(other.samples)
        while len(self.samples) >= RESERVOIR_CAP:
            del self.samples[1::2]
            self.stride *= 2

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count,
            "p50": percentile(self.samples, 0.50),
            "p95": percentile(self.samples, 0.95),
            "p99": percentile(self.samples, 0.99),
        }


def percentile(samples: list[float], q: float) -> float:
    """The *q*-quantile (0..1) of *samples* by linear interpolation."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("percentile of no samples")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


# -- the registry ------------------------------------------------------------


class MetricsRegistry:
    """One session's (or one process's) counters and histograms.

    Every mutation takes the registry lock: ``incr`` is a
    read-modify-write, and under the wire layer's worker pool two RPCs
    bump the same counter concurrently — unlocked, increments are lost
    and the benchgate ledger stops balancing.  The lock is uncontended
    in the single-session case and held for nanoseconds, so the hot
    paths (a dict bump per event) stay cheap.
    """

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._reservoirs: dict[str, Reservoir] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {self.name!r}>"

    # -- counters ---------------------------------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        """Add *n* to the named performance counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        """Current value of the named counter (0 if never bumped)."""
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> dict[str, int]:
        """A snapshot of all counters whose name starts with *prefix*."""
        with self._lock:
            return {k: v for k, v in self._counters.items()
                    if k.startswith(prefix)}

    def reset_counters(self, prefix: str = "") -> None:
        """Zero the counters starting with *prefix* ('' resets everything)."""
        with self._lock:
            for key in list(self._counters):
                if key.startswith(prefix):
                    del self._counters[key]

    def hit_rate(self, kind: str = "layout.cache") -> float | None:
        """Hit rate of a hit/miss counter pair, or None if never exercised."""
        hits = self.counter(f"{kind}_hit")
        misses = self.counter(f"{kind}_miss")
        total = hits + misses
        return hits / total if total else None

    # -- histograms -------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one sample (e.g. a latency in microseconds) under *name*."""
        with self._lock:
            reservoir = self._reservoirs.get(name)
            if reservoir is None:
                reservoir = self._reservoirs[name] = Reservoir()
            reservoir.add(value)

    def observe_op(self, name: str, op: str, value: float) -> None:
        """Record one sample under *name* and its ``<name>.<op>`` bucket.

        Op-class tagging: the aggregate histogram answers "how slow is
        this path overall" while the per-op bucket answers "which op
        class blew the tail" — the shape the loadgen SLO budgets gate
        on (p99 per attach/read/write/apply/wake, not one blended
        number that a fast majority op can hide a regression inside).
        """
        with self._lock:
            for key in (name, f"{name}.{op}"):
                reservoir = self._reservoirs.get(key)
                if reservoir is None:
                    reservoir = self._reservoirs[key] = Reservoir()
                reservoir.add(value)

    def histogram(self, name: str) -> dict[str, float] | None:
        """Summary stats of the named histogram, or None if never observed.

        Keys: ``count``, ``min``, ``max``, ``p50``, ``p95``, ``p99`` —
        the shape benchmark reports and the wire layer's
        ``wire.rpc.<op>`` latency tracking need.  ``count``, ``min``,
        ``max`` and ``mean`` are exact however many samples were
        observed; the quantiles come from the bounded reservoir.
        """
        with self._lock:
            reservoir = self._reservoirs.get(name)
            if reservoir is None or not reservoir.count:
                return None
            return reservoir.summary()

    def histograms(self, prefix: str = "") -> dict[str, dict[str, float]]:
        """Summaries of every histogram whose name starts with *prefix*."""
        out: dict[str, dict[str, float]] = {}
        with self._lock:
            for name in sorted(self._reservoirs):
                if name.startswith(prefix):
                    reservoir = self._reservoirs[name]
                    if reservoir.count:
                        out[name] = reservoir.summary()
        return out

    def reset_histograms(self, prefix: str = "") -> None:
        """Drop the histograms starting with *prefix* ('' drops everything)."""
        with self._lock:
            for key in list(self._reservoirs):
                if key.startswith(prefix):
                    del self._reservoirs[key]

    # -- ledger roll-up ---------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s counters and histograms into this registry.

        The session host uses this at teardown: a closed session's
        private ledger is rolled up into the host's, so a benchmark
        run's ``BENCH_perf.json`` still carries the complete
        ``fs.open == fs.close`` balance across every session hosted.
        """
        with other._lock:
            counters = dict(other._counters)
            reservoirs = list(other._reservoirs.items())
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, theirs in reservoirs:
                mine = self._reservoirs.get(name)
                if mine is None:
                    mine = self._reservoirs[name] = Reservoir()
                mine.fold(theirs)

    def activate(self):
        """Bind this registry as the active one for the calling context."""
        return use_registry(self)


# -- the default-registry shim ------------------------------------------------

_default_registry = MetricsRegistry("process")

# The active registry for the current execution context.  Worker
# threads start with an empty context, so they see the default unless
# the code serving a session binds that session's registry explicitly
# (repro.fs.mux binds per RPC; repro.serve binds around session work).
_active: contextvars.ContextVar[MetricsRegistry | None] = \
    contextvars.ContextVar("repro_metrics_registry", default=None)


def current_registry() -> MetricsRegistry:
    """The registry module-level calls route to, right now."""
    active = _active.get()
    return _default_registry if active is None else active


def default_registry() -> MetricsRegistry:
    """The process-wide fallback registry."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default; returns the previous one.

    The test suites use this for isolation: a fresh registry per test,
    the previous one restored afterwards — no module globals mutated.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Route this context's metric calls to *registry* while active."""
    token = _active.set(registry)
    try:
        yield registry
    finally:
        _active.reset(token)


# Module-level API, signature-compatible with the pre-registry world:
# every call resolves the active registry at call time.

def incr(name: str, n: int = 1) -> None:
    """Add *n* to the named counter in the active registry."""
    current_registry().incr(name, n)


def counter(name: str) -> int:
    """Current value of the named counter (0 if never bumped)."""
    return current_registry().counter(name)


def counters(prefix: str = "") -> dict[str, int]:
    """A snapshot of all counters whose name starts with *prefix*."""
    return current_registry().counters(prefix)


def reset_counters(prefix: str = "") -> None:
    """Zero the counters starting with *prefix* ('' resets everything)."""
    current_registry().reset_counters(prefix)


def observe(name: str, value: float) -> None:
    """Record one histogram sample in the active registry."""
    current_registry().observe(name, value)


def observe_op(name: str, op: str, value: float) -> None:
    """Record one sample under *name* and its per-op-class bucket."""
    current_registry().observe_op(name, op, value)


def histogram(name: str) -> dict[str, float] | None:
    """Summary stats of the named histogram, or None if never observed."""
    return current_registry().histogram(name)


def histograms(prefix: str = "") -> dict[str, dict[str, float]]:
    """Summaries of every histogram whose name starts with *prefix*."""
    return current_registry().histograms(prefix)


def reset_histograms(prefix: str = "") -> None:
    """Drop the histograms starting with *prefix* ('' drops everything)."""
    current_registry().reset_histograms(prefix)


def hit_rate(kind: str = "layout.cache") -> float | None:
    """Hit rate of a hit/miss counter pair, or None if never exercised."""
    return current_registry().hit_rate(kind)


@dataclass
class InteractionStats:
    """Tallies of user input since the session began (or last reset)."""

    button_presses: int = 0
    keystrokes: int = 0
    gestures: list[str] = field(default_factory=list)

    def press(self, button_name: str) -> None:
        """Record one mouse button press."""
        self.button_presses += 1
        self.gestures.append(f"press:{button_name}")

    def keys(self, n: int) -> None:
        """Record *n* typed characters."""
        self.keystrokes += n
        if n:
            self.gestures.append(f"type:{n}")

    def note(self, what: str) -> None:
        """Record a semantic event (executed command, chord, ...)."""
        self.gestures.append(what)

    def reset(self) -> None:
        """Zero the counters (start of a measured task)."""
        self.button_presses = 0
        self.keystrokes = 0
        self.gestures.clear()

    @property
    def middle_clicks(self) -> int:
        """Presses of the middle (execute) button."""
        return sum(1 for g in self.gestures if g == "press:middle")

    @property
    def touched_keyboard(self) -> bool:
        """True if any text was typed (the zero-keystroke claim)."""
        return self.keystrokes > 0
