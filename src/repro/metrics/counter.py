"""Counting what the user actually did: clicks, sweeps, keystrokes.

:class:`InteractionStats` is attached to every
:class:`repro.core.help.Help` instance and updated by its event layer;
integration tests assert the paper's numbers against it.

The module also hosts the process-wide **performance counters** the
incremental display pipeline reports into: layout cache hits/misses,
cells repainted, full versus damage-tracked renders.  They make the
pipeline's claimed speedups observable — benchmarks read them out into
``bench_artifacts/BENCH_perf.json`` instead of asserting "it's faster"
blind.  Counting is a dict bump per event, cheap enough for hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# -- performance counters ---------------------------------------------------

_perf_counters: dict[str, int] = {}


def incr(name: str, n: int = 1) -> None:
    """Add *n* to the named performance counter."""
    _perf_counters[name] = _perf_counters.get(name, 0) + n


def counter(name: str) -> int:
    """Current value of the named counter (0 if never bumped)."""
    return _perf_counters.get(name, 0)


def counters(prefix: str = "") -> dict[str, int]:
    """A snapshot of all counters whose name starts with *prefix*."""
    return {k: v for k, v in _perf_counters.items() if k.startswith(prefix)}


def reset_counters(prefix: str = "") -> None:
    """Zero the counters starting with *prefix* ('' resets everything)."""
    for key in list(_perf_counters):
        if key.startswith(prefix):
            del _perf_counters[key]


# -- latency histograms ------------------------------------------------------

_histograms: dict[str, list[float]] = {}


def observe(name: str, value: float) -> None:
    """Record one sample (e.g. a latency in microseconds) under *name*."""
    _histograms.setdefault(name, []).append(value)


def percentile(samples: list[float], q: float) -> float:
    """The *q*-quantile (0..1) of *samples* by linear interpolation."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("percentile of no samples")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def histogram(name: str) -> dict[str, float] | None:
    """Summary stats of the named histogram, or None if never observed.

    Keys: ``count``, ``min``, ``max``, ``mean``, ``p50``, ``p95``,
    ``p99`` — the shape benchmark reports and the wire layer's
    ``wire.rpc.<op>`` latency tracking need.
    """
    samples = _histograms.get(name)
    if not samples:
        return None
    return {
        "count": len(samples),
        "min": min(samples),
        "max": max(samples),
        "mean": sum(samples) / len(samples),
        "p50": percentile(samples, 0.50),
        "p95": percentile(samples, 0.95),
        "p99": percentile(samples, 0.99),
    }


def histograms(prefix: str = "") -> dict[str, dict[str, float]]:
    """Summaries of every histogram whose name starts with *prefix*."""
    out: dict[str, dict[str, float]] = {}
    for name in sorted(_histograms):
        if name.startswith(prefix):
            stats = histogram(name)
            if stats is not None:
                out[name] = stats
    return out


def reset_histograms(prefix: str = "") -> None:
    """Drop the histograms starting with *prefix* ('' drops everything)."""
    for key in list(_histograms):
        if key.startswith(prefix):
            del _histograms[key]


def hit_rate(kind: str = "layout.cache") -> float | None:
    """Hit rate of a hit/miss counter pair, or None if never exercised."""
    hits = counter(f"{kind}_hit")
    misses = counter(f"{kind}_miss")
    total = hits + misses
    return hits / total if total else None


@dataclass
class InteractionStats:
    """Tallies of user input since the session began (or last reset)."""

    button_presses: int = 0
    keystrokes: int = 0
    gestures: list[str] = field(default_factory=list)

    def press(self, button_name: str) -> None:
        """Record one mouse button press."""
        self.button_presses += 1
        self.gestures.append(f"press:{button_name}")

    def keys(self, n: int) -> None:
        """Record *n* typed characters."""
        self.keystrokes += n
        if n:
            self.gestures.append(f"type:{n}")

    def note(self, what: str) -> None:
        """Record a semantic event (executed command, chord, ...)."""
        self.gestures.append(what)

    def reset(self) -> None:
        """Zero the counters (start of a measured task)."""
        self.button_presses = 0
        self.keystrokes = 0
        self.gestures.clear()

    @property
    def middle_clicks(self) -> int:
        """Presses of the middle (execute) button."""
        return sum(1 for g in self.gestures if g == "press:middle")

    @property
    def touched_keyboard(self) -> bool:
        """True if any text was typed (the zero-keystroke claim)."""
        return self.keystrokes > 0
