"""Counting what the user actually did: clicks, sweeps, keystrokes.

:class:`InteractionStats` is attached to every
:class:`repro.core.help.Help` instance and updated by its event layer;
integration tests assert the paper's numbers against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class InteractionStats:
    """Tallies of user input since the session began (or last reset)."""

    button_presses: int = 0
    keystrokes: int = 0
    gestures: list[str] = field(default_factory=list)

    def press(self, button_name: str) -> None:
        """Record one mouse button press."""
        self.button_presses += 1
        self.gestures.append(f"press:{button_name}")

    def keys(self, n: int) -> None:
        """Record *n* typed characters."""
        self.keystrokes += n
        if n:
            self.gestures.append(f"type:{n}")

    def note(self, what: str) -> None:
        """Record a semantic event (executed command, chord, ...)."""
        self.gestures.append(what)

    def reset(self) -> None:
        """Zero the counters (start of a measured task)."""
        self.button_presses = 0
        self.keystrokes = 0
        self.gestures.clear()

    @property
    def middle_clicks(self) -> int:
        """Presses of the middle (execute) button."""
        return sum(1 for g in self.gestures if g == "press:middle")

    @property
    def touched_keyboard(self) -> bool:
        """True if any text was typed (the zero-keystroke claim)."""
        return self.keystrokes > 0
