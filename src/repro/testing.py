"""Session drivers for tests and examples: the paper's user, as code.

Everything here goes through real mouse events at screen coordinates —
no programmatic shortcuts — so the integration tests measure exactly
what the paper measures: button clicks and (absent) keystrokes.
"""

from repro.core.events import Button
from repro.core.window import Subwindow


class Session:
    """Drives a help session the way a hand on a mouse would."""

    def __init__(self, system):
        self.system = system
        self.help = system.help

    # -- geometry -----------------------------------------------------------

    def cell_of(self, window, pos, sub=Subwindow.BODY):
        """Screen cell (x, y) showing text offset *pos* of *window*."""
        column = self.help.screen.column_of(window)
        assert column is not None, f"window {window.id} not on screen"
        rect = column.win_rect(window)
        if rect is None:
            self._reveal(window)
            rect = column.win_rect(window)
        assert rect is not None
        if sub is Subwindow.TAG:
            return (column.body_x0 + pos, rect.y0)
        frame = column.body_frame(window)
        point = frame.point_of_char(window.body, window.org, pos)
        if point is None:
            # scroll the offset into view, as a user would
            window.org = frame.origin_for_line(
                window.body, window.body.line_of(pos))
            point = frame.point_of_char(window.body, window.org, pos)
        assert point is not None, f"offset {pos} not displayable"
        row, col = point
        return (column.body_x0 + col, rect.y0 + 1 + row)

    def _reveal(self, window):
        """Click the window's tab square (a real left click)."""
        column = self.help.screen.column_of(window)
        order = column.tab_order()
        tab_y = column.rect.y0 + order.index(window)
        self.help.left_click(column.rect.x0, tab_y)

    # -- gestures -------------------------------------------------------------

    def point_at(self, window, needle, offset=0, occurrence=0,
                 sub=Subwindow.BODY):
        """Left-click at *needle* (+offset chars) in *window*."""
        pos = self._find(window, needle, occurrence, sub) + offset
        self.help.left_click(*self.cell_of(window, pos, sub))

    def execute(self, window, needle, sub=Subwindow.BODY):
        """Middle-click the word *needle* where it appears in *window*."""
        pos = self._find(window, needle, 0, sub) + 1
        self.help.middle_click(*self.cell_of(window, pos, sub))

    def execute_sweep(self, window, phrase, sub=Subwindow.BODY):
        """Middle-sweep the exact *phrase* in *window*."""
        start = self._find(window, phrase, 0, sub)
        end = start + len(phrase)
        x0, y0 = self.cell_of(window, start, sub)
        x1, y1 = self.cell_of(window, end, sub)
        self.help.sweep(x0, y0, x1, y1, Button.MIDDLE)

    def select(self, window, start_pos, end_pos, sub=Subwindow.BODY):
        """Left-sweep from *start_pos* to *end_pos*."""
        x0, y0 = self.cell_of(window, start_pos, sub)
        x1, y1 = self.cell_of(window, end_pos, sub)
        self.help.sweep(x0, y0, x1, y1)

    def _find(self, window, needle, occurrence, sub):
        text = window.text(sub).string()
        pos = -1
        for _ in range(occurrence + 1):
            pos = text.index(needle, pos + 1)
        return pos

    # -- conveniences ---------------------------------------------------------

    def window(self, name):
        w = self.help.window_by_name(name)
        assert w is not None, f"no window named {name}"
        return w

    def windows(self, name):
        return [w for w in self.help.windows.values() if w.name() == name]

    @property
    def errors(self):
        w = self.help.window_by_name("Errors")
        return w.body.string() if w is not None else ""


