"""The journal record format: one checksummed line per event.

A journal is a plain text file (it can itself be opened in a help
window), line-oriented so a torn tail never corrupts the records
before it::

    help-journal 1
    1 89ab12cd genesis 160 60 2 10
    2 0f3e77a1 exec 3 body headers
    3 5c01b2e9 +run headers
    ...

Each record line is ``<seq> <crc> <kind> [payload]``:

- ``seq`` — decimal sequence number, strictly increasing across the
  whole journal (compaction keeps numbering, so a recovered session
  can name "the first divergent sequence number" unambiguously);
- ``crc`` — eight hex digits: CRC32 of ``"<seq> <kind> <payload>"``
  (UTF-8), the per-record integrity check that detects torn or
  bit-rotted records;
- ``kind`` — what happened.  Three classes:

  * **input** kinds (:data:`APPLY_KINDS`) are the session's free
    variables — mouse, keyboard, programmatic API calls — and are
    re-applied on replay;
  * **trace** kinds carry a ``+`` prefix and record *derived* work
    (command executions, fs mutations, nested window operations):
    replay skips them, divergence checking compares them;
  * **mark** kinds (:data:`MARK_KINDS`) are journal bookkeeping:
    ``genesis`` (the world the journal starts from), ``snapshot``
    (an inline :mod:`repro.core.dump`), ``wids`` (window id map for
    the snapshot) and ``state`` (selection/snarf/mouse not covered
    by the dump format);

- ``payload`` — space-separated tokens, each encoded by :func:`enc`
  so embedded spaces, tabs and newlines stay on one line.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

FORMAT = "help-journal 1"

# Input kinds: the replayable surface of repro.core.help.Help.
APPLY_KINDS = frozenset({
    "mouse-press", "mouse-drag", "mouse-release", "mouse-move",
    "type", "resize",
    "exec", "builtin", "select",
    "open", "newwin", "close", "scroll", "replace-body",
})

# Journal bookkeeping: consumed by recovery, never replayed as input.
# "inputs" rides with the snapshot group and carries the count of
# input records the snapshot subsumes, so recovery can report the
# session's total applied-input count (the replication resume index)
# even after compaction discarded the records themselves.
MARK_KINDS = frozenset({"genesis", "snapshot", "wids", "state", "inputs"})


class JournalError(Exception):
    """A malformed journal."""


class BadRecord(JournalError):
    """A structurally unparseable record line."""


class BadChecksum(JournalError):
    """A record whose CRC does not match its content."""


# -- token codec --------------------------------------------------------------

_EMPTY = "\\e"


def enc(s: str) -> str:
    """Encode one payload token: whitespace-free, '' representable."""
    if s == "":
        return _EMPTY
    return (s.replace("\\", "\\\\").replace("\n", "\\n")
            .replace("\t", "\\t").replace("\r", "\\r").replace(" ", "\\s"))


def dec(s: str) -> str:
    """Decode a token produced by :func:`enc`."""
    if s == _EMPTY:
        return ""
    out: list[str] = []
    i = 0
    while i < len(s):
        ch = s[i]
        if ch == "\\" and i + 1 < len(s):
            nxt = s[i + 1]
            out.append({"n": "\n", "t": "\t", "r": "\r",
                        "s": " ", "\\": "\\"}.get(nxt, nxt))
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


# -- records ------------------------------------------------------------------

def checksum(seq: int, kind: str, payload: str) -> str:
    """Eight hex digits of CRC32 over the record's content."""
    return f"{zlib.crc32(f'{seq} {kind} {payload}'.encode()) & 0xffffffff:08x}"


@dataclass(frozen=True)
class Record:
    """One journal record: sequence number, kind, encoded payload."""

    seq: int
    kind: str
    payload: str = ""

    @property
    def derived(self) -> bool:
        """True for trace records (never re-applied on replay)."""
        return self.kind.startswith("+")

    @property
    def applies(self) -> bool:
        """True for input records replay must re-apply."""
        return self.kind in APPLY_KINDS

    def fields(self) -> list[str]:
        """The decoded payload tokens."""
        if not self.payload:
            return []
        return [dec(tok) for tok in self.payload.split(" ")]

    def line(self) -> str:
        """The serialized record line (no trailing newline)."""
        crc = checksum(self.seq, self.kind, self.payload)
        if self.payload:
            return f"{self.seq} {crc} {self.kind} {self.payload}"
        return f"{self.seq} {crc} {self.kind}"


def make_record(seq: int, kind: str, fields: tuple | list) -> Record:
    """Build a record, encoding each field as one payload token."""
    payload = " ".join(enc(str(f)) for f in fields)
    return Record(seq, kind, payload)


def parse_line(line: str) -> Record:
    """Parse one record line, verifying its checksum.

    Raises :class:`BadRecord` for structural damage and
    :class:`BadChecksum` when the line parses but the CRC disagrees —
    the difference matters to recovery, which treats both as the torn
    tail but reports them distinctly.
    """
    parts = line.split(" ", 3)
    if len(parts) < 3:
        raise BadRecord(f"short record line {line!r}")
    seq_s, crc, kind = parts[0], parts[1], parts[2]
    payload = parts[3] if len(parts) > 3 else ""
    if not seq_s.isdigit():
        raise BadRecord(f"bad sequence number in {line!r}")
    seq = int(seq_s)
    if checksum(seq, kind, payload) != crc:
        raise BadChecksum(f"checksum mismatch at seq {seq}")
    return Record(seq, kind, payload)


# -- scanning -----------------------------------------------------------------

@dataclass
class ScanResult:
    """The intact prefix of a journal plus what was lost after it."""

    records: list[Record] = field(default_factory=list)
    dropped: int = 0          # lines after the first damaged one
    torn: bool = False        # True when any line failed to verify
    problems: list[str] = field(default_factory=list)


def scan_text(text: str) -> ScanResult:
    """Parse journal *text*, keeping the longest intact prefix.

    The first structurally bad line, checksum failure, or sequence
    regression ends the intact prefix: everything from there on is the
    torn tail and is counted, not parsed (a crash mid-append can leave
    any suffix).  Each verified record bumps ``journal.replay.records``
    and each checksum failure bumps ``journal.checksum.failed``, so a
    clean replay's ledger shows appended == replayed and zero failures.
    """
    from repro.metrics.counter import incr

    result = ScanResult()
    lines = text.split("\n")
    if not lines or lines[0] != FORMAT:
        result.torn = True
        result.problems.append("missing or wrong journal header")
        result.dropped = len([ln for ln in lines if ln])
        return result
    last_seq = 0
    for index, line in enumerate(lines[1:], start=2):
        if line == "":
            continue  # blank line (the trailing newline's artifact)
        try:
            record = parse_line(line)
        except BadChecksum as exc:
            incr("journal.checksum.failed")
            result.problems.append(f"line {index}: {exc}")
            result.torn = True
        except BadRecord as exc:
            result.problems.append(f"line {index}: {exc}")
            result.torn = True
        else:
            if record.seq <= last_seq:
                result.problems.append(
                    f"line {index}: sequence {record.seq} after {last_seq}")
                result.torn = True
            else:
                last_seq = record.seq
                result.records.append(record)
                incr("journal.replay.records")
                continue
        # fell through: this line and everything after it is the tail
        result.dropped = len([ln for ln in lines[index - 1:] if ln])
        break
    return result
