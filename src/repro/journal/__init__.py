"""The deterministic session journal (write-ahead event log).

The paper's ``help`` is driven entirely by one serialized stream of
mouse/keyboard events plus file-server requests, which makes a session
a pure function of its input log.  This package records that log:

- :mod:`repro.journal.record` — the line-oriented record format:
  versioned header, monotonic sequence numbers, per-record CRC32
  checksums, and the token codec that keeps multi-line text on one
  journal line;
- :mod:`repro.journal.log` — :class:`Journal`, the append-only
  write-ahead log with explicit flush (fsync-analogue) points and the
  ``journal.append.*`` / ``journal.fsync.*`` counter family;
- :mod:`repro.journal.recorder` — :class:`SessionRecorder`, which
  tees every input event, command execution, and fs mutation of a
  :class:`~repro.core.help.Help` session into a journal *before*
  applying it, and :func:`replay`, which drives a fresh session from
  the recorded records;
- :mod:`repro.journal.recovery` — crash recovery: scan a truncated or
  torn journal, restore the last snapshot (:mod:`repro.core.dump`),
  and replay the intact suffix.

Quickstart::

    from repro import build_system
    from repro.journal import Journal, attach, replay, scan_text

    system = build_system()
    journal = Journal.create(system.ns, '/usr/rob/help.journal')
    attach(system.help, journal, ns=system.ns)
    ...drive the session...

    text = system.ns.read('/usr/rob/help.journal')
    fresh = build_system()
    attach(fresh.help, Journal())          # shadow journal: divergence trace
    replay(fresh.help, scan_text(text).records)
"""

from repro.journal.log import Journal, NamespaceSink
from repro.journal.record import (
    FORMAT,
    APPLY_KINDS,
    MARK_KINDS,
    BadChecksum,
    BadRecord,
    JournalError,
    Record,
    ScanResult,
    dec,
    enc,
    parse_line,
    scan_text,
)
from repro.journal.recorder import ReplayError, SessionRecorder, attach, replay
from repro.journal.recovery import RecoveryReport, recover

__all__ = [
    "FORMAT", "APPLY_KINDS", "MARK_KINDS",
    "Journal", "NamespaceSink", "Record", "ScanResult",
    "JournalError", "BadRecord", "BadChecksum", "ReplayError",
    "SessionRecorder", "RecoveryReport",
    "attach", "replay", "recover", "scan_text", "parse_line",
    "enc", "dec",
]
