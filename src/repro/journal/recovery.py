"""Crash recovery: snapshot plus intact journal suffix.

A crashed session leaves a journal whose tail may be torn mid-record.
:func:`recover` rebuilds the session deterministically:

1. scan the journal text, keeping the longest intact prefix
   (:func:`repro.journal.record.scan_text` — a damaged line ends the
   prefix; the write-ahead discipline guarantees a record that is torn
   was never applied, so dropping the tail loses nothing that
   happened);
2. find the last complete snapshot group (``snapshot`` + ``wids`` +
   ``state`` marks written by compaction) and restore it — the dump
   rebuilds columns, windows, and dirty bodies; the ``wids`` record
   renumbers the rebuilt windows back to their recorded ids (the dump
   format does not carry ids, but journal records name windows by id);
   the ``state`` record restores mouse, snarf buffer, and the current
   selection;
3. replay every input record after the group through the ordinary
   :func:`repro.journal.recorder.replay` path.

With no snapshot group the whole intact prefix replays from the
session's genesis.  Either way the recovered screen is byte-identical
to the last screen the crashed session had fully applied.

Crash recovery is one caller; the same path rehydrates sessions that
left RAM on purpose — a shard migration's :meth:`~repro.serve.
SessionHost.adopt` and a hibernation wake both feed :func:`recover`
the text :meth:`~repro.journal.recorder.SessionRecorder.
compact_to_text` produced (header + snapshot group, empty suffix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.events import Point
from repro.core.window import Subwindow
from repro.journal.record import Record, ScanResult, scan_text
from repro.journal.recorder import ReplayError, replay
from repro.metrics.counter import incr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.help import Help


@dataclass
class RecoveryReport:
    """What :func:`recover` found and did."""

    scan: ScanResult
    snapshot_seq: int | None = None   # seq of the snapshot restored, if any
    applied: int = 0                  # input records replayed after it
    inputs: int = 0                   # total input records the journal
    #                                   holds: the "inputs" mark (records
    #                                   the snapshot subsumed) plus the
    #                                   replayed suffix — a client's
    #                                   resume index after failover
    problems: list[str] = field(default_factory=list)

    @property
    def torn(self) -> bool:
        """True when the journal had a damaged tail."""
        return self.scan.torn

    @property
    def dropped(self) -> int:
        """Lines lost to the torn tail."""
        return self.scan.dropped


def _snapshot_group(records: list[Record]) -> tuple[int, Record, Record,
                                                    Record] | None:
    """The last complete snapshot+wids+state group, or None.

    Returns ``(index_after_group, snapshot, wids, state)``.  A group
    interrupted by the crash (snapshot present, companions missing) is
    incomplete and skipped — the scan's prefix rule already dropped any
    torn member, so completeness here is just adjacency of kinds.
    """
    for i in range(len(records) - 3, -1, -1):
        if (records[i].kind == "snapshot"
                and i + 2 < len(records)
                and records[i + 1].kind == "wids"
                and records[i + 2].kind == "state"):
            return i + 3, records[i], records[i + 1], records[i + 2]
    return None


def _restore_snapshot(help_app: "Help", snapshot: Record, wids: Record,
                      state: Record) -> None:
    from repro.core.dump import load
    load(help_app, snapshot.fields()[0])
    _renumber(help_app, wids)
    _restore_state(help_app, state)


def _renumber(help_app: "Help", wids: Record) -> None:
    """Give the reloaded windows their recorded ids back.

    ``wids`` lists the id counter then the window ids in dump
    iteration order (columns left to right, each column's tab order) —
    the same order :func:`repro.core.dump.load` recreates them in.
    """
    fields = wids.fields()
    next_id = int(fields[0])
    ids = [int(tok) for tok in fields[1:]]
    windows = [w for col in help_app.screen.columns for w in col.tab_order()]
    if len(ids) != len(windows):
        raise ReplayError(
            f"wids record names {len(ids)} windows, snapshot restored "
            f"{len(windows)}")
    help_app.windows.clear()
    for window, wid in zip(windows, ids):
        window.id = wid
        help_app.windows[wid] = window
    help_app._next_id = next_id


def _restore_state(help_app: "Help", state: Record) -> None:
    fields = state.fields()
    help_app.mouse = Point(int(fields[0]), int(fields[1]))
    help_app.snarf = fields[2]
    if fields[3] == "-":
        help_app.current = None
        return
    window = help_app.windows.get(int(fields[3]))
    if window is None:
        raise ReplayError(f"state names unknown window {fields[3]}")
    sub = Subwindow(fields[4])
    window.selection(sub).set(int(fields[5]), int(fields[6]))
    help_app.current = (window, sub)


def recover(help_app: "Help", text: str) -> RecoveryReport:
    """Rebuild a session into *help_app* from journal *text*.

    *help_app* should be a freshly built session (booted the same way
    the recorded one was — the ``genesis`` record checks this when no
    snapshot shortcuts past it).  Returns the :class:`RecoveryReport`;
    raises :class:`~repro.journal.recorder.ReplayError` when a record
    in the intact prefix cannot be applied.
    """
    scan = scan_text(text)
    report = RecoveryReport(scan=scan, problems=list(scan.problems))
    incr("journal.recover.count")
    if scan.torn:
        incr("journal.recover.torn")
    records = scan.records
    inputs_base = 0
    group = _snapshot_group(records)
    if group is not None:
        start, snapshot, wids, state = group
        _restore_snapshot(help_app, snapshot, wids, state)
        report.snapshot_seq = snapshot.seq
        # the optional "inputs" mark trails the group (older journals
        # predate it): the count of input records the snapshot subsumed
        if start < len(records) and records[start].kind == "inputs":
            inputs_base = int(records[start].fields()[0])
            start += 1
        records = records[start:]
    report.applied = replay(help_app, records)
    report.inputs = inputs_base + report.applied
    # the suffix length is part of the recovery ledger: a hibernation
    # wake (compacted text, empty suffix) contributes zero here while
    # a crash recovery contributes every replayed input, so the two
    # uses of this path stay distinguishable in the counters
    incr("journal.recover.replayed", report.applied)
    return report
