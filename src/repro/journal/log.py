"""The write-ahead log: append-only records with explicit flush points.

A :class:`Journal` owns the monotonic sequence counter and a pending
buffer; :meth:`Journal.flush` is the fsync analogue that makes the
buffered records durable in one sink write.  The recorder flushes a
new input record *before* applying it (the write-ahead guarantee: a
crash mid-application never loses the record of what was being
applied) and flushes accumulated trace records after.

A journal without a sink is a **shadow journal**: records accumulate
in memory only.  Replay uses one to regenerate the trace stream for
divergence comparison without perturbing the durable-append ledger —
``journal.append.records`` counts durable appends alone, so a clean
record/replay round trip balances appended == replayed.

Counters: ``journal.append.records`` and ``journal.append.<class>``
(input/trace/mark) per durable append, ``journal.shadow.records`` per
shadow append, ``journal.fsync.count`` / ``journal.fsync.records`` /
``journal.fsync.bytes`` per flush, ``journal.compact.count`` per
snapshot+truncate compaction and ``journal.compact.dropped`` for the
durable records each compaction made unreachable — so the full ledger
balances as ``append.records == replay.records + compact.dropped``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.journal.record import FORMAT, MARK_KINDS, Record, make_record
from repro.metrics.counter import MetricsRegistry, current_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fs.namespace import Namespace


class NamespaceSink:
    """Durability through the namespace: the journal is just a file."""

    def __init__(self, ns: "Namespace", path: str) -> None:
        self.ns = ns
        self.path = path

    def create(self) -> None:
        """Write a fresh journal file holding only the header."""
        self.ns.write(self.path, FORMAT + "\n")

    def append(self, text: str) -> None:
        self.ns.append(self.path, text)

    def truncate(self, text: str) -> None:
        """Replace the whole file (compaction)."""
        self.ns.write(self.path, text)


class Journal:
    """An append-only, checksummed, sequence-numbered event log."""

    def __init__(self, sink: NamespaceSink | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.sink = sink
        self.metrics = metrics            # None: the active registry
        self.seq = 0
        self.records: list[Record] = []   # everything appended, in order
        self.pending: list[Record] = []   # appended but not yet flushed
        self._durable = 0                 # records currently in the sink
        # on_durable(event, text, seq): fired after every sink write —
        # event "append" with the flushed lines, or "truncate" with the
        # full replacement text after compaction; seq is the last
        # record covered.  The replica feed hangs here: a failure in
        # the hook propagates, so in sync replication a write is only
        # acknowledged once the standby holds it too.
        self.on_durable = None
        # per-class counts of the pending batch: appends buffer their
        # ledger bookkeeping too, folded in at the next flush point so
        # a burst of appends costs one counter update per class
        self._pending_counts: dict[str, int] = {}

    @classmethod
    def create(cls, ns: "Namespace", path: str,
               metrics: MetricsRegistry | None = None) -> "Journal":
        """A durable journal at *path*, header written immediately."""
        sink = NamespaceSink(ns, path)
        sink.create()
        return cls(sink, metrics=metrics)

    def _ledger(self) -> MetricsRegistry:
        return self.metrics if self.metrics is not None else current_registry()

    # -- appending --------------------------------------------------------

    def append(self, kind: str, fields: tuple | list) -> Record:
        """Append one record (buffered, bookkeeping and all, until the
        next flush point — the record itself is final immediately)."""
        self.seq += 1
        record = make_record(self.seq, kind, fields)
        self.records.append(record)
        if self.sink is None:
            self._ledger().incr("journal.shadow.records")
            return record
        self.pending.append(record)
        counts = self._pending_counts
        klass = _klass(kind)
        counts[klass] = counts.get(klass, 0) + 1
        return record

    def _fold_append_counts(self, ledger: MetricsRegistry) -> None:
        """Land the buffered append bookkeeping on *ledger*.

        Called at every flush point (flush and compact), so
        ``journal.append.*`` reaches the same totals as per-append
        increments would — including records a compaction discards
        before they were ever flushed.
        """
        counts = self._pending_counts
        if not counts:
            return
        ledger.incr("journal.append.records", sum(counts.values()))
        for klass, n in counts.items():
            ledger.incr(f"journal.append.{klass}", n)
        counts.clear()

    # -- durability -------------------------------------------------------

    def flush(self) -> int:
        """Write the pending records to the sink in one append.

        Returns the number of records made durable.  The explicit
        flush point is the journal's fsync analogue; callers place it
        before applying an input (write-ahead) and after the derived
        traces of that input have accumulated.
        """
        if self.sink is None or not self.pending:
            return 0
        text = "".join(record.line() + "\n" for record in self.pending)
        count = len(self.pending)
        last_seq = self.pending[-1].seq
        ledger = self._ledger()
        self._fold_append_counts(ledger)
        start = time.perf_counter()
        self.sink.append(text)
        ledger.observe("journal.flush_us",
                       (time.perf_counter() - start) * 1e6)
        self.pending.clear()
        self._durable += count
        ledger.incr("journal.fsync.count")
        ledger.incr("journal.fsync.records", count)
        ledger.incr("journal.fsync.bytes", len(text))
        if self.on_durable is not None:
            self.on_durable("append", text, last_seq)
        return count

    def compact(self, keep: list[Record]) -> None:
        """Truncate the sink down to the header plus *keep*.

        *keep* is the snapshot record group that re-founds the journal;
        sequence numbering continues monotonically across compactions,
        so later records still name a unique position in the session.
        Records appended before the snapshot — durable or still
        pending — become unreachable and are counted as
        ``journal.compact.dropped``: that is the point, the snapshot
        subsumes them.
        """
        first = keep[0].seq if keep else self.seq + 1
        if self.sink is not None:
            # pending records are about to be discarded or rewritten:
            # their buffered append bookkeeping must land first
            self._fold_append_counts(self._ledger())
        durable_keep = sum(1 for r in keep if r not in self.pending)
        stale = sum(1 for r in self.pending
                    if r not in keep and r.seq < first)
        self.pending = [r for r in self.pending
                        if r not in keep and r.seq > first]
        if self.sink is None:
            return
        text = FORMAT + "\n" + "".join(r.line() + "\n" for r in keep)
        self.sink.truncate(text)
        ledger = self._ledger()
        ledger.incr("journal.compact.count")
        ledger.incr("journal.compact.dropped",
                    max(self._durable - durable_keep, 0) + stale)
        self._durable = len(keep)
        if self.on_durable is not None:
            self.on_durable("truncate", text, keep[-1].seq if keep else 0)


def _klass(kind: str) -> str:
    if kind.startswith("+"):
        return "trace"
    if kind in MARK_KINDS:
        return "mark"
    return "input"
