"""Teeing a live session into a journal, and driving one back out.

:class:`SessionRecorder` sits between :class:`~repro.core.help.Help`
and a :class:`~repro.journal.log.Journal`.  Help's mutating entry
points call :meth:`recording` around their work; the recorder appends
the record and flushes it **before** the event is applied (the
write-ahead discipline), so a crash mid-application never loses the
record of what was in flight.

Depth matters: a top-level call (a real input — mouse, keyboard, a
programmatic ``execute_text``) is an **input** record; the same entry
point reached *while applying* another input (a tool script opening
``/mnt/help/new/ctl`` creates a window nested under the ``exec`` that
ran the script) is derived work and is appended as a ``+``-prefixed
**trace** record instead.  Replay re-applies only the input records;
the derived records regenerate on their own, and comparing the
regenerated trace against the recorded one pinpoints the first
divergent sequence number.

:func:`replay` drives a fresh Help through the input records of a
scanned journal, timing each application into the ``replay.apply_us``
histograms so a replay doubles as a profile.
"""

from __future__ import annotations

import time
import zlib
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable

from repro.core.events import button_from
from repro.core.window import Subwindow
from repro.journal.log import Journal
from repro.journal.record import MARK_KINDS, Record
from repro.metrics.counter import incr, observe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.help import Help
    from repro.fs.namespace import Namespace


class ReplayError(Exception):
    """A record that cannot be applied to the target session."""


def _opt(value) -> str:
    """Encode an optional field: ``-`` for None, ``=<value>`` else."""
    return "-" if value is None else f"={value}"


def _unopt(token: str) -> str | None:
    if token == "-":
        return None
    if token.startswith("="):
        return token[1:]
    raise ReplayError(f"bad optional field {token!r}")


class SessionRecorder:
    """Tees one Help session's events into a write-ahead journal."""

    def __init__(self, help_app: "Help", journal: Journal,
                 snapshot_every: int | None = None,
                 trace_screens: bool = False) -> None:
        self.help = help_app
        self.journal = journal
        self.snapshot_every = snapshot_every
        self.trace_screens = trace_screens
        self._depth = 0
        self._busy = False          # the journal's own sink writes
        self._since_snapshot = 0
        # input records ever journalled for this session — survives
        # compaction via the "inputs" mark in the snapshot group, so a
        # client resuming against a promoted replica knows exactly how
        # many of its writes the journal holds (the resume index).
        # Recovery seeds it (RecoveryReport.inputs) on adopt/wake.
        self.inputs_recorded = 0

    # -- the tee ----------------------------------------------------------

    @contextmanager
    def recording(self, kind: str, fields: tuple):
        """Record one Help entry point around its application.

        Top level: append + flush the input record first (write-ahead),
        apply, then flush the traces the application produced — and
        compact onto a fresh snapshot when the schedule says so.
        Nested: append a derived trace record and stand back.
        """
        if self._depth == 0:
            self.journal.append(kind, fields)
            self.inputs_recorded += 1
            self._flush()
        else:
            self.journal.append("+" + kind, fields)
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            if self._depth == 0:
                if self.trace_screens:
                    self._trace_screen()
                self._since_snapshot += 1
                if (self.snapshot_every is not None
                        and self._since_snapshot >= self.snapshot_every):
                    self.compact()
                else:
                    self._flush()

    def trace(self, kind: str, fields: tuple) -> None:
        """Append a derived trace record (``+<kind>``), unflushed."""
        if self._busy:
            return
        self.journal.append("+" + kind, fields)

    def _flush(self) -> None:
        self._busy = True
        try:
            self.journal.flush()
        finally:
            self._busy = False

    def _trace_screen(self) -> None:
        from repro.core.render import render_screen
        grid = render_screen(self.help, footer=False, full=True)
        self.trace("screen", (f"{zlib.crc32(grid.encode()) & 0xffffffff:08x}",))

    # -- hooks from the substrate layers ----------------------------------

    def shell_trace(self, argv: list[str], cwd: str) -> None:
        """One simple command dispatched by the shell (rc) layer."""
        self.trace("cmd", (cwd, *argv))

    def fs_trace(self, op: str, path: str) -> None:
        """One namespace mutation (write-open, mkdir, remove)."""
        if self._busy:
            return
        sink = self.journal.sink
        if sink is not None and getattr(sink, "path", None) == path:
            return  # the journal's own file
        self.trace("fs", (op, path))

    # -- snapshots ---------------------------------------------------------

    def compact(self) -> None:
        """Write a snapshot group and truncate the journal onto it.

        The group is ``snapshot`` (the inline :mod:`repro.core.dump`),
        ``wids`` (window ids in dump order plus the id counter, which
        the dump format does not carry), ``state`` (current selection,
        snarf buffer, mouse position) and ``inputs`` (the count of
        input records the snapshot subsumes — the replication resume
        index).  Everything before the group becomes unreachable;
        recovery starts from the snapshot and replays only what
        follows.
        """
        from repro.core.dump import dump
        self._flush()
        h = self.help
        snap = self.journal.append("snapshot", (dump(h),))
        ids = [str(w.id) for col in h.screen.columns for w in col.tab_order()]
        wids = self.journal.append("wids", (str(h._next_id), *ids))
        state = self.journal.append("state", self._state_fields())
        inputs = self.journal.append("inputs", (str(self.inputs_recorded),))
        self._busy = True
        try:
            self.journal.compact([snap, wids, state, inputs])
        finally:
            self._busy = False
        self._since_snapshot = 0
        self.journal._ledger().incr("journal.snapshot.count")

    def compact_to_text(self) -> str:
        """Compact the live session and return its serialized journal.

        The returned text — header, snapshot group, nothing else — is
        the whole session in one string: feed it to
        :func:`repro.journal.recovery.recover` on a freshly built world
        and the screen comes back byte-identical.  This is the
        serialization both shard migration and session hibernation
        spool; it requires a durable journal (a shadow journal has no
        sink to read back).
        """
        sink = self.journal.sink
        if sink is None:
            raise ValueError("cannot serialize a shadow journal")
        self.compact()
        return sink.ns.read(sink.path)

    def _state_fields(self) -> tuple:
        h = self.help
        if h.current is None:
            cur = ("-", "-", "-", "-")
        else:
            window, sub = h.current
            sel = window.selection(sub)
            cur = (str(window.id), sub.value, str(sel.q0), str(sel.q1))
        return (str(h.mouse.x), str(h.mouse.y), h.snarf, *cur)

    # -- bookkeeping --------------------------------------------------------

    def genesis(self) -> None:
        """Record the world this journal is relative to."""
        h = self.help
        self.journal.append("genesis", (h.screen.rect.width,
                                        h.screen.rect.height,
                                        len(h.screen.columns),
                                        h._next_id))
        self._flush()


def attach(help_app: "Help", journal: Journal,
           ns: "Namespace | None" = None,
           snapshot_every: int | None = None,
           trace_screens: bool = False,
           context=None) -> SessionRecorder:
    """Install a recorder on *help_app* (and optionally its namespace).

    Records everything from this moment on; the ``genesis`` record
    pins the screen geometry and window-id counter so replay can check
    it is rebuilding the same world.  With *ns*, namespace mutations
    (write-opens, mkdir, remove) are teed as ``+fs`` traces too.  With
    a :class:`~repro.session.SessionContext`, the journal and recorder
    are registered on it (and the journal adopts its metrics ledger).
    """
    recorder = SessionRecorder(help_app, journal,
                               snapshot_every=snapshot_every,
                               trace_screens=trace_screens)
    help_app.journal = recorder
    if context is not None:
        if journal.metrics is None:
            journal.metrics = context.metrics
        context.journal = journal
        context.recorder = recorder
        if ns is None:
            ns = context.ns
    if ns is not None:
        ns.on_mutation = recorder.fs_trace
    recorder.genesis()
    return recorder


# -- replay -------------------------------------------------------------------

def replay(help_app: "Help", records: Iterable[Record],
           strict: bool = True) -> int:
    """Apply the input records of a scanned journal to *help_app*.

    Trace (``+``) records are skipped — the session regenerates its
    own derived work.  Mark records are consumed for verification
    (``genesis``) or ignored (snapshot groups are recovery's job; see
    :mod:`repro.journal.recovery`).  Every applied record bumps
    ``journal.replay.applied`` and lands a latency sample in the
    ``replay.apply_us`` histograms.  Returns the number applied.
    """
    applied = 0
    for record in records:
        if record.derived or record.kind in MARK_KINDS:
            if record.kind == "genesis":
                _check_genesis(help_app, record)
            continue
        start = time.perf_counter()
        try:
            apply_record(help_app, record)
        except ReplayError:
            raise
        except Exception as exc:
            if strict:
                raise ReplayError(
                    f"seq {record.seq} ({record.kind}): {exc!r}") from exc
        elapsed_us = (time.perf_counter() - start) * 1e6
        observe("replay.apply_us", elapsed_us)
        observe(f"replay.apply_us.{record.kind}", elapsed_us)
        incr("journal.replay.applied")
        applied += 1
    return applied


def _check_genesis(help_app: "Help", record: Record) -> None:
    fields = record.fields()
    want = (str(help_app.screen.rect.width), str(help_app.screen.rect.height),
            str(len(help_app.screen.columns)), str(help_app._next_id))
    if tuple(fields[:4]) != want:
        raise ReplayError(
            f"seq {record.seq}: genesis {fields} does not match the "
            f"target session {list(want)}")


def _window(help_app: "Help", token: str):
    wid = int(token)
    window = help_app.windows.get(wid)
    if window is None:
        raise ReplayError(f"no window {wid} in the target session")
    return window


def apply_record(help_app: "Help", record: Record) -> None:
    """Re-apply one input record through the public Help API."""
    h = help_app
    kind = record.kind
    f = record.fields()
    if kind == "mouse-press":
        h.mouse_press(int(f[0]), int(f[1]), button_from(f[2]))
    elif kind == "mouse-drag":
        h.mouse_drag(int(f[0]), int(f[1]))
    elif kind == "mouse-release":
        h.mouse_release(int(f[0]), int(f[1]), button_from(f[2]))
    elif kind == "mouse-move":
        h.mouse_move(int(f[0]), int(f[1]))
    elif kind == "type":
        h.type_text(f[0])
    elif kind == "resize":
        h.resize(int(f[0]), int(f[1]))
    elif kind == "exec":
        h.execute_text(_window(h, f[0]), f[2], Subwindow(f[1]))
    elif kind == "builtin":
        h.exec_builtin(f[0], _window(h, f[1]), Subwindow(f[2]), f[3])
    elif kind == "select":
        h.select(_window(h, f[0]), int(f[2]), int(f[3]), Subwindow(f[1]))
    elif kind == "open":
        line = _unopt(f[1])
        near = _unopt(f[2])
        h.open_path(f[0], None if line is None else int(line),
                    None if near is None else _window(h, near))
    elif kind == "newwin":
        col = _unopt(f[0])
        near = _unopt(f[1])
        suffix = _unopt(f[2])
        h.new_window(f[3], f[4],
                     near=None if near is None else _window(h, near),
                     column=(None if col is None
                             else h.screen.columns[int(col)]),
                     tag_suffix=suffix)
    elif kind == "close":
        h.close_window(_window(h, f[0]))
    elif kind == "scroll":
        h.scroll(_window(h, f[0]), int(f[1]))
    elif kind == "replace-body":
        h.replace_body(_window(h, f[0]), f[2], dirty=bool(int(f[1])))
    else:
        raise ReplayError(f"seq {record.seq}: unknown input kind {kind!r}")


def divergence(recorded: list[Record], regenerated: list[Record]
               ) -> tuple[int, str] | None:
    """The first divergent sequence number between two record streams.

    Mark records are journal bookkeeping (compaction timing differs
    between a live session and its replay) and are excluded; input and
    trace records must match pairwise in kind and payload.  Returns
    ``(recorded_seq, description)`` or None when the streams agree.
    """
    a = [r for r in recorded if r.kind not in MARK_KINDS]
    b = [r for r in regenerated if r.kind not in MARK_KINDS]
    for got, want in zip(b, a):
        if (got.kind, got.payload) != (want.kind, want.payload):
            return (want.seq,
                    f"recorded {want.kind} {want.payload!r} but replay "
                    f"produced {got.kind} {got.payload!r}")
    if len(a) != len(b):
        seq = a[min(len(b), len(a) - 1)].seq if a else 0
        return (seq, f"recorded {len(a)} records, replay produced {len(b)}")
    return None
