"""repro — a reproduction of Rob Pike's *A Minimalist Global User
Interface* (USENIX Summer 1991): the ``help`` system.

Quickstart::

    from repro import build_system, render_screen

    system = build_system()      # VFS + tools + mailbox + booted help
    help = system.help           # the user interface
    ns = system.ns               # the Plan 9-style namespace

    window = help.open_path('/usr/rob/src/help/help.c', line=35)
    print(render_screen(help))

Package map: :mod:`repro.core` (the help program itself),
:mod:`repro.fs` (namespace substrate), :mod:`repro.helpfs`
(``/mnt/help``), :mod:`repro.shell` (rc), :mod:`repro.proc`
(processes/adb), :mod:`repro.cbrowse` (C browser), :mod:`repro.mail`,
:mod:`repro.mk`, :mod:`repro.tools` (world assembly) and
:mod:`repro.metrics` (interaction-cost models).
"""

from repro.core.help import Help
from repro.core.render import render_screen, render_window
from repro.fs import VFS, Namespace
from repro.tools.install import System, build_system

__version__ = "1.0.0"

__all__ = ["Help", "System", "build_system", "render_screen",
           "render_window", "VFS", "Namespace", "__version__"]
