"""The rc interpreter: word evaluation, command dispatch, pipelines.

Processes are function calls and pipes are strings: each pipeline
stage runs to completion and hands its standard output to the next.
That loses concurrency but preserves everything the paper's scripts
observe — they are all linear filters.

Variables are rc lists.  Concatenation follows rc: pairwise for
equal-length lists, distributing when one side is a single word, and
an error when a referenced list is empty ("null list in
concatenation" catches tool bugs early, as in the original).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Callable

from repro.fs.errors import diagnostic as fs_diagnostic
from repro.fs.namespace import Namespace
from repro.fs.vfs import FsError, join
from repro.shell import ast
from repro.shell.lexer import Backquote, Fragment, Lit, VarRef
from repro.shell.parser import ParseError, parse


class ShellError(Exception):
    """A runtime shell error (bad concatenation, runaway loop, ...)."""


class _Exit(Exception):
    """Raised by the ``exit`` builtin to unwind the script."""

    def __init__(self, status: int) -> None:
        super().__init__(status)
        self.status = status


@dataclass
class IO:
    """Standard streams for one command: in as a string, out/err grow."""

    stdin: str = ""
    stdout: list[str] = field(default_factory=list)
    stderr: list[str] = field(default_factory=list)

    def out(self) -> str:
        return "".join(self.stdout)

    def err(self) -> str:
        return "".join(self.stderr)


@dataclass
class RunResult:
    """What :meth:`Interp.run` returns."""

    status: int
    stdout: str
    stderr: str


# A userland command: full access to the interpreter (namespace, cwd,
# variables) plus argv and streams; returns an exit status.
Command = Callable[["Interp", list[str], IO], int]

# Hard cap on while-loop iterations: the scripts here are tiny, so a
# loop that spins this long is a bug, not a workload.
MAX_LOOP = 100_000


class Interp:
    """One shell execution context."""

    def __init__(self, ns: Namespace, cwd: str = "/",
                 commands: dict[str, Command] | None = None,
                 context=None) -> None:
        self.ns = ns
        self.cwd = cwd
        # a repro.session.SessionContext: which session's world this
        # shell mutates (inherited by subshells)
        self.context = context
        self.vars: dict[str, list[str]] = {"status": ["0"], "path": ["/bin"]}
        self.funcs: dict[str, ast.Block] = {}
        if commands is None:
            from repro.shell.commands import DEFAULT_COMMANDS
            commands = dict(DEFAULT_COMMANDS)
        self.commands = commands
        # journal hook: called with (argv, cwd) for every simple command
        self.trace: Callable[[list[str], str], None] | None = None

    # -- entry points ---------------------------------------------------------

    def run(self, src: str, stdin: str = "") -> RunResult:
        """Parse and execute *src*; collect the streams."""
        io = IO(stdin=stdin)
        try:
            program = parse(src)
        except ParseError as exc:
            return RunResult(1, "", f"rc: {exc}\n")
        try:
            status = self.exec(program, io)
        except _Exit as exc:
            status = exc.status
        except FsError as exc:
            # Structured one-liner: op, canonical path, reason, kind.
            io.stderr.append(f"rc: {fs_diagnostic(exc)}\n")
            status = 1
        except ShellError as exc:
            io.stderr.append(f"rc: {exc}\n")
            status = 1
        return RunResult(status, io.out(), io.err())

    def run_file(self, path: str, args: list[str] | None = None,
                 stdin: str = "") -> RunResult:
        """Run the rc script stored at *path* with ``$*`` set to *args*."""
        try:
            src = self.ns.read(path)
        except FsError as exc:
            return RunResult(1, "", f"rc: {exc}\n")
        child = self.subshell()
        child.set_args(path, args or [])
        return child.run(src, stdin)

    def subshell(self) -> "Interp":
        """A child interpreter: copied variables, shared world."""
        child = Interp(self.ns, self.cwd, self.commands,
                       context=self.context)
        child.vars = {name: list(value) for name, value in self.vars.items()}
        child.funcs = dict(self.funcs)
        child.trace = self.trace
        return child

    def set_args(self, name: str, args: list[str]) -> None:
        """Install ``$0``, ``$*`` and ``$1``-``$9``."""
        self.vars["0"] = [name]
        self.vars["*"] = list(args)
        for i in range(1, 10):
            self.vars[str(i)] = [args[i - 1]] if i <= len(args) else []

    # -- variables ------------------------------------------------------------

    def get(self, name: str) -> list[str]:
        return self.vars.get(name, [])

    def set(self, name: str, value: list[str]) -> None:
        self.vars[name] = value

    @property
    def status(self) -> int:
        try:
            return int(self.get("status")[0])
        except (IndexError, ValueError):
            return 1

    def _set_status(self, status: int) -> int:
        self.vars["status"] = [str(status)]
        return status

    # -- word evaluation ------------------------------------------------------

    def eval_word(self, word: ast.Word, io: IO, glob: bool = True) -> list[str]:
        """Evaluate one word to a list, with concatenation and globbing.

        ``glob=False`` keeps metacharacters literal — switch/case and
        ``~`` patterns match strings, not the filesystem.
        """
        result: list[str] | None = None
        globbable = False
        for fragment in word.fragments:
            values, frag_glob = self._eval_fragment(fragment, io)
            globbable = globbable or frag_glob
            result = values if result is None else _concat(result, values)
        assert result is not None
        if globbable and glob:
            expanded: list[str] = []
            for value in result:
                expanded.extend(self._glob(value))
            return expanded
        return result

    def eval_words(self, words: list[ast.Word], io: IO,
                   glob: bool = True) -> list[str]:
        """Evaluate and flatten a word list (an argv)."""
        out: list[str] = []
        for word in words:
            out.extend(self.eval_word(word, io, glob))
        return out

    def _eval_fragment(self, fragment: Fragment, io: IO) -> tuple[list[str], bool]:
        if isinstance(fragment, Lit):
            has_glob = (not fragment.quoted
                        and any(c in fragment.text for c in "*?["))
            return ([fragment.text], has_glob)
        if isinstance(fragment, VarRef):
            value = self.get(fragment.name)
            if fragment.count:
                return ([str(len(value))], False)
            if fragment.flatten:
                return ([" ".join(value)], False)
            if fragment.indices is not None:
                # rc subscripts are 1-based; out-of-range picks nothing
                return ([value[i - 1] for i in fragment.indices
                         if 1 <= i <= len(value)], False)
            return (list(value), False)
        assert isinstance(fragment, Backquote)
        sub_io = IO(stdin=io.stdin)
        try:
            self.exec(parse(fragment.source), sub_io)
        except ParseError as exc:
            raise ShellError(f"in `{{...}}: {exc}") from exc
        finally:
            # even a failing substitution surfaces its diagnostics
            io.stderr.append(sub_io.err())
        return (sub_io.out().split(), False)

    def _glob(self, pattern: str) -> list[str]:
        if not any(c in pattern for c in "*?["):
            return [pattern]
        absolute = pattern.startswith("/")
        full = pattern if absolute else join(self.cwd, pattern)
        matches = self.ns.glob(full)
        if not matches:
            return [pattern]  # rc passes unmatched patterns through
        if absolute:
            return matches
        prefix = self.cwd.rstrip("/") + "/"
        return [m[len(prefix):] if m.startswith(prefix) else m
                for m in matches]

    # -- execution ------------------------------------------------------------

    def exec(self, node: ast.Command, io: IO) -> int:
        """Execute any AST node; returns (and records) the exit status."""
        method = getattr(self, f"_exec_{type(node).__name__.lower()}")
        return method(node, io)

    def _exec_seq(self, node: ast.Seq, io: IO) -> int:
        status = self.status
        for command in node.commands:
            status = self.exec(command, io)
        return status

    def _exec_simple(self, node: ast.Simple, io: IO) -> int:
        if not node.argv:
            for assign in node.assigns:
                self.set(assign.name, self.eval_words(assign.values, io))
            return self._set_status(0)
        saved: dict[str, list[str]] = {}
        for assign in node.assigns:
            saved[assign.name] = self.get(assign.name)
            self.set(assign.name, self.eval_words(assign.values, io))
        try:
            head = self.eval_word(node.argv[0], io)
            if head == ["~"] and len(node.argv) > 1:
                # rc does not glob-expand ~'s patterns; the subject is.
                subject = self.eval_word(node.argv[1], io)
                patterns = self.eval_words(node.argv[2:], io, glob=False)
                argv = head + subject + patterns
            else:
                argv = head + self.eval_words(node.argv[1:], io)
            if not argv:
                return self._set_status(0)
            return self._with_redirs(node.redirs, io,
                                     lambda sub: self._dispatch(argv, sub))
        finally:
            for name, value in saved.items():
                self.set(name, value)

    def _exec_block(self, node: ast.Block, io: IO) -> int:
        return self._with_redirs(node.redirs, io,
                                 lambda sub: self.exec(node.body, sub))

    def _exec_pipeline(self, node: ast.Pipeline, io: IO) -> int:
        data = io.stdin
        status = 0
        for i, stage in enumerate(node.stages):
            stage_io = IO(stdin=data)
            try:
                status = self.exec(stage, stage_io)
            finally:
                # a stage that dies mid-pipeline must not swallow the
                # diagnostics (or partial output) it already produced
                io.stderr.append(stage_io.err())
            data = stage_io.out()
        io.stdout.append(data)
        return self._set_status(status)

    def _exec_not(self, node: ast.Not, io: IO) -> int:
        status = self.exec(node.cmd, io)
        return self._set_status(0 if status != 0 else 1)

    def _exec_andor(self, node: ast.AndOr, io: IO) -> int:
        status = self.exec(node.first, io)
        for op, command in node.rest:
            if (op == "&&") == (status == 0):
                status = self.exec(command, io)
        return self._set_status(status)

    def _exec_if(self, node: ast.If, io: IO) -> int:
        cond_status = self.exec(node.cond, io)
        if cond_status == 0:
            self._if_failed = False
            return self.exec(node.body, io)
        self._if_failed = True
        return self._set_status(0)

    def _exec_ifnot(self, node: ast.IfNot, io: IO) -> int:
        if getattr(self, "_if_failed", False):
            self._if_failed = False
            return self.exec(node.body, io)
        return self._set_status(0)

    def _exec_for(self, node: ast.For, io: IO) -> int:
        values = (self.eval_words(node.words, io) if node.words is not None
                  else list(self.get("*")))
        status = 0
        for value in values:
            self.set(node.var, [value])
            status = self.exec(node.body, io)
        return self._set_status(status)

    def _exec_while(self, node: ast.While, io: IO) -> int:
        status = 0
        for _ in range(MAX_LOOP):
            if self.exec(node.cond, io) != 0:
                return self._set_status(status)
            status = self.exec(node.body, io)
        raise ShellError("while loop ran too long")

    def _exec_switch(self, node: ast.Switch, io: IO) -> int:
        subjects = self.eval_word(node.subject, io)
        subject = " ".join(subjects)
        for case in node.cases:
            patterns = self.eval_words(case.patterns, io, glob=False)
            if any(fnmatch.fnmatchcase(subject, p) for p in patterns):
                return self.exec(case.body, io)
        return self._set_status(0)

    def _exec_fndef(self, node: ast.FnDef, io: IO) -> int:
        if node.body is None:
            self.funcs.pop(node.name, None)
        else:
            self.funcs[node.name] = node.body
        return self._set_status(0)

    # -- redirections ---------------------------------------------------------

    def _with_redirs(self, redirs: list[ast.Redir], io: IO,
                     run: Callable[[IO], int]) -> int:
        if not redirs:
            return run(io)
        sub = IO(stdin=io.stdin)
        capture_out = False
        for redir in redirs:
            if redir.kind == "<":
                targets = self.eval_word(redir.target, io)
                if len(targets) != 1:
                    raise ShellError("redirection needs one file name")
                sub.stdin = self.ns.read(self._abspath(targets[0]))
            else:
                capture_out = True
        status = 0
        failed = False
        try:
            status = run(sub)
        except BaseException:
            failed = True
            raise
        finally:
            # Flush even when the command failed: whatever it wrote
            # before dying still reaches the redirection targets (and
            # its stderr is never swallowed).  Secondary errors while
            # flushing must not mask the original failure.
            io.stderr.append(sub.err())
            wrote = False
            for redir in redirs:
                if redir.kind == "<":
                    continue
                try:
                    targets = self.eval_word(redir.target, io)
                    if len(targets) != 1:
                        raise ShellError("redirection needs one file name")
                    path = self._abspath(targets[0])
                    if redir.kind == ">":
                        self.ns.write(path, sub.out())
                    else:
                        self.ns.append(path, sub.out())
                    wrote = True
                except (ShellError, FsError):
                    if not failed:
                        raise
            if capture_out and not wrote and not failed:
                io.stdout.append(sub.out())
            if not capture_out:
                io.stdout.append(sub.out())
        return status

    def _abspath(self, path: str) -> str:
        return path if path.startswith("/") else join(self.cwd, path)

    # -- command dispatch -----------------------------------------------------

    def _dispatch(self, argv: list[str], io: IO) -> int:
        if self.trace is not None:
            self.trace(argv, self.cwd)
        name, args = argv[0], argv[1:]
        fn = self.funcs.get(name)
        if fn is not None:
            child_vars = {k: list(v) for k, v in self.vars.items()}
            self.set_args(name, args)
            try:
                return self._set_status(self.exec(fn.body, io))
            finally:
                for key in ("0", "*", *map(str, range(1, 10))):
                    if key in child_vars:
                        self.vars[key] = child_vars[key]
                    else:
                        self.vars.pop(key, None)
        shell_builtin = _SHELL_BUILTINS.get(name)
        if shell_builtin is not None:
            return self._set_status(shell_builtin(self, args, io))
        command = self.commands.get(name)
        if command is not None:
            return self._set_status(command(self, args, io))
        return self._set_status(self._run_script(name, args, io))

    def _run_script(self, name: str, args: list[str], io: IO) -> int:
        path = self._find_script(name)
        if path is None:
            io.stderr.append(f"rc: {name}: not found\n")
            return 1
        child = self.subshell()
        child.set_args(name, args)
        result = child.run(self.ns.read(path), io.stdin)
        io.stdout.append(result.stdout)
        io.stderr.append(result.stderr)
        return result.status

    def _find_script(self, name: str) -> str | None:
        # rc resolves names beginning with /, ./ or ../ directly;
        # anything else — slashes included, as in "help/parse" —
        # is searched for along $path.
        if name.startswith(("/", "./", "../")):
            path = self._abspath(name)
            return path if (self.ns.exists(path)
                            and not self.ns.isdir(path)) else None
        for directory in self.get("path") or ["/bin"]:
            path = join(directory, name)
            if self.ns.exists(path) and not self.ns.isdir(path):
                return path
        path = self._abspath(name)
        if self.ns.exists(path) and not self.ns.isdir(path):
            return path
        return None


def _concat(left: list[str], right: list[str]) -> list[str]:
    """rc list concatenation: pairwise, or distributed over a scalar."""
    if not left or not right:
        raise ShellError("null list in concatenation")
    if len(left) == len(right):
        return [a + b for a, b in zip(left, right)]
    if len(left) == 1:
        return [left[0] + b for b in right]
    if len(right) == 1:
        return [a + right[0] for a in left]
    raise ShellError(
        f"mismatched list lengths in concatenation ({len(left)} vs {len(right)})")


# -- shell builtins (affect the interpreter itself) ---------------------------


def _builtin_cd(interp: Interp, args: list[str], io: IO) -> int:
    if not args:
        interp.cwd = "/"
        return 0
    path = interp._abspath(args[0])
    if not interp.ns.isdir(path):
        io.stderr.append(f"cd: {args[0]}: bad directory\n")
        return 1
    interp.cwd = path
    return 0


def _builtin_eval(interp: Interp, args: list[str], io: IO) -> int:
    """Re-parse and run the arguments as rc input (decl's first line)."""
    result = interp.run(" ".join(args), io.stdin)
    io.stdout.append(result.stdout)
    io.stderr.append(result.stderr)
    return result.status


def _builtin_exit(interp: Interp, args: list[str], io: IO) -> int:
    status = 0
    if args:
        try:
            status = int(args[0])
        except ValueError:
            status = 1
    raise _Exit(status)


def _builtin_match(interp: Interp, args: list[str], io: IO) -> int:
    """``~ subject pattern...`` — status 0 if any pattern matches."""
    if not args:
        return 1
    subject, patterns = args[0], args[1:]
    return 0 if any(fnmatch.fnmatchcase(subject, p) for p in patterns) else 1


def _builtin_dot(interp: Interp, args: list[str], io: IO) -> int:
    """``. file`` — run a script in the current shell (profiles)."""
    if not args:
        io.stderr.append(".: needs a file\n")
        return 1
    path = interp._abspath(args[0])
    try:
        src = interp.ns.read(path)
    except FsError as exc:
        io.stderr.append(f".: {exc}\n")
        return 1
    interp.set_args(path, args[1:])
    result_io = IO(stdin=io.stdin)
    try:
        status = interp.exec(parse(src), result_io)
    except ParseError as exc:
        io.stderr.append(f"rc: {exc}\n")
        return 1
    finally:
        # a profile that dies halfway still shows what it printed
        io.stdout.append(result_io.out())
        io.stderr.append(result_io.err())
    return status


def _builtin_shift(interp: Interp, args: list[str], io: IO) -> int:
    n = int(args[0]) if args else 1
    star = interp.get("*")
    interp.set_args(interp.get("0")[0] if interp.get("0") else "rc",
                    star[n:])
    return 0


def _builtin_whatis(interp: Interp, args: list[str], io: IO) -> int:
    status = 0
    for name in args:
        if name in interp.funcs:
            io.stdout.append(f"fn {name}\n")
        elif name in interp.vars:
            io.stdout.append(f"{name}=({' '.join(interp.get(name))})\n")
        elif name in interp.commands or interp._find_script(name):
            io.stdout.append(f"{name}\n")
        else:
            io.stderr.append(f"whatis: {name}: not found\n")
            status = 1
    return status


_SHELL_BUILTINS: dict[str, Callable[[Interp, list[str], IO], int]] = {
    "cd": _builtin_cd,
    "eval": _builtin_eval,
    "exit": _builtin_exit,
    "~": _builtin_match,
    ".": _builtin_dot,
    "shift": _builtin_shift,
    "whatis": _builtin_whatis,
}
