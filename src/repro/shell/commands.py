"""The simulated userland: the commands the paper's scripts invoke.

Every command here is a Python function with the contract
``fn(interp, argv, io) -> status``, operating on the shared namespace.
They are deliberately small — just enough POSIX/Plan 9 behaviour for
the tool scripts, the profile in Figure 2, and the examples.

Domain commands (``cpp``, ``rcc``, ``adb``, ``ps``, ``mk``, the mail
and help tools) live with their substrates and are registered into an
interpreter's table by :mod:`repro.tools.install`.
"""

from __future__ import annotations

import re

from repro.fs.errors import diagnostic as _diag
from repro.fs.namespace import BindFlag
from repro.fs.vfs import FsError, basename as _basename, dirname as _dirname, join
from repro.shell.interp import IO, Interp

# The paper's screenshots are all dated mid-April 1991; a deterministic
# clock keeps reproduced figures reproducible.
EPOCH = "Tue Apr 16 19:26:14 EDT 1991"


def _files_or_stdin(interp: Interp, args: list[str], io: IO) -> list[tuple[str, str]]:
    """(name, contents) for each file argument, or stdin if none."""
    if not args:
        return [("<stdin>", io.stdin)]
    out = []
    for name in args:
        out.append((name, interp.ns.read(interp._abspath(name))))
    return out


def cmd_echo(interp: Interp, args: list[str], io: IO) -> int:
    """echo [-n] words..."""
    newline = True
    if args and args[0] == "-n":
        newline = False
        args = args[1:]
    io.stdout.append(" ".join(args) + ("\n" if newline else ""))
    return 0


def cmd_cat(interp: Interp, args: list[str], io: IO) -> int:
    """cat [files...] — concatenate files (or stdin)."""
    try:
        for _, data in _files_or_stdin(interp, args, io):
            io.stdout.append(data)
    except FsError as exc:
        io.stderr.append(f"cat: {_diag(exc)}\n")
        return 1
    return 0


def cmd_cp(interp: Interp, args: list[str], io: IO) -> int:
    """cp src dst — the paper's `cp /mnt/help/7/body file`."""
    if len(args) != 2:
        io.stderr.append("usage: cp src dst\n")
        return 1
    src, dst = (interp._abspath(a) for a in args)
    try:
        data = interp.ns.read(src)
        if interp.ns.isdir(dst):
            dst = join(dst, _basename(src))
        interp.ns.write(dst, data)
    except FsError as exc:
        io.stderr.append(f"cp: {_diag(exc)}\n")
        return 1
    return 0


def cmd_mv(interp: Interp, args: list[str], io: IO) -> int:
    """mv src dst."""
    status = cmd_cp(interp, args, io)
    if status != 0:
        return status
    interp.ns.remove(interp._abspath(args[0]))
    return 0


def cmd_rm(interp: Interp, args: list[str], io: IO) -> int:
    """rm files... (-f ignores missing)."""
    force = False
    if args and args[0] == "-f":
        force = True
        args = args[1:]
    status = 0
    for name in args:
        try:
            interp.ns.remove(interp._abspath(name))
        except FsError as exc:
            if not force:
                io.stderr.append(f"rm: {_diag(exc)}\n")
                status = 1
    return status


def cmd_ls(interp: Interp, args: list[str], io: IO) -> int:
    """ls [-p] [dirs...] — names one per line, dirs slashed."""
    plain = False
    if args and args[0] == "-p":
        plain = True
        args = args[1:]
    targets = args or [interp.cwd]
    status = 0
    for target in targets:
        path = interp._abspath(target)
        try:
            if not interp.ns.isdir(path):
                interp.ns.walk(path)
                io.stdout.append(target + "\n")
                continue
            for name in interp.ns.listdir(path):
                slash = ("" if plain or not interp.ns.isdir(join(path, name))
                         else "/")
                io.stdout.append(name + slash + "\n")
        except FsError as exc:
            io.stderr.append(f"ls: {_diag(exc)}\n")
            status = 1
    return status


def cmd_grep(interp: Interp, args: list[str], io: IO) -> int:
    """grep [-n] [-c] [-i] [-v] pattern [files...].

    Status 0 if anything matched, 1 otherwise — the interface the
    paper's `grep pattern /mnt/help/7/body` example relies on.
    """
    number = count = ignore = invert = False
    while args and args[0].startswith("-") and len(args[0]) > 1:
        for flag in args[0][1:]:
            if flag == "n":
                number = True
            elif flag == "c":
                count = True
            elif flag == "i":
                ignore = True
            elif flag == "v":
                invert = True
            else:
                io.stderr.append(f"grep: bad flag -{flag}\n")
                return 2
        args = args[1:]
    if not args:
        io.stderr.append("usage: grep [-nciv] pattern [files...]\n")
        return 2
    pattern, files = args[0], args[1:]
    try:
        regex = re.compile(pattern, re.IGNORECASE if ignore else 0)
    except re.error as exc:
        io.stderr.append(f"grep: bad pattern: {exc}\n")
        return 2
    matched_any = False
    try:
        sources = _files_or_stdin(interp, files, io)
    except FsError as exc:
        io.stderr.append(f"grep: {_diag(exc)}\n")
        return 2
    many = len(sources) > 1
    for name, data in sources:
        hits = 0
        for line_no, line in enumerate(data.splitlines(), start=1):
            hit = bool(regex.search(line)) != invert
            if not hit:
                continue
            hits += 1
            matched_any = True
            if count:
                continue
            prefix = f"{name}:" if many else ""
            num = f"{line_no}:" if number else ""
            io.stdout.append(f"{prefix}{num}{line}\n")
        if count:
            prefix = f"{name}:" if many else ""
            io.stdout.append(f"{prefix}{hits}\n")
    return 0 if matched_any else 1


def cmd_sed(interp: Interp, args: list[str], io: IO) -> int:
    """sed — the subset the tools use: ``Nq``, ``s/a/b/[g]``, ``-n Np``."""
    quiet = False
    if args and args[0] == "-n":
        quiet = True
        args = args[1:]
    if not args:
        io.stderr.append("usage: sed [-n] script [files...]\n")
        return 1
    script, files = args[0], args[1:]
    try:
        sources = _files_or_stdin(interp, files, io)
    except FsError as exc:
        io.stderr.append(f"sed: {_diag(exc)}\n")
        return 1
    text = "".join(data for _, data in sources)
    lines = text.splitlines(keepends=True)

    if m := re.fullmatch(r"(\d+)q", script):
        limit = int(m.group(1))
        io.stdout.append("".join(lines[:limit]))
        return 0
    if m := re.fullmatch(r"(\d+)p", script):
        want = int(m.group(1))
        if not quiet:
            io.stdout.append("".join(lines))
        if 1 <= want <= len(lines):
            io.stdout.append(lines[want - 1])
        return 0
    if script.startswith("s") and len(script) > 2:
        delim = script[1]
        parts = script[2:].split(delim)
        if len(parts) >= 2:
            pattern, replacement = parts[0], parts[1]
            flags = parts[2] if len(parts) > 2 else ""
            count = 0 if "g" in flags else 1
            try:
                out = [re.sub(pattern, replacement, line, count=count)
                       for line in lines]
            except re.error as exc:
                io.stderr.append(f"sed: bad pattern: {exc}\n")
                return 1
            io.stdout.append("".join(out))
            return 0
    io.stderr.append(f"sed: unsupported script {script!r}\n")
    return 1


def cmd_wc(interp: Interp, args: list[str], io: IO) -> int:
    """wc [-l] [-w] [-c] [files...]."""
    want = {f for f in ("l", "w", "c")
            if args and args[0].startswith("-") and f in args[0]}
    if args and args[0].startswith("-"):
        args = args[1:]
    if not want:
        want = {"l", "w", "c"}
    try:
        sources = _files_or_stdin(interp, args, io)
    except FsError as exc:
        io.stderr.append(f"wc: {_diag(exc)}\n")
        return 1
    for name, data in sources:
        fields = []
        if "l" in want:
            fields.append(str(data.count("\n")))
        if "w" in want:
            fields.append(str(len(data.split())))
        if "c" in want:
            fields.append(str(len(data)))
        suffix = f" {name}" if name != "<stdin>" else ""
        io.stdout.append(" ".join(fields) + suffix + "\n")
    return 0


def cmd_sort(interp: Interp, args: list[str], io: IO) -> int:
    """sort [-r] [-n] [-u] [files...]."""
    reverse = numeric = unique = False
    while args and args[0].startswith("-") and len(args[0]) > 1:
        for flag in args[0][1:]:
            reverse |= flag == "r"
            numeric |= flag == "n"
            unique |= flag == "u"
        args = args[1:]
    try:
        sources = _files_or_stdin(interp, args, io)
    except FsError as exc:
        io.stderr.append(f"sort: {_diag(exc)}\n")
        return 1
    lines = "".join(d for _, d in sources).splitlines()
    if numeric:
        def key(line: str):
            m = re.match(r"\s*(-?\d+)", line)
            return (int(m.group(1)) if m else 0, line)
        lines.sort(key=key, reverse=reverse)
    else:
        lines.sort(reverse=reverse)
    if unique:
        deduped: list[str] = []
        for line in lines:
            if not deduped or deduped[-1] != line:
                deduped.append(line)
        lines = deduped
    io.stdout.append("".join(line + "\n" for line in lines))
    return 0


def cmd_uniq(interp: Interp, args: list[str], io: IO) -> int:
    """uniq [-c] [files...]."""
    counted = bool(args) and args[0] == "-c"
    if counted:
        args = args[1:]
    try:
        sources = _files_or_stdin(interp, args, io)
    except FsError as exc:
        io.stderr.append(f"uniq: {_diag(exc)}\n")
        return 1
    lines = "".join(d for _, d in sources).splitlines()
    out: list[tuple[str, int]] = []
    for line in lines:
        if out and out[-1][0] == line:
            out[-1] = (line, out[-1][1] + 1)
        else:
            out.append((line, 1))
    for line, n in out:
        io.stdout.append(f"{n:4d} {line}\n" if counted else line + "\n")
    return 0


def _head_tail(args: list[str]) -> tuple[int, list[str]]:
    n = 10
    if args and re.fullmatch(r"-\d+", args[0]):
        n = int(args[0][1:])
        args = args[1:]
    elif len(args) >= 2 and args[0] == "-n":
        n = int(args[1])
        args = args[2:]
    return n, args


def cmd_head(interp: Interp, args: list[str], io: IO) -> int:
    """head [-N | -n N] [files...]."""
    n, args = _head_tail(args)
    try:
        sources = _files_or_stdin(interp, args, io)
    except FsError as exc:
        io.stderr.append(f"head: {_diag(exc)}\n")
        return 1
    lines = "".join(d for _, d in sources).splitlines(keepends=True)
    io.stdout.append("".join(lines[:n]))
    return 0


def cmd_tail(interp: Interp, args: list[str], io: IO) -> int:
    """tail [-N | -n N] [files...]."""
    n, args = _head_tail(args)
    try:
        sources = _files_or_stdin(interp, args, io)
    except FsError as exc:
        io.stderr.append(f"tail: {_diag(exc)}\n")
        return 1
    lines = "".join(d for _, d in sources).splitlines(keepends=True)
    io.stdout.append("".join(lines[-n:] if n else []))
    return 0


def cmd_touch(interp: Interp, args: list[str], io: IO) -> int:
    """touch files... — bump mtimes (mk's notion of change)."""
    for name in args:
        path = interp._abspath(name)
        node = interp.ns.resolve(path)
        if node is None:
            interp.ns.write(path, "")
        else:
            node.mtime = interp.ns.vfs.clock.tick()
    return 0


def cmd_mkdir(interp: Interp, args: list[str], io: IO) -> int:
    """mkdir [-p] dirs..."""
    parents = bool(args) and args[0] == "-p"
    if parents:
        args = args[1:]
    status = 0
    for name in args:
        try:
            interp.ns.mkdir(interp._abspath(name), parents=parents)
        except FsError as exc:
            io.stderr.append(f"mkdir: {_diag(exc)}\n")
            status = 1
    return status


def cmd_pwd(interp: Interp, args: list[str], io: IO) -> int:
    """pwd — though help itself 'has no explicit notion of cwd'."""
    io.stdout.append(interp.cwd + "\n")
    return 0


def cmd_basename(interp: Interp, args: list[str], io: IO) -> int:
    """basename path [suffix]."""
    if not args:
        io.stderr.append("usage: basename path [suffix]\n")
        return 1
    name = _basename(args[0])
    if len(args) > 1 and name.endswith(args[1]):
        name = name[:-len(args[1])]
    io.stdout.append(name + "\n")
    return 0


def cmd_dirname(interp: Interp, args: list[str], io: IO) -> int:
    """dirname path."""
    if not args:
        io.stderr.append("usage: dirname path\n")
        return 1
    io.stdout.append(_dirname(args[0]) + "\n")
    return 0


def cmd_bind(interp: Interp, args: list[str], io: IO) -> int:
    """bind [-a|-b|-c] src dst — the profile's namespace surgery."""
    flag = BindFlag.REPLACE
    while args and args[0].startswith("-"):
        if args[0] == "-a":
            flag = BindFlag.AFTER
        elif args[0] == "-b":
            flag = BindFlag.BEFORE
        elif args[0] == "-c":
            pass  # create permission: every bind here allows creation
        else:
            io.stderr.append(f"bind: bad flag {args[0]}\n")
            return 1
        args = args[1:]
    if len(args) != 2:
        io.stderr.append("usage: bind [-a|-b|-c] src dst\n")
        return 1
    try:
        interp.ns.bind(interp._abspath(args[0]), interp._abspath(args[1]), flag)
    except FsError as exc:
        io.stderr.append(f"bind: {_diag(exc)}\n")
        return 1
    return 0


def cmd_ns(interp: Interp, args: list[str], io: IO) -> int:
    """ns — show the mount table."""
    for path, stack in sorted(interp.ns.mount_table().items()):
        names = " ".join(node.name or "/" for node in stack)
        io.stdout.append(f"{path} <- {names}\n")
    return 0


def cmd_date(interp: Interp, args: list[str], io: IO) -> int:
    """date — deterministic: the paper's date plus the logical clock."""
    tick = interp.ns.vfs.clock.now
    io.stdout.append(f"{EPOCH} (+{tick})\n")
    return 0


def cmd_true(interp: Interp, args: list[str], io: IO) -> int:
    return 0


def cmd_false(interp: Interp, args: list[str], io: IO) -> int:
    return 1


def cmd_news(interp: Interp, args: list[str], io: IO) -> int:
    """news — print /lib/news if present (run from the profile)."""
    if interp.ns.exists("/lib/news"):
        io.stdout.append(interp.ns.read("/lib/news"))
    return 0


def cmd_fortune(interp: Interp, args: list[str], io: IO) -> int:
    """fortune — deterministic rotation through /lib/fortunes."""
    fortunes = ["Minimalism is not a style, it is an attitude.\n"]
    if interp.ns.exists("/lib/fortunes"):
        lines = interp.ns.read("/lib/fortunes").splitlines(keepends=True)
        fortunes = lines or fortunes
    index = interp.ns.vfs.clock.now % len(fortunes)
    io.stdout.append(fortunes[index])
    return 0


def cmd_xargs(interp: Interp, args: list[str], io: IO) -> int:
    """xargs cmd [fixed args...] — append stdin words and run."""
    if not args:
        io.stderr.append("usage: xargs cmd [args...]\n")
        return 1
    argv = args + io.stdin.split()
    return interp._dispatch(argv, IO(stdin="", stdout=io.stdout,
                                     stderr=io.stderr))


def cmd_tee(interp: Interp, args: list[str], io: IO) -> int:
    """tee files... — copy stdin to stdout and each file."""
    io.stdout.append(io.stdin)
    for name in args:
        interp.ns.write(interp._abspath(name), io.stdin)
    return 0


def cmd_read(interp: Interp, args: list[str], io: IO) -> int:
    """read var — first line of stdin into a variable."""
    if not args:
        io.stderr.append("usage: read var\n")
        return 1
    line, _, _ = io.stdin.partition("\n")
    interp.set(args[0], [line])
    return 0 if io.stdin else 1


DEFAULT_COMMANDS = {
    "echo": cmd_echo,
    "cat": cmd_cat,
    "cp": cmd_cp,
    "mv": cmd_mv,
    "rm": cmd_rm,
    "ls": cmd_ls,
    "lc": cmd_ls,
    "grep": cmd_grep,
    "sed": cmd_sed,
    "wc": cmd_wc,
    "sort": cmd_sort,
    "uniq": cmd_uniq,
    "head": cmd_head,
    "tail": cmd_tail,
    "touch": cmd_touch,
    "mkdir": cmd_mkdir,
    "pwd": cmd_pwd,
    "basename": cmd_basename,
    "dirname": cmd_dirname,
    "bind": cmd_bind,
    "ns": cmd_ns,
    "date": cmd_date,
    "true": cmd_true,
    "false": cmd_false,
    "news": cmd_news,
    "fortune": cmd_fortune,
    "xargs": cmd_xargs,
    "tee": cmd_tee,
    "read": cmd_read,
}
