"""Lexer for the rc subset.

Produces a flat token stream.  Words are composite: a WORD token
carries *fragments* — literal text, variable references, and
backquote substitutions — because rc concatenates adjacent fragments
(``-i$id`` is one word made of a literal and a variable).

Quoting follows rc: single quotes only, a doubled ``''`` inside a
quoted string is a literal quote.  ``#`` starts a comment.  Newlines
are tokens (they terminate commands) except immediately after ``|``,
``&&``, ``||`` or an opening brace/paren, where rc continues the line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class LexError(Exception):
    """Malformed input (unterminated quote or backquote block)."""


class TokKind(enum.Enum):
    WORD = "word"
    NEWLINE = "newline"
    SEMI = ";"
    PIPE = "|"
    ANDAND = "&&"
    OROR = "||"
    BANG = "!"
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    GREAT = ">"
    DGREAT = ">>"
    LESS = "<"
    AMP = "&"
    EQUALS = "="      # only produced inside assignment splitting (parser)
    EOF = "eof"


# -- word fragments -------------------------------------------------------


@dataclass(frozen=True)
class Lit:
    """Literal text.  ``quoted`` disables globbing of this fragment."""

    text: str
    quoted: bool = False


@dataclass(frozen=True)
class VarRef:
    """``$name``, ``$#name`` (count), ``$"name`` (flatten), or the
    subscripted ``$name(1 3)`` selecting 1-based elements."""

    name: str
    count: bool = False
    flatten: bool = False
    indices: tuple[int, ...] | None = None


@dataclass(frozen=True)
class Backquote:
    """`` `{command text} `` — the raw source, parsed lazily.

    *pos* is the offset of the command text in the enclosing source,
    so browsers can map positions inside the backquote back out.
    """

    source: str
    pos: int = 0


Fragment = Lit | VarRef | Backquote


@dataclass
class Token:
    kind: TokKind
    fragments: list[Fragment] = field(default_factory=list)
    pos: int = 0

    def literal(self) -> str:
        """The word's text if it is entirely unquoted literal, else ''."""
        if self.kind is not TokKind.WORD:
            return ""
        parts = []
        for frag in self.fragments:
            if not isinstance(frag, Lit) or frag.quoted:
                return ""
            parts.append(frag.text)
        return "".join(parts)


_SELF = "\n;|{}()<&="
_WORD_END = set(" \t\n;|{}()<>&#`'$^=")
_VARNAME_CHARS = set("abcdefghijklmnopqrstuvwxyz"
                     "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_*")


class Lexer:
    """Tokenizes rc source."""

    def __init__(self, src: str) -> None:
        self.src = src
        self.pos = 0

    def tokens(self) -> list[Token]:
        """The full token list, ending with EOF."""
        out: list[Token] = []
        while True:
            tok = self._next()
            # a newline right after a continuation token is invisible
            if (tok.kind is TokKind.NEWLINE and out
                    and out[-1].kind in (TokKind.PIPE, TokKind.ANDAND,
                                         TokKind.OROR, TokKind.LBRACE,
                                         TokKind.LPAREN, TokKind.NEWLINE,
                                         TokKind.SEMI, TokKind.BANG)):
                continue
            out.append(tok)
            if tok.kind is TokKind.EOF:
                return out

    # -- scanning ---------------------------------------------------------

    def _peek(self) -> str:
        return self.src[self.pos] if self.pos < len(self.src) else ""

    def _next(self) -> Token:
        src = self.src
        while self.pos < len(src) and src[self.pos] in " \t":
            self.pos += 1
        if self.pos < len(src) and src[self.pos] == "#":
            while self.pos < len(src) and src[self.pos] != "\n":
                self.pos += 1
        start = self.pos
        if self.pos >= len(src):
            return Token(TokKind.EOF, pos=start)
        ch = src[self.pos]
        if ch == "\n":
            self.pos += 1
            return Token(TokKind.NEWLINE, pos=start)
        if ch == ";":
            self.pos += 1
            return Token(TokKind.SEMI, pos=start)
        if ch == "&":
            self.pos += 1
            if self._peek() == "&":
                self.pos += 1
                return Token(TokKind.ANDAND, pos=start)
            return Token(TokKind.AMP, pos=start)
        if ch == "|":
            self.pos += 1
            if self._peek() == "|":
                self.pos += 1
                return Token(TokKind.OROR, pos=start)
            return Token(TokKind.PIPE, pos=start)
        if ch == ">":
            self.pos += 1
            if self._peek() == ">":
                self.pos += 1
                return Token(TokKind.DGREAT, pos=start)
            return Token(TokKind.GREAT, pos=start)
        if ch == "<":
            self.pos += 1
            return Token(TokKind.LESS, pos=start)
        if ch == "!":
            # "!" alone is the negation operator; "!x" begins a word
            if (self.pos + 1 >= len(src)
                    or src[self.pos + 1] in " \t\n;|{}()"):
                self.pos += 1
                return Token(TokKind.BANG, pos=start)
        simple = {"{": TokKind.LBRACE, "}": TokKind.RBRACE,
                  "(": TokKind.LPAREN, ")": TokKind.RPAREN}
        if ch in simple:
            self.pos += 1
            return Token(simple[ch], pos=start)
        return self._word(start)

    def _word(self, start: int) -> Token:
        fragments: list[Fragment] = []
        src = self.src
        while self.pos < len(src):
            ch = src[self.pos]
            if ch == "'":
                fragments.append(self._quote())
            elif ch == "$":
                fragments.append(self._var())
            elif ch == "`":
                fragments.append(self._backquote())
            elif ch == "^":
                self.pos += 1  # explicit concatenation: fragments already adjoin
            elif ch == "!" and self.pos > start:
                # '!' inside a word is literal (e.g. Close!)
                fragments.append(Lit("!"))
                self.pos += 1
            elif ch in _WORD_END and not (ch == "!" and self.pos == start):
                if ch == "=" :
                    # '=' inside a word: literal except it may split an
                    # assignment — the parser decides; keep it literal.
                    fragments.append(Lit("="))
                    self.pos += 1
                    continue
                break
            else:
                run_start = self.pos
                while (self.pos < len(src)
                       and src[self.pos] not in _WORD_END
                       and src[self.pos] != "^"):
                    self.pos += 1
                fragments.append(Lit(src[run_start:self.pos]))
        if not fragments:
            raise LexError(f"empty word at {start}")
        return Token(TokKind.WORD, fragments, pos=start)

    def _quote(self) -> Lit:
        assert self.src[self.pos] == "'"
        self.pos += 1
        out: list[str] = []
        src = self.src
        while True:
            if self.pos >= len(src):
                raise LexError("unterminated quote")
            ch = src[self.pos]
            if ch == "'":
                if self.pos + 1 < len(src) and src[self.pos + 1] == "'":
                    out.append("'")
                    self.pos += 2
                    continue
                self.pos += 1
                return Lit("".join(out), quoted=True)
            out.append(ch)
            self.pos += 1

    def _var(self) -> VarRef:
        assert self.src[self.pos] == "$"
        self.pos += 1
        src = self.src
        count = flatten = False
        if self._peek() == "#":
            count = True
            self.pos += 1
        elif self._peek() == '"':
            flatten = True
            self.pos += 1
        start = self.pos
        while self.pos < len(src) and src[self.pos] in _VARNAME_CHARS:
            self.pos += 1
        name = src[start:self.pos]
        if not name:
            raise LexError(f"bad variable reference at {start}")
        indices: tuple[int, ...] | None = None
        if (not count and not flatten and self._peek() == "("):
            # $name(1 3): subscripts, digits and spaces only — anything
            # else means the paren belongs to the surrounding syntax
            end = src.find(")", self.pos + 1)
            inner = src[self.pos + 1:end] if end > 0 else ""
            if end > 0 and inner.strip() and all(
                    c.isdigit() or c.isspace() for c in inner):
                indices = tuple(int(w) for w in inner.split())
                self.pos = end + 1
        return VarRef(name, count=count, flatten=flatten, indices=indices)

    def _backquote(self) -> Backquote:
        assert self.src[self.pos] == "`"
        self.pos += 1
        if self._peek() != "{":
            raise LexError("` must be followed by {")
        self.pos += 1
        depth = 1
        start = self.pos
        src = self.src
        while self.pos < len(src):
            ch = src[self.pos]
            if ch == "'":
                self._quote()
                continue
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    source = src[start:self.pos]
                    self.pos += 1
                    return Backquote(source, start)
            self.pos += 1
        raise LexError("unterminated `{")
