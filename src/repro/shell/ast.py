"""AST nodes for the rc subset."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.shell.lexer import Fragment


@dataclass
class Word:
    """One shell word: adjacent fragments concatenate at evaluation.

    *pos* is the source offset of the word's first character, kept so
    tools (the rc browser) can report accurate coordinates.
    """

    fragments: list[Fragment]
    pos: int = 0


@dataclass
class Redir:
    """An I/O redirection: ``>``, ``>>`` or ``<`` to/from *target*."""

    kind: str
    target: Word


@dataclass
class Assign:
    """``name=word`` or ``name=(w1 w2 ...)``."""

    name: str
    values: list[Word]


@dataclass
class Simple:
    """A simple command: optional assignments, argv, redirections.

    With an empty argv the assignments are global; otherwise they
    scope to this one command (rc semantics).
    """

    assigns: list[Assign] = field(default_factory=list)
    argv: list[Word] = field(default_factory=list)
    redirs: list[Redir] = field(default_factory=list)


@dataclass
class Block:
    """``{ ... }`` — a grouped sequence, usable as a pipeline stage."""

    body: "Seq"
    redirs: list[Redir] = field(default_factory=list)


@dataclass
class Pipeline:
    """Stages joined by ``|``; status is the last stage's."""

    stages: list["Command"]


@dataclass
class Not:
    """``! cmd`` — invert the exit status."""

    cmd: "Command"


@dataclass
class AndOr:
    """``a && b || c`` chains, evaluated left to right."""

    first: "Command"
    rest: list[tuple[str, "Command"]]


@dataclass
class Seq:
    """Commands separated by ``;`` or newline."""

    commands: list["Command"]


@dataclass
class If:
    """``if(cond) body`` — body runs when cond's status is 0."""

    cond: Seq
    body: "Command"


@dataclass
class IfNot:
    """``if not body`` — body runs when the previous If's cond failed."""

    body: "Command"


@dataclass
class For:
    """``for(var in w1 w2) body`` (``in ...`` defaults to ``$*``)."""

    var: str
    words: list[Word] | None
    body: "Command"


@dataclass
class While:
    """``while(cond) body``."""

    cond: Seq
    body: "Command"


@dataclass
class Case:
    """One ``case pat...`` arm of a switch."""

    patterns: list[Word]
    body: Seq


@dataclass
class Switch:
    """``switch(word){ case ... }`` — first matching arm runs."""

    subject: Word
    cases: list[Case]


@dataclass
class FnDef:
    """``fn name { body }`` (empty body deletes the function)."""

    name: str
    body: Block | None


Command = (Simple | Block | Pipeline | Not | AndOr | Seq | If | IfNot
           | For | While | Switch | FnDef)
