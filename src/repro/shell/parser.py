"""Recursive-descent parser for the rc subset.

Grammar (simplified)::

    program  : seq EOF
    seq      : cmd ((';' | NEWLINE)+ cmd)*
    cmd      : andor
    andor    : pipeline (('&&' | '||') pipeline)*
    pipeline : unit ('|' unit)*
    unit     : '!'? item redir*
    item     : simple | block | if | ifnot | for | while | switch | fn
    simple   : assign* word+ | assign+
    block    : '{' seq '}'

Keywords (``if``, ``for``, ``while``, ``switch``, ``case``, ``fn``,
``not``, ``in``) are ordinary words recognized positionally, as in rc.
"""

from __future__ import annotations

from repro.shell import ast
from repro.shell.lexer import Lexer, Lit, Token, TokKind


class ParseError(Exception):
    """Syntactically invalid input."""


def parse(src: str) -> ast.Seq:
    """Parse rc source into a command sequence.

    Lexical errors surface as :class:`ParseError` so callers have a
    single failure mode for bad input.
    """
    from repro.shell.lexer import LexError
    try:
        tokens = Lexer(src).tokens()
    except LexError as exc:
        raise ParseError(str(exc)) from exc
    return _Parser(tokens).program()


_SEPARATORS = (TokKind.SEMI, TokKind.NEWLINE, TokKind.AMP)
_REDIRS = {TokKind.GREAT: ">", TokKind.DGREAT: ">>", TokKind.LESS: "<"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: TokKind) -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            raise ParseError(f"expected {kind.value}, got {tok.kind.value}"
                             f" at {tok.pos}")
        return self.advance()

    def _skip_separators(self) -> None:
        while self.peek().kind in _SEPARATORS:
            self.advance()

    def _at_keyword(self, *names: str) -> bool:
        tok = self.peek()
        return tok.kind is TokKind.WORD and tok.literal() in names

    # -- grammar ----------------------------------------------------------------

    def program(self) -> ast.Seq:
        seq = self.seq(until=(TokKind.EOF,))
        self.expect(TokKind.EOF)
        return seq

    def seq(self, until: tuple[TokKind, ...]) -> ast.Seq:
        commands: list[ast.Command] = []
        self._skip_separators()
        while self.peek().kind not in until:
            commands.append(self.command())
            if self.peek().kind in _SEPARATORS:
                self._skip_separators()
            elif self.peek().kind not in until:
                tok = self.peek()
                raise ParseError(f"unexpected {tok.kind.value} at {tok.pos}")
        return ast.Seq(commands)

    def command(self) -> ast.Command:
        return self.andor()

    def andor(self) -> ast.Command:
        first = self.pipeline()
        rest: list[tuple[str, ast.Command]] = []
        while self.peek().kind in (TokKind.ANDAND, TokKind.OROR):
            op = "&&" if self.advance().kind is TokKind.ANDAND else "||"
            rest.append((op, self.pipeline()))
        if not rest:
            return first
        return ast.AndOr(first, rest)

    def pipeline(self) -> ast.Command:
        stages = [self.unit()]
        while self.peek().kind is TokKind.PIPE:
            self.advance()
            stages.append(self.unit())
        if len(stages) == 1:
            return stages[0]
        return ast.Pipeline(stages)

    def unit(self) -> ast.Command:
        if self.peek().kind is TokKind.BANG:
            self.advance()
            return ast.Not(self.unit())
        item = self.item()
        redirs = self._redirs()
        if redirs:
            if isinstance(item, ast.Simple):
                item.redirs.extend(redirs)
            elif isinstance(item, ast.Block):
                item.redirs.extend(redirs)
            else:
                item = ast.Block(ast.Seq([item]), redirs)
        return item

    def _redirs(self) -> list[ast.Redir]:
        out: list[ast.Redir] = []
        while self.peek().kind in _REDIRS:
            kind = _REDIRS[self.advance().kind]
            target = self.expect(TokKind.WORD)
            out.append(ast.Redir(kind, ast.Word(target.fragments, target.pos)))
        return out

    def item(self) -> ast.Command:
        tok = self.peek()
        if tok.kind is TokKind.LBRACE:
            return self.block()
        if tok.kind is not TokKind.WORD:
            raise ParseError(f"unexpected {tok.kind.value} at {tok.pos}")
        keyword = tok.literal()
        if keyword == "if":
            return self.if_()
        if keyword == "for":
            return self.for_()
        if keyword == "while":
            return self.while_()
        if keyword == "switch":
            return self.switch()
        if keyword == "fn":
            return self.fn()
        return self.simple()

    def block(self) -> ast.Block:
        self.expect(TokKind.LBRACE)
        body = self.seq(until=(TokKind.RBRACE,))
        self.expect(TokKind.RBRACE)
        return ast.Block(body)

    def if_(self) -> ast.Command:
        self.advance()  # 'if'
        if self._at_keyword("not"):
            self.advance()
            return ast.IfNot(self.command())
        self.expect(TokKind.LPAREN)
        cond = self.seq(until=(TokKind.RPAREN,))
        self.expect(TokKind.RPAREN)
        return ast.If(cond, self.command())

    def for_(self) -> ast.For:
        self.advance()  # 'for'
        self.expect(TokKind.LPAREN)
        var_tok = self.expect(TokKind.WORD)
        var = var_tok.literal()
        if not var:
            raise ParseError(f"bad for variable at {var_tok.pos}")
        words: list[ast.Word] | None = None
        if self._at_keyword("in"):
            self.advance()
            words = []
            while self.peek().kind is TokKind.WORD:
                tok = self.advance()
                words.append(ast.Word(tok.fragments, tok.pos))
        self.expect(TokKind.RPAREN)
        return ast.For(var, words, self.command())

    def while_(self) -> ast.While:
        self.advance()  # 'while'
        self.expect(TokKind.LPAREN)
        cond = self.seq(until=(TokKind.RPAREN,))
        self.expect(TokKind.RPAREN)
        return ast.While(cond, self.command())

    def switch(self) -> ast.Switch:
        self.advance()  # 'switch'
        self.expect(TokKind.LPAREN)
        subject_tok = self.expect(TokKind.WORD)
        self.expect(TokKind.RPAREN)
        self._skip_separators()
        self.expect(TokKind.LBRACE)
        cases: list[ast.Case] = []
        self._skip_separators()
        while self.peek().kind is not TokKind.RBRACE:
            if not self._at_keyword("case"):
                tok = self.peek()
                raise ParseError(f"expected 'case' at {tok.pos}")
            self.advance()
            patterns: list[ast.Word] = []
            while self.peek().kind is TokKind.WORD:
                tok = self.advance()
                patterns.append(ast.Word(tok.fragments, tok.pos))
            if not patterns:
                raise ParseError("case with no patterns")
            self._skip_separators()
            body_cmds: list[ast.Command] = []
            while (self.peek().kind is not TokKind.RBRACE
                   and not self._at_keyword("case")):
                body_cmds.append(self.command())
                self._skip_separators()
            cases.append(ast.Case(patterns, ast.Seq(body_cmds)))
        self.expect(TokKind.RBRACE)
        return ast.Switch(ast.Word(subject_tok.fragments, subject_tok.pos), cases)

    def fn(self) -> ast.FnDef:
        self.advance()  # 'fn'
        name_tok = self.expect(TokKind.WORD)
        name = name_tok.literal()
        if not name:
            raise ParseError(f"bad function name at {name_tok.pos}")
        if self.peek().kind is TokKind.LBRACE:
            return ast.FnDef(name, self.block())
        return ast.FnDef(name, None)

    # -- simple commands -----------------------------------------------------------

    def simple(self) -> ast.Simple:
        cmd = ast.Simple()
        # leading assignments
        while self.peek().kind is TokKind.WORD:
            assign = self._try_assignment()
            if assign is None:
                break
            cmd.assigns.append(assign)
        while True:
            tok = self.peek()
            if tok.kind is TokKind.WORD:
                word_tok = self.advance()
                cmd.argv.append(ast.Word(word_tok.fragments, word_tok.pos))
            elif tok.kind in _REDIRS:
                cmd.redirs.extend(self._redirs())
            else:
                break
        if not cmd.assigns and not cmd.argv:
            raise ParseError(f"empty command at {tok.pos}")
        return cmd

    def _try_assignment(self) -> ast.Assign | None:
        tok = self.peek()
        frags = tok.fragments
        if (len(frags) < 2 or not isinstance(frags[0], Lit)
                or frags[0].quoted or not isinstance(frags[1], Lit)
                or frags[1].quoted or frags[1].text != "="):
            return None
        name = frags[0].text
        if not name or not all(c.isalnum() or c in "_*" for c in name):
            return None
        self.advance()
        rest = frags[2:]
        if rest:
            return ast.Assign(name, [ast.Word(list(rest), tok.pos)])
        if self.peek().kind is TokKind.LPAREN:
            self.advance()
            values: list[ast.Word] = []
            while self.peek().kind is TokKind.WORD:
                value_tok = self.advance()
                values.append(ast.Word(value_tok.fragments, value_tok.pos))
            self.expect(TokKind.RPAREN)
            return ast.Assign(name, values)
        return ast.Assign(name, [])
