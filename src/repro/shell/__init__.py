"""An rc-subset shell: the substrate help's tools are written in.

"Decl is a shell script, a program for the Plan 9 shell, rc" — the
paper's applications are suites of tiny rc scripts, so reproducing
them requires an rc interpreter.  This package implements the subset
those scripts (and the profile in Figure 2) exercise:

- words with rc quoting (``'...'``), caret/adjacency concatenation,
  and glob expansion;
- list-valued variables: ``$var``, ``$#var`` (count), ``$"var``
  (flattened), ``x=(a b c)``;
- command substitution `` `{...} `` splitting output into words;
- pipelines, ``>`` ``>>`` ``<`` redirections, ``;`` ``&&`` ``||`` ``!``;
- control flow: ``if(...)``, ``if not``, ``for(x in ...)``,
  ``while(...)``, ``switch/case``, ``fn`` definitions, ``{}`` blocks;
- ``~`` pattern matching and ``eval`` as builtins;
- a simulated userland (:mod:`repro.shell.commands`): echo, cat, cp,
  grep, sed, ls, wc, bind, ... all operating on the namespace.

Everything runs in-process against a :class:`repro.fs.Namespace`;
"processes" are function calls, pipes are strings.
"""

from repro.shell.interp import Interp, ShellError
from repro.shell.lexer import LexError
from repro.shell.parser import ParseError, parse

__all__ = ["Interp", "ShellError", "parse", "ParseError", "LexError"]
