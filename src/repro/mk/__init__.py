"""The build substrate: mk, a toy toolchain, and the inverted builder.

Figure 12 ends the demo by executing ``mk`` "to compile the program
(a total of three clicks of the middle button)".  This package makes
that click work:

- :mod:`repro.mk.mkfile` — mkfile parsing: assignments, rules,
  ``%``-meta-rules with ``$stem``;
- :mod:`repro.mk.build` — the mtime-driven builder, running recipes
  through the rc interpreter;
- :mod:`repro.mk.toolchain` — ``vc``/``vl``, the simulated Plan 9
  MIPS compiler and loader the corpus mkfile invokes;
- :mod:`repro.mk.inverted` — the paper's future-work proposal: "a
  tool that, perhaps by examining the index file, sees what source
  files have been modified and builds the targets that depend on
  them" — make run in reverse.
"""

from repro.mk.build import Builder, BuildError, BuildResult, cmd_mk
from repro.mk.inverted import affected_targets, cmd_imk, modified_from_index
from repro.mk.mkfile import Mkfile, MkfileError, Rule, parse_mkfile
from repro.mk.toolchain import cmd_vc, cmd_vl

__all__ = [
    "Mkfile", "Rule", "parse_mkfile", "MkfileError",
    "Builder", "BuildResult", "BuildError", "cmd_mk",
    "affected_targets", "modified_from_index", "cmd_imk",
    "cmd_vc", "cmd_vl",
]
