"""vc and vl: the simulated Plan 9 MIPS toolchain.

Figure 12's mk window shows::

    vc -w exec.c
    vl help.v clik.v ctrl.v ... -lg -lregexp -ldmalloc

``vc -w file.c`` "compiles" to ``file.v`` and ``vl -o out objs...``
"links" — both write derived files whose contents identify their
inputs, so rebuild logic and tests can verify exactly what happened.
A source file containing the token ``SYNTAX_ERROR`` fails to compile,
which is how failure-injection tests exercise mk's error path.
"""

from __future__ import annotations

from repro.fs.vfs import FsError, basename, join
from repro.shell.interp import IO, Interp


def cmd_vc(interp: Interp, args: list[str], io: IO) -> int:
    """vc [-w] [-o out.v] file.c — compile one C source to an object."""
    out_name: str | None = None
    sources: list[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "-o" and i + 1 < len(args):
            out_name = args[i + 1]
            i += 2
            continue
        if arg.startswith("-"):
            i += 1
            continue
        sources.append(arg)
        i += 1
    if len(sources) != 1:
        io.stderr.append("usage: vc [-w] [-o out.v] file.c\n")
        return 1
    source = sources[0]
    path = interp._abspath(source)
    try:
        text = interp.ns.read(path)
    except FsError as exc:
        io.stderr.append(f"vc: {exc}\n")
        return 1
    if "SYNTAX_ERROR" in text:
        line = next(i for i, l in enumerate(text.splitlines(), 1)
                    if "SYNTAX_ERROR" in l)
        io.stderr.append(f"vc: {source}:{line}: syntax error\n")
        return 1
    if out_name is None:
        stem = basename(source)
        stem = stem[:-2] if stem.endswith(".c") else stem
        out_name = stem + ".v"
    mtime = interp.ns.mtime(path)
    interp.ns.write(interp._abspath(out_name),
                    f"object({basename(source)}@{mtime})\n")
    return 0


def cmd_vl(interp: Interp, args: list[str], io: IO) -> int:
    """vl [-o out] objects... [-llib...] — link objects into a binary."""
    out_name = "v.out"
    objects: list[str] = []
    libraries: list[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "-o" and i + 1 < len(args):
            out_name = args[i + 1]
            i += 2
            continue
        if arg.startswith("-l"):
            libraries.append(arg[2:])
            i += 1
            continue
        if arg.startswith("-"):
            i += 1
            continue
        objects.append(arg)
        i += 1
    if not objects:
        io.stderr.append("vl: no objects\n")
        return 1
    parts: list[str] = []
    for obj in objects:
        path = interp._abspath(obj)
        try:
            parts.append(interp.ns.read(path).strip())
        except FsError as exc:
            io.stderr.append(f"vl: {exc}\n")
            return 1
    binary = "binary[\n" + "".join(f"  {p}\n" for p in parts)
    binary += "".join(f"  lib({name})\n" for name in libraries) + "]\n"
    interp.ns.write(interp._abspath(out_name), binary)
    return 0
