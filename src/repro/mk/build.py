"""The builder: out-of-date analysis and recipe execution.

A target is rebuilt when it does not exist or any prerequisite
(recursively brought up to date first) has a newer logical mtime.
Recipes run through the rc interpreter with ``$target``, ``$prereq``
and ``$stem`` bound, in the mkfile's directory — which, under help,
is the window's context directory ("Running make in the appropriate
directory is too pedestrian for an environment like this", but mk
itself must still work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fs.vfs import join
from repro.mk.mkfile import Mkfile, Rule, expand, parse_mkfile
from repro.shell.interp import IO, Interp


class BuildError(Exception):
    """A recipe failed or a target is unbuildable."""


@dataclass
class BuildResult:
    """What a build did."""

    built: list[str] = field(default_factory=list)     # targets rebuilt
    commands: list[str] = field(default_factory=list)  # recipe lines run
    output: str = ""                                   # their stdout+stderr
    up_to_date: bool = False

    def log(self) -> str:
        """The transcript mk prints (Figure 12's mk window)."""
        if self.up_to_date:
            return "mk: nothing to do\n"
        return "".join(cmd + "\n" for cmd in self.commands)


class Builder:
    """Builds targets of one mkfile in one directory."""

    def __init__(self, interp: Interp, directory: str,
                 mkfile: Mkfile | None = None) -> None:
        self.interp = interp
        self.dir = directory
        if mkfile is None:
            mkfile = parse_mkfile(interp.ns.read(join(directory, "mkfile")))
        self.mkfile = mkfile

    # -- graph resolution ---------------------------------------------------

    def resolve(self, target: str) -> tuple[Rule | None, list[str], str]:
        """(rule, prereqs, stem) for *target*; rule None = source file."""
        rule = self.mkfile.explicit_rule(target)
        if rule is not None:
            prereqs = list(rule.prereqs)
            # an explicit rule without a recipe may chain to a meta-rule
            if not rule.recipe:
                meta = self.mkfile.meta_rule(target)
                if meta is not None:
                    meta_rule, stem = meta
                    prereqs += [p.replace("%", stem) for p in meta_rule.prereqs]
                    return (meta_rule, prereqs, stem)
            return (rule, prereqs, "")
        meta = self.mkfile.meta_rule(target)
        if meta is not None:
            rule, stem = meta
            return (rule, [p.replace("%", stem) for p in rule.prereqs], stem)
        return (None, [], "")

    def _mtime(self, name: str) -> int | None:
        path = join(self.dir, name)
        if not self.interp.ns.exists(path):
            return None
        return self.interp.ns.mtime(path)

    # -- building ---------------------------------------------------------------

    def build(self, target: str | None = None,
              result: BuildResult | None = None) -> BuildResult:
        """Bring *target* (default: the mkfile's first) up to date."""
        if result is None:
            result = BuildResult()
        if target is None:
            target = self.mkfile.default_target()
            if target is None:
                raise BuildError("mkfile has no targets")
        self._build(target, result, set())
        result.up_to_date = not result.built
        return result

    def _build(self, target: str, result: BuildResult,
               in_progress: set[str]) -> None:
        if target in in_progress:
            raise BuildError(f"dependency cycle through '{target}'")
        rule, prereqs, stem = self.resolve(target)
        if rule is None:
            if self._mtime(target) is None:
                raise BuildError(f"don't know how to make '{target}'")
            return
        in_progress.add(target)
        for prereq in prereqs:
            self._build(prereq, result, in_progress)
        in_progress.discard(target)
        if target in result.built:
            return
        target_time = self._mtime(target)
        if target_time is not None:
            newest = max((self._mtime(p) or 0 for p in prereqs), default=0)
            if newest <= target_time:
                return
        self._run_recipe(rule, target, prereqs, stem, result)
        result.built.append(target)

    def _run_recipe(self, rule: Rule, target: str, prereqs: list[str],
                    stem: str, result: BuildResult) -> None:
        shell = self.interp.subshell()
        shell.cwd = self.dir
        shell.set("target", [target])
        shell.set("prereq", prereqs)
        shell.set("stem", [stem])
        for line in rule.recipe:
            command = expand(line, self.mkfile.variables)
            # mk's own $stem/$target expansion happens in the shell
            result.commands.append(_pretty(command, shell))
            run = shell.run(command)
            result.output += run.stdout + run.stderr
            if run.status != 0:
                raise BuildError(
                    f"mk: '{_pretty(command, shell)}' failed: "
                    f"{run.stderr.strip() or run.status}")


def _pretty(command: str, shell: Interp) -> str:
    """The recipe line as mk echoes it (with mk variables substituted)."""
    out = command
    for name in ("stem", "target"):
        out = out.replace(f"${name}", " ".join(shell.get(name)))
    return out


def cmd_mk(interp: Interp, args: list[str], io: IO) -> int:
    """The mk shell command: ``mk [-f mkfile] [targets...]``."""
    mkfile_name = "mkfile"
    targets: list[str] = []
    i = 0
    while i < len(args):
        if args[i] == "-f" and i + 1 < len(args):
            mkfile_name = args[i + 1]
            i += 2
            continue
        targets.append(args[i])
        i += 1
    path = join(interp.cwd, mkfile_name)
    if not interp.ns.exists(path):
        io.stderr.append(f"mk: no {mkfile_name} in {interp.cwd}\n")
        return 1
    try:
        builder = Builder(interp, interp.cwd,
                          parse_mkfile(interp.ns.read(path)))
        result = BuildResult()
        for target in targets or [None]:
            builder.build(target, result)
        result.up_to_date = not result.built
    except BuildError as exc:
        io.stderr.append(f"{exc}\n")
        return 1
    except Exception as exc:  # MkfileError and friends
        io.stderr.append(f"mk: {exc}\n")
        return 1
    io.stdout.append(result.log())
    io.stdout.append(result.output)
    return 0
