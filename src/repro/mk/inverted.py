"""The inverted builder: from modified sources to affected targets.

From the paper's Discussion: "Make works by being told what target to
build and looking at which files have been changed ...  What's needed
for help is almost the opposite: a tool that, perhaps by examining
the index file, sees what source files have been modified and builds
the targets that depend on them.  Such a program may be a simple
variation of make — the information in the makefile would be the
same."

That is exactly what this module is: the same mkfile, traversed from
leaves to roots.  Two front ends feed it:

- :func:`modified_from_index` reads ``/mnt/help/index`` and treats
  every window whose tag shows ``Put!`` (modified, unwritten) as a
  changed source — the paper's suggestion verbatim;
- explicit source lists (or "changed since logical time T").

``cmd_imk`` is the shell command (``imk [sources...]``).
"""

from __future__ import annotations

from repro.fs.vfs import basename, dirname, join
from repro.mk.build import Builder, BuildError, BuildResult
from repro.mk.mkfile import parse_mkfile
from repro.shell.interp import IO, Interp


def dependency_closure(builder: Builder, target: str,
                       seen: set[str] | None = None) -> set[str]:
    """Every file *target* transitively depends on (excluding itself)."""
    if seen is None:
        seen = set()
    _, prereqs, _ = builder.resolve(target)
    out: set[str] = set()
    for prereq in prereqs:
        if prereq in seen:
            continue
        seen.add(prereq)
        out.add(prereq)
        out |= dependency_closure(builder, prereq, seen)
    return out


def affected_targets(builder: Builder, sources: list[str]) -> list[str]:
    """The explicit targets whose closure touches any of *sources*.

    Order follows the mkfile, so dependencies build before dependents.
    """
    changed = set(sources)
    out: list[str] = []
    for target in builder.mkfile.all_targets():
        closure = dependency_closure(builder, target)
        if closure & changed or target in changed:
            out.append(target)
    return out


def modified_from_index(index_text: str) -> list[str]:
    """Source files named by dirty windows in a ``/mnt/help/index``.

    Each index line is ``number<TAB>first-line-of-tag``; a tag whose
    words include ``Put!`` belongs to a modified window, and its first
    word is the file.
    """
    return [file for _, file in dirty_windows_from_index(index_text)]


def dirty_windows_from_index(index_text: str) -> list[tuple[int, str]]:
    """(window number, file name) for each dirty window in the index."""
    out: list[tuple[int, str]] = []
    for line in index_text.splitlines():
        number, _, tag = line.partition("\t")
        words = tag.split()
        if (number.isdigit() and len(words) >= 2 and "Put!" in words[1:]
                and not words[0].endswith("/")):
            out.append((int(number), words[0]))
    return out


def modified_since(interp: Interp, directory: str, tick: int) -> list[str]:
    """Files in *directory* whose logical mtime is newer than *tick*."""
    out = []
    for name in interp.ns.listdir(directory):
        path = join(directory, name)
        if not interp.ns.isdir(path) and interp.ns.mtime(path) > tick:
            out.append(name)
    return sorted(out)


def invert_and_build(interp: Interp, directory: str,
                     sources: list[str]) -> BuildResult:
    """Build whatever depends on *sources* (names relative to *directory*)."""
    mkfile = parse_mkfile(interp.ns.read(join(directory, "mkfile")))
    builder = Builder(interp, directory, mkfile)
    result = BuildResult()
    targets = affected_targets(builder, sources)
    for target in targets:
        builder.build(target, result)
    result.up_to_date = not result.built
    return result


def cmd_imk(interp: Interp, args: list[str], io: IO) -> int:
    """imk [sources...] — inverted mk.

    With no arguments, consults ``/mnt/help/index`` for dirty windows
    whose files live in the working directory; with arguments, those
    are the modified sources.
    """
    directory = interp.cwd
    if args:
        sources = [basename(interp._abspath(a)) if a.startswith("/") else a
                   for a in args]
    else:
        if not interp.ns.exists("/mnt/help/index"):
            io.stderr.append("imk: no sources and no /mnt/help/index\n")
            return 1
        index = interp.ns.read("/mnt/help/index")
        sources = []
        for number, path in dirty_windows_from_index(index):
            full = interp._abspath(path)
            if dirname(full) != directory:
                continue
            # "tighten the binding between the compilation process and
            # the editing of the source code": write the dirty window
            # out through /mnt/help, then build what depends on it.
            # A window that vanished since the index was read is
            # skipped — its file still counts as modified.
            if interp.ns.exists(f"/mnt/help/{number}/body"):
                body = interp.ns.read(f"/mnt/help/{number}/body")
                interp.ns.write(full, body)
                interp.ns.append(f"/mnt/help/{number}/ctl", "clean\n")
            sources.append(basename(full))
        if not sources:
            io.stdout.append("imk: nothing modified\n")
            return 0
    try:
        result = invert_and_build(interp, directory, sources)
    except BuildError as exc:
        io.stderr.append(f"{exc}\n")
        return 1
    except Exception as exc:
        io.stderr.append(f"imk: {exc}\n")
        return 1
    io.stdout.append(result.log())
    io.stdout.append(result.output)
    return 0
