"""mkfile parsing.

The subset of Plan 9 mk the corpus and examples use::

    OBJS=help.v ctrl.v exec.v

    help: $OBJS
    \tvl -o help $OBJS

    %.v: %.c dat.h
    \tvc -w $stem.c

Assignments hold word lists; ``$NAME`` expands in targets, prereqs
and recipes; a ``%`` in a rule head makes it a meta-rule, with
``$stem`` bound in its recipe at instantiation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class MkfileError(Exception):
    """Malformed mkfile."""


@dataclass
class Rule:
    """One rule: targets, prerequisites, recipe lines (tab-stripped)."""

    targets: list[str]
    prereqs: list[str]
    recipe: list[str] = field(default_factory=list)

    @property
    def is_meta(self) -> bool:
        return any("%" in t for t in self.targets)

    def match(self, name: str) -> str | None:
        """The stem if *name* matches a meta-target pattern, else None."""
        for target in self.targets:
            if "%" not in target:
                if target == name:
                    return ""
                continue
            prefix, _, suffix = target.partition("%")
            if (name.startswith(prefix) and name.endswith(suffix)
                    and len(name) > len(prefix) + len(suffix) - 1):
                return name[len(prefix):len(name) - len(suffix)]
        return None


@dataclass
class Mkfile:
    """A parsed mkfile: variables plus rules in order."""

    variables: dict[str, list[str]] = field(default_factory=dict)
    rules: list[Rule] = field(default_factory=list)

    def explicit_rule(self, target: str) -> Rule | None:
        """The non-meta rule naming *target*, if any."""
        for rule in self.rules:
            if not rule.is_meta and target in rule.targets:
                return rule
        return None

    def meta_rule(self, target: str) -> tuple[Rule, str] | None:
        """(rule, stem) for the first meta-rule matching *target*."""
        for rule in self.rules:
            if rule.is_meta:
                stem = rule.match(target)
                if stem is not None:
                    return (rule, stem)
        return None

    def default_target(self) -> str | None:
        """The first explicit target — what bare ``mk`` builds."""
        for rule in self.rules:
            if not rule.is_meta and rule.targets:
                return rule.targets[0]
        return None

    def all_targets(self) -> list[str]:
        """Every explicit target, in order."""
        out: list[str] = []
        for rule in self.rules:
            if not rule.is_meta:
                out.extend(t for t in rule.targets if t not in out)
        return out


_VAR = re.compile(r"\$(?:\{(\w+)\}|(\w+))")


def expand(text: str, variables: dict[str, list[str]]) -> str:
    """Expand ``$NAME``/``${NAME}`` against *variables*.

    Unknown references pass through untouched: recipes are rc, and
    ``$stem``/``$target``/``$prereq`` are bound by the shell at
    execution time, not here.
    """
    def sub(match: re.Match[str]) -> str:
        name = match.group(1) or match.group(2)
        if name not in variables:
            return match.group(0)
        return " ".join(variables[name])
    return _VAR.sub(sub, text)


def parse_mkfile(text: str) -> Mkfile:
    """Parse mkfile *text*."""
    mkfile = Mkfile()
    current: Rule | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        if raw.startswith("\t"):
            if current is None:
                raise MkfileError(f"line {line_no}: recipe outside a rule")
            current.recipe.append(raw[1:])
            continue
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            current = None
            continue
        assign = re.match(r"^(\w+)\s*=\s*(.*)$", line)
        if assign is not None:
            value = expand(assign.group(2), mkfile.variables)
            mkfile.variables[assign.group(1)] = value.split()
            current = None
            continue
        if ":" in line:
            head, _, tail = line.partition(":")
            targets = expand(head, mkfile.variables).split()
            prereqs = expand(tail, mkfile.variables).split()
            if not targets:
                raise MkfileError(f"line {line_no}: rule with no targets")
            current = Rule(targets, prereqs)
            mkfile.rules.append(current)
            continue
        raise MkfileError(f"line {line_no}: cannot parse {line!r}")
    return mkfile
