"""The ctl message language: how programs edit windows.

The paper says writes to ``ctl`` "effect changes such as insertion
and deletion of text in contents of the window" without spelling the
grammar out; this module defines the reproduction's grammar, one
message per line:

================================  ============================================
``name <text>``                   set the window's name (tag rebuilt with the
                                  conventional command words)
``tag <text>``                    replace the whole tag line
``insert <pos> <text>``           insert text at a body offset
``delete <q0> <q1>``              delete a body range
``replace <q0> <q1> <text>``      replace a body range
``select <q0> <q1>``              set the body selection (and make current)
``show <line>``                   scroll so the 1-based line is first, select it
``scroll <lines>``                scroll by display rows (negative = up)
``clean`` / ``dirty``             clear or set the modified flag
``close``                         delete the window
================================  ============================================

Text arguments use ``\\n``, ``\\t`` and ``\\\\`` escapes so multi-line
insertions fit on one message line.

Reading ``ctl`` yields one status line::

    <id> <taglen> <bodylen> <dirty> <q0> <q1>
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.window import Window

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.help import Help


class CtlError(Exception):
    """A malformed or inapplicable ctl message."""


def unescape(s: str) -> str:
    """Decode the ctl text escapes."""
    out: list[str] = []
    i = 0
    while i < len(s):
        ch = s[i]
        if ch == "\\" and i + 1 < len(s):
            nxt = s[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt == "t":
                out.append("\t")
            elif nxt == "\\":
                out.append("\\")
            else:
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def escape(s: str) -> str:
    """Encode text for a one-line ctl message."""
    return s.replace("\\", "\\\\").replace("\n", "\\n").replace("\t", "\\t")


def ctl_status(window: Window) -> str:
    """The line a read of ``ctl`` returns."""
    sel = window.body_sel
    return (f"{window.id} {len(window.tag)} {len(window.body)} "
            f"{int(window.dirty)} {sel.q0} {sel.q1}\n")


def _clamped_range(args: list[str], limit: int, message: str) -> tuple[int, int]:
    """Two offsets, normalized (lo <= hi) and clamped into the body."""
    q0, q1 = _int_args(args, 2, message)
    lo = max(0, min(q0, q1, limit))
    hi = max(0, min(max(q0, q1), limit))
    return lo, hi


def _int_args(args: list[str], n: int, message: str) -> list[int]:
    if len(args) < n:
        raise CtlError(f"ctl: {message}: missing arguments")
    try:
        return [int(a) for a in args[:n]]
    except ValueError as exc:
        raise CtlError(f"ctl: {message}: bad number") from exc


def apply_ctl(help_app: "Help", window: Window, line: str) -> None:
    """Apply one ctl message *line* to *window*.

    Raises :class:`CtlError` for malformed messages; unknown verbs are
    errors too (silently ignoring commands would hide tool bugs).
    """
    line = line.rstrip("\n")
    if not line.strip():
        return
    verb, _, rest = line.partition(" ")
    body = window.body

    if verb == "name":
        window.set_name(rest.strip())
    elif verb == "tag":
        window.tag.set_string(unescape(rest))
        window.tag_sel.set(0, 0)
    elif verb == "insert":
        pos_str, _, text = rest.partition(" ")
        (pos,) = _int_args([pos_str], 1, "insert")
        body.insert(min(max(pos, 0), len(body)), unescape(text))
    elif verb == "delete":
        q0, q1 = _clamped_range(rest.split(), len(body), "delete")
        body.delete(q0, q1)
    elif verb == "replace":
        parts = rest.split(" ", 2)
        q0, q1 = _clamped_range(parts[:2], len(body), "replace")
        text = unescape(parts[2]) if len(parts) > 2 else ""
        body.replace(q0, q1, text)
    elif verb == "select":
        q0, q1 = _int_args(rest.split(), 2, "select")
        help_app.select(window, q0, q1)
    elif verb == "show":
        (line_no,) = _int_args(rest.split(), 1, "show")
        window.show_line(max(1, line_no))
    elif verb == "scroll":
        (rows,) = _int_args(rest.split(), 1, "scroll")
        help_app.scroll(window, rows)
    elif verb == "clean":
        window.mark_clean()
    elif verb == "dirty":
        window.mark_dirty()
    elif verb == "close":
        help_app.close_window(window)
    else:
        raise CtlError(f"ctl: unknown message {verb!r}")
