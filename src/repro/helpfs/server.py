"""The /mnt/help tree: numbered window directories served on demand.

Mount with :meth:`HelpFS.mount` and every process sharing the
namespace can script the user interface::

    ns.read('/mnt/help/7/body')                 # read a window
    with ns.open('/mnt/help/7/ctl', 'w') as f:  # edit it
        f.write('delete 10 20\\n')
    with ns.open('/mnt/help/new/ctl') as f:     # make a window
        wid = int(f.read())

Errors raised by bad ctl messages surface in the Errors window, since
the writing process has no other channel to the user.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.window import Window
from repro.fs.errors import FsError, Invalid
from repro.fs.server import SynthDir, SynthFile, SynthSession
from repro.fs.vfs import Node
from repro.helpfs.ctl import CtlError, apply_ctl, ctl_status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.help import Help
    from repro.fs.namespace import Namespace


class HelpFS:
    """Serves a :class:`~repro.core.help.Help` instance as a file tree."""

    def __init__(self, help_app: "Help", context=None) -> None:
        self.help = help_app
        # a repro.session.SessionContext: which session this server
        # belongs to (defaults to its Help's)
        self.context = context if context is not None \
            else getattr(help_app, "context", None)
        self.root = SynthDir("help",
                             list_fn=self._list_root,
                             lookup_fn=self._lookup_root)

    def mount(self, ns: "Namespace", at: str = "/mnt/help") -> None:
        """Graft the server into *ns* at *at* (created if missing)."""
        if not ns.exists(at):
            ns.mkdir(at, parents=True)
        ns.mount(self.root, at)

    def _trace(self, kind: str, *fields) -> None:
        """Tee one server-side mutation into the session journal.

        These are derived records: the commands that caused them are
        replayed, the server regenerates them, and the journal's
        divergence check compares the two streams.
        """
        recorder = self.help.journal
        if recorder is not None:
            recorder.trace(kind, fields)

    # -- root directory -------------------------------------------------------

    def _list_root(self) -> list[Node]:
        nodes: list[Node] = [self._index_file(), self._new_dir()]
        for wid in sorted(self.help.windows):
            nodes.append(self._window_dir(self.help.windows[wid]))
        return nodes

    def _lookup_root(self, name: str) -> Node | None:
        if name == "index":
            return self._index_file()
        if name == "new":
            return self._new_dir()
        if name.isdigit():
            window = self.help.windows.get(int(name))
            if window is not None:
                return self._window_dir(window)
        return None

    # -- index ----------------------------------------------------------------

    def _index_file(self) -> SynthFile:
        return SynthFile("index", read_fn=self._index_text)

    def _index_text(self) -> str:
        """"Each line of this file is a window number, a tab, and the
        first line of the tag."""
        lines = []
        for wid in sorted(self.help.windows):
            window = self.help.windows[wid]
            first = window.tag.string().split("\n", 1)[0]
            lines.append(f"{wid}\t{first}\n")
        return "".join(lines)

    # -- per-window directories -----------------------------------------------

    def _window_dir(self, window: Window) -> SynthDir:
        files = [
            SynthFile("tag",
                      read_fn=lambda w=window: w.tag.string() + "\n",
                      write_fn=lambda line, w=window: self._set_tag(w, line)),
            SynthFile("body",
                      open_fn=lambda mode, w=window: self._body_session(w, mode)),
            SynthFile("bodyapp",
                      write_fn=lambda s, w=window: self._bodyapp(w, s)),
            SynthFile("ctl",
                      open_fn=lambda mode, w=window: self._ctl_session(w, mode)),
        ]
        return SynthDir(str(window.id), list_fn=lambda fs=files: list(fs))

    def _set_tag(self, window: Window, line: str) -> None:
        """Writing the tag file replaces the tag line."""
        self._trace("fs-tag", window.id, line.rstrip("\n"))
        window.tag.set_string(line.rstrip("\n"))
        window.tag_sel.set(0, 0)

    def _body_session(self, window: Window, mode: str) -> SynthSession:
        name = f"{window.id}/body"
        if mode == "r":
            return SynthSession("r", read_fn=lambda: window.body.string(),
                                name=name)
        if mode == "a":
            return _RawWriteSession(
                mode, lambda s, w=window: self._body_write(w, "a", s),
                name=name)
        if mode in ("w", "rw"):
            window.replace_body("")
            return _RawWriteSession(
                "w", lambda s, w=window: self._body_write(w, "w", s),
                name=name)
        raise Invalid(f"bad open mode '{mode}'", path=name, op="open")

    def _body_write(self, window: Window, mode: str, s: str) -> None:
        import zlib
        self._trace("fs-body", window.id, mode, len(s),
                    f"{zlib.crc32(s.encode()) & 0xffffffff:08x}")
        window.append(s)

    def _ctl_session(self, window: Window, mode: str) -> SynthSession:
        name = f"{window.id}/ctl"
        if mode == "r":
            return SynthSession("r", read_fn=lambda: ctl_status(window),
                                name=name)
        return SynthSession(mode,
                            read_fn=lambda: ctl_status(window),
                            write_fn=lambda line: self._apply(window, line),
                            name=name)

    def _bodyapp(self, window: Window, s: str) -> None:
        import zlib
        self._trace("fs-bodyapp", window.id, len(s),
                    f"{zlib.crc32(s.encode()) & 0xffffffff:08x}")
        window.append(s)

    def _apply(self, window: Window, line: str) -> None:
        self._trace("fs-ctl", window.id, line.rstrip("\n"))
        try:
            apply_ctl(self.help, window, line)
        except CtlError as exc:
            self.help.post_error(f"help: {exc}\n")
        except FsError as exc:
            # A ctl message that touched the filesystem and failed:
            # the writer has no other channel to the user.
            self.help.post_error(f"help: {exc.diagnostic()}\n")

    # -- window creation ------------------------------------------------------

    def _new_dir(self) -> SynthDir:
        ctl = SynthFile("ctl", open_fn=self._new_session)
        return SynthDir("new", list_fn=lambda c=ctl: [c])

    def _new_session(self, mode: str) -> SynthSession:
        """Opening ``new/ctl`` creates a window near the selection.

        "a process just opens /mnt/help/new/ctl, which places the new
        window automatically on the screen near the current selected
        text, and may then read from that file the name of the window
        created."  Reading yields the window number; writes are ctl
        messages for the fresh window.
        """
        window = self.help.new_window("")
        return SynthSession(mode,
                            read_fn=lambda: f"{window.id}\n",
                            write_fn=lambda line: self._apply(window, line),
                            name=f"{window.id}/ctl")


class _RawWriteSession(SynthSession):
    """A write session that forwards chunks unbuffered (body writes)."""

    def __init__(self, mode: str, sink, name: str = "") -> None:
        super().__init__(mode, write_fn=sink, name=name)

    def write(self, s: str) -> int:
        self._check("w")
        if self._write_fn is not None:
            self._write_fn(s)
        return len(s)
