"""The interface seen by programs: ``help`` as a file server.

"As in 8 1/2 ... help provides its client processes access to its
structure by presenting a file service ... Each help window is
represented by a set of files stored in numbered directories."

Mounted (conventionally at ``/mnt/help``), the tree is::

    /mnt/help/index      window number, tab, first line of tag — per line
    /mnt/help/new/ctl    open to create a window; read back its number
    /mnt/help/<n>/tag     the window's tag line
    /mnt/help/<n>/body    the window's body
    /mnt/help/<n>/bodyapp append-only view of the body
    /mnt/help/<n>/ctl     status on read; commands on write

so that ``cp /mnt/help/7/body file`` and
``grep pattern /mnt/help/7/body`` work exactly as the paper shows.
"""

from repro.helpfs.ctl import CtlError, apply_ctl, ctl_status
from repro.helpfs.server import HelpFS

__all__ = ["HelpFS", "apply_ctl", "ctl_status", "CtlError"]
