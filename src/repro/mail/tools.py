"""The ``mbox`` shell command and the Figure-5 sample mailbox.

The rc scripts in ``/help/mail`` shell out to this command::

    mbox headers            # numbered header lines
    mbox show 2             # full text of message 2
    mbox delete 2           # remove message 2
    mbox send rob 'text'    # deliver a message
    mbox path               # where the mailbox lives

The mailbox path defaults to ``/mail/box/$user/mbox`` (user from the
shell's ``$user``, default ``rob``).
"""

from __future__ import annotations

from repro.fs.namespace import Namespace
from repro.mail.mbox import Mailbox, Message
from repro.shell.interp import IO, Interp

# Senders and dates exactly as the Figure 5 window lists them.
_FIGURE5 = [
    ("chk@alias.com", "Tue Apr 16 19:30 EDT 1991",
     "Subject: graphics question\n\nHow do I draw into an offscreen bitmap?\n"),
    ("sean", "Tue Apr 16 19:26:14 EDT 1991",
     "i tried your new help and got this:\n"
     "help 176153: user TLB miss (load or fetch) badvaddr=0x0\n"
     "help 176153: status=0xfb0c pc=0x18df4 sp=0x3f4e8\n"),
    ("attunix!rrg", "Tue Apr 16 19:03 EDT 1991",
     "Subject: UNIX in song & verse\n\nRob,\n\n"
     "The UKUUG are collecting old-time verses about UNIX before they\n"
     "disappear from the minds of those who remember them.\n"),
    ("knight%MRCO.CARLETON.CA@mitvma.mit.edu", "Tue Apr 16 19:01 EDT 1991",
     "Subject: plan 9 paper\n\nCould you send me a copy of the paper?\n"),
    ("deutsch%PARCPLACE.COM@mitvma.mit.edu", "Tue Apr 16 18:54 EDT 1991",
     "Subject: window systems\n\nInteresting approach.\n"),
    ("howard", "Tue Apr 16 15:02 EDT 1991",
     "lunch tomorrow?\n"),
    ("deutsch%PARCPLACE.COM@mitvma.mit.edu", "Tue Apr 16 12:52 EDT 1991",
     "Subject: re: window systems\n\nFollowing up on my earlier note.\n"),
]


def sample_mailbox(ns: Namespace, user: str = "rob") -> Mailbox:
    """Install the seven-message mailbox the example session reads."""
    box = Mailbox(ns, f"/mail/box/{user}/mbox")
    ns.mkdir(f"/mail/box/{user}", parents=True)
    for sender, date, body in _FIGURE5:
        box.append(Message(sender, date, body))
    return box


def _box_for(interp: Interp) -> Mailbox:
    user = (interp.get("user") or ["rob"])[0]
    return Mailbox(interp.ns, f"/mail/box/{user}/mbox")


def cmd_mbox(interp: Interp, args: list[str], io: IO) -> int:
    """The mbox command: headers | show N | delete N | send who text | path."""
    if not args:
        io.stderr.append("usage: mbox headers|show|delete|send|path ...\n")
        return 1
    box = _box_for(interp)
    verb, rest = args[0], args[1:]
    if verb == "path":
        io.stdout.append(box.path + "\n")
        return 0
    if verb == "headers":
        io.stdout.append(box.headers())
        return 0
    if verb in ("show", "delete"):
        if not rest or not rest[0].isdigit():
            io.stderr.append(f"mbox {verb}: need a message number\n")
            return 1
        number = int(rest[0])
        try:
            if verb == "show":
                io.stdout.append(box.get(number).render())
            else:
                box.delete(number)
        except IndexError:
            io.stderr.append(f"mbox: no message {number}\n")
            return 1
        return 0
    if verb == "from":
        if not rest or not rest[0].isdigit():
            io.stderr.append("mbox from: need a message number\n")
            return 1
        try:
            io.stdout.append(box.get(int(rest[0])).sender + "\n")
        except IndexError:
            io.stderr.append(f"mbox: no message {rest[0]}\n")
            return 1
        return 0
    if verb == "sendstdin":
        if not rest:
            io.stderr.append("usage: mbox sendstdin recipient\n")
            return 1
        recipient = rest[0]
        target = Mailbox(interp.ns, f"/mail/box/{recipient}/mbox")
        interp.ns.mkdir(f"/mail/box/{recipient}", parents=True)
        sender = (interp.get("user") or ["rob"])[0]
        from repro.shell.commands import EPOCH
        target.append(Message(sender, EPOCH, io.stdin))
        return 0
    if verb == "send":
        if len(rest) < 2:
            io.stderr.append("usage: mbox send recipient text...\n")
            return 1
        recipient, text = rest[0], " ".join(rest[1:])
        target = Mailbox(interp.ns, f"/mail/box/{recipient}/mbox")
        interp.ns.mkdir(f"/mail/box/{recipient}", parents=True)
        sender = (interp.get("user") or ["rob"])[0]
        from repro.shell.commands import EPOCH
        target.append(Message(sender, EPOCH, text + "\n"))
        return 0
    io.stderr.append(f"mbox: unknown verb {verb!r}\n")
    return 1
