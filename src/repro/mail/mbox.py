"""mbox parsing and formatting.

The format is the classic one: each message begins with a separator
line ``From <sender> <date>``; body lines that begin with ``From``
are quoted with ``>`` on write and unquoted on read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.namespace import Namespace


@dataclass
class Message:
    """One mail message."""

    sender: str
    date: str
    body: str

    def header_line(self) -> str:
        """The line ``headers`` shows for this message."""
        return f"{self.sender} {self.date}"

    def render(self) -> str:
        """The full text ``messages`` shows (Figure 6)."""
        return f"From {self.sender} {self.date}\n{self.body}"


class Mailbox:
    """A mailbox stored at a namespace path."""

    def __init__(self, ns: Namespace, path: str = "/mail/box/rob/mbox") -> None:
        self.ns = ns
        self.path = path

    # -- parsing ------------------------------------------------------------

    def messages(self) -> list[Message]:
        """Parse the mailbox (missing file = empty box)."""
        if not self.ns.exists(self.path):
            return []
        return parse_mbox(self.ns.read(self.path))

    # -- mutation -----------------------------------------------------------

    def _store(self, messages: list[Message]) -> None:
        self.ns.write(self.path, format_mbox(messages))

    def append(self, message: Message) -> None:
        """Deliver a message to the end of the box."""
        messages = self.messages()
        messages.append(message)
        self._store(messages)

    def delete(self, number: int) -> Message:
        """Remove 1-based message *number*, returning it."""
        messages = self.messages()
        if not 1 <= number <= len(messages):
            raise IndexError(f"no message {number}")
        removed = messages.pop(number - 1)
        self._store(messages)
        return removed

    def get(self, number: int) -> Message:
        """1-based message *number*."""
        messages = self.messages()
        if not 1 <= number <= len(messages):
            raise IndexError(f"no message {number}")
        return messages[number - 1]

    def headers(self) -> str:
        """The numbered header listing (Figure 5's window body)."""
        return "".join(f"{i} {m.header_line()}\n"
                       for i, m in enumerate(self.messages(), start=1))


def parse_mbox(text: str) -> list[Message]:
    """Split mbox *text* into messages."""
    messages: list[Message] = []
    current: list[str] | None = None
    sender = date = ""
    for line in text.splitlines():
        if line.startswith("From ") and " " in line[5:]:
            if current is not None:
                messages.append(Message(sender, date, _join(current)))
            rest = line[5:]
            sender, _, date = rest.partition(" ")
            current = []
            continue
        if current is not None:
            if line.startswith(">From"):
                line = line[1:]
            current.append(line)
    if current is not None:
        messages.append(Message(sender, date, _join(current)))
    return messages


def _join(lines: list[str]) -> str:
    # drop the conventional blank line before the next separator
    while lines and lines[-1] == "":
        lines.pop()
    return "".join(line + "\n" for line in lines)


def format_mbox(messages: list[Message]) -> str:
    """Render messages back to mbox text."""
    out: list[str] = []
    for message in messages:
        out.append(f"From {message.sender} {message.date}\n")
        for line in message.body.splitlines():
            if line.startswith("From"):
                line = ">" + line
            out.append(line + "\n")
        out.append("\n")
    return "".join(out)
