"""The mail substrate: mbox storage and the mail tool's operations.

"Sean Dorward wrote the mail tools" — ``/help/mail/stf`` lists
``headers messages delete reread send``.  This package provides the
mailbox those scripts operate on:

- :mod:`repro.mail.mbox` — classic ``From ``-separated mailbox
  parsing and formatting over the namespace;
- :mod:`repro.mail.tools` — the ``mbox`` shell command the rc scripts
  call, plus :func:`repro.mail.tools.sample_mailbox`, which rebuilds
  the seven-message mailbox of Figure 5 (including Sean's crash
  report).
"""

from repro.mail.mbox import Mailbox, Message
from repro.mail.tools import cmd_mbox, sample_mailbox

__all__ = ["Mailbox", "Message", "cmd_mbox", "sample_mailbox"]
