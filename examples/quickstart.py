"""Quickstart: boot help, open a file, edit it with the mouse.

Run:  python examples/quickstart.py

This walks the public API end to end: build the world, open windows,
select with the left button, execute with the middle button, and
render the screen as the paper's figures render it.
"""

from repro import build_system, render_screen
from repro.core.window import Subwindow


def main() -> None:
    # One call builds the machine: namespace, tools, mailbox, a broken
    # process to debug, and a booted two-column help screen (Figure 4).
    system = build_system(width=120, height=40)
    help_app = system.help

    print("=== the boot screen (Figure 4) ===")
    print(render_screen(help_app))
    print()

    # Open a file by path.  The window lands where the placement
    # heuristic puts it; the tag shows the conventional command words.
    window = help_app.open_path("/usr/rob/lib/profile")
    print("=== tag of the new window ===")
    print(window.tag.string())
    print()

    # Select the word "terminal" and replace it by typing — typed text
    # replaces the selection in the subwindow under the mouse.
    start, end = window.body.find("terminal")
    help_app.select(window, start, end)
    column = help_app.screen.column_of(window)
    rect = column.win_rect(window)
    help_app.mouse_move(column.body_x0, rect.y0 + 1)
    help_app.type_text("gateway")
    assert "gateway" in window.body.string()
    print("=== after editing, Put! appears in the tag ===")
    print(window.tag.string())
    print()

    # Execute Put! in the window's own tag: the file is written back.
    help_app.execute_text(window, "Put!", Subwindow.TAG)
    assert "gateway" in system.ns.read("/usr/rob/lib/profile")
    print("profile saved; tag is clean again:")
    print(window.tag.string())
    print()

    # Everything help shows is also a file: read the window back
    # through /mnt/help, like any shell script could.
    body = system.ns.read(f"/mnt/help/{window.id}/body")
    assert body == window.body.string()
    print(f"window {window.id} is /mnt/help/{window.id}/body "
          f"({len(body)} characters)")

    # And the session counts what you did.
    stats = help_app.stats
    print(f"\nsession stats: {stats.button_presses} button presses, "
          f"{stats.keystrokes} keystrokes")


if __name__ == "__main__":
    main()
