"""A tour of the implemented extensions — the paper's wish list.

Run:  python examples/extensions_tour.py

The Discussion section of the paper lists what the rewrite should
gain; this example exercises each item as built here: undo, multiple
windows per file (Clone!), shell windows, the inverted builder, the
closed-loop src tool, a browser for a second language (rc), and the
CPU-server arrangement.
"""

from repro import build_system
from repro.core.window import Subwindow
from repro.tools.corpus import SRC_DIR


def banner(title):
    print()
    print("--", title, "-" * max(1, 60 - len(title)))


def main() -> None:
    system = build_system(width=140, height=50, extra_tools=True)
    h = system.help

    banner("undo/redo (builtins Undo and Redo)")
    w = h.open_path("/usr/rob/lib/profile")
    h.select(w, 0, 20)
    h.execute_text(w, "Cut")
    print("after Cut:   ", repr(w.body.string()[:30]))
    h.execute_text(w, "Undo")
    print("after Undo:  ", repr(w.body.string()[:30]))

    banner("multiple windows per file (Clone!)")
    h.execute_text(w, "Clone!", Subwindow.TAG)
    twins = [x for x in h.windows.values() if x.name() == w.name()]
    print(f"{len(twins)} windows on {w.name()}; scroll one to line 5:")
    twins[1].show_line(5)
    print("  clone org lines:", [t.body.line_of(t.org) for t in twins])

    banner("a traditional shell window (Shell)")
    h.point_at(w, 0)
    h.execute_text(w, "Shell")
    shell_w = h.window_by_name("/usr/rob/lib/-rc")
    h.current = (shell_w, Subwindow.BODY)
    h.mouse_move(-1, -1)
    h.type_text("wc -l profile\n")
    print(shell_w.body.string())

    banner("the inverted builder (imk)")
    sh = system.shell(SRC_DIR)
    sh.run("mk")
    exec_w = h.open_path(f"{SRC_DIR}/exec.c")
    exec_w.body.insert(0, "/* tweak */\n")
    exec_w.mark_dirty()
    result = sh.run("imk")
    print(result.stdout.strip())
    print("(imk saw the dirty window in /mnt/help/index, wrote it out,")
    print(" and rebuilt only what depends on exec.c)")

    banner("closed-loop declaration lookup (src)")
    exec_w = h.open_path(f"{SRC_DIR}/exec.c", line=252)
    start = exec_w.body.pos_of_line(252)
    h.point_at(exec_w, exec_w.body.string().index("errs(n)", start) + 5)
    h.execute_text(h.window_by_name("/help/cbr/stf"), "src")
    dat_w = h.window_by_name(f"{SRC_DIR}/dat.h")
    print("src jumped straight to:",
          dat_w.body.slice(dat_w.body_sel.q0, dat_w.body_sel.q1),
          f"(dat.h line {dat_w.body.line_of(dat_w.org)})")

    banner("a browser for a second language: rc")
    system.ns.mkdir("/scripts", parents=True)
    system.ns.write("/scripts/lib.rc",
                    "fn deploy { echo shipping $1 }\nstage=beta\n")
    system.ns.write("/scripts/run.rc",
                    "deploy $stage\ndeploy production\n")
    out = system.shell("/scripts").run("help-ruses -ideploy lib.rc run.rc")
    print("references to fn deploy:")
    print(out.stdout)

    banner("applications on the CPU server (build_system(remote=True))")
    remote_system = build_system(remote=True)
    rh = remote_system.help
    rh.execute_text(rh.window_by_name("/help/mail/stf"), "headers")
    mbox = rh.window_by_name("/mail/box/rob/mbox")
    print("headers ran on the CPU server; the window still filled:")
    print(mbox.body.string().splitlines()[1])


if __name__ == "__main__":
    main()
