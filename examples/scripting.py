"""Driving the user interface from shell scripts — the paper's thesis.

Run:  python examples/scripting.py

"The user interface is driven by a file-oriented programming
interface that may be controlled from programs or even shell
scripts."  This example never calls a single Help method: every
window below is created, filled, searched and edited purely through
rc scripts reading and writing /mnt/help.
"""

from repro import build_system, render_window


def run(shell, script: str) -> str:
    result = shell.run(script)
    if result.status != 0:
        raise SystemExit(f"script failed: {result.stderr}")
    return result.stdout


def main() -> None:
    system = build_system(width=120, height=48)
    shell = system.shell("/usr/rob")

    # 1. Create a window and give it a name and contents -- pure script.
    print("=== creating a window from rc ===")
    out = run(shell, """x=`{cat /mnt/help/new/ctl}
echo tag /usr/rob/notes Close! > /mnt/help/$x/ctl
echo 'things to do:' > /mnt/help/$x/body
echo '  fix the bug sean reported' >> /mnt/help/$x/bodyapp
echo '  answer his mail' >> /mnt/help/$x/bodyapp
echo $x
""")
    wid = int(out.strip())
    window = system.help.windows[wid]
    print(render_window(system.help, window))
    print()

    # 2. The paper's own examples: cp and grep on a window body.
    print("=== cp /mnt/help/N/body file; grep pattern /mnt/help/N/body ===")
    run(shell, f"cp /mnt/help/{wid}/body /usr/rob/notes")
    print("saved copy:", repr(system.ns.read("/usr/rob/notes")))
    hits = run(shell, f"grep -n bug /mnt/help/{wid}/body")
    print("grep found:", hits.strip())
    print()

    # 3. The index file connects names to numbers.
    print("=== /mnt/help/index ===")
    print(run(shell, "cat /mnt/help/index"))

    # 4. Edit the window with ctl messages: select, replace, show.
    print("=== editing through ctl ===")
    run(shell, f"""echo 'replace 0 13 AGENDA' > /mnt/help/{wid}/ctl
echo 'select 0 6' > /mnt/help/{wid}/ctl
""")
    print(render_window(system.help, window))
    print("selection:", repr(system.help.selected_text()))
    print()

    # 5. A tiny "application": number the lines of a window, in rc.
    print("=== an rc application: numbering a window's lines ===")
    run(shell, f"""i=1
cat /mnt/help/{wid}/body | tee /tmp/lines > /tmp/copy
grep -n . /mnt/help/{wid}/body > /tmp/numbered
cp /tmp/numbered /mnt/help/{wid}/body
""")
    print(render_window(system.help, window))
    print()

    # 6. Windows close from scripts too.
    run(shell, f"echo close > /mnt/help/{wid}/ctl")
    print(f"window {wid} closed; index is now:")
    print(run(shell, "cat /mnt/help/index"))


if __name__ == "__main__":
    main()
