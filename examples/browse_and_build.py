"""The C browser and the two build tools, on a fresh project.

Run:  python examples/browse_and_build.py

Shows the substrates working on code that is *not* the paper's corpus:
a small project is written into the namespace, browsed with decl/uses
(scope-accurate, unlike grep), built with mk, edited, and rebuilt with
the paper's proposed *inverted* mk — which finds out what to build by
looking at which windows are dirty.
"""

from repro import build_system
from repro.cbrowse import parse_program

PROJECT = {
    "list.h": """typedef struct Node Node;
struct Node {
\tNode *next;
\tint value;
};
Node *push(Node *head, int value);
int total(Node *head);
""",
    "list.c": """#include "list.h"

static Node pool[128];
static int used;

Node *
push(Node *head, int value)
{
\tNode *node;

\tnode = &pool[used];
\tused = used + 1;
\tnode->next = head;
\tnode->value = value;
\treturn node;
}
""",
    "sum.c": """#include "list.h"

int
total(Node *head)
{
\tint value;

\tvalue = 0;
\twhile(head != 0){
\t\tvalue = value + head->value;
\t\thead = head->next;
\t}
\treturn value;
}
""",
    "mkfile": """OBJS=list.v sum.v

liblist: $OBJS
\tvl -o liblist $OBJS

%.v: %.c list.h
\tvc -w $stem.c
""",
}


def main() -> None:
    system = build_system(width=120, height=48)
    ns = system.ns
    ns.mkdir("/usr/rob/src/list", parents=True)
    for name, text in PROJECT.items():
        ns.write(f"/usr/rob/src/list/{name}", text)

    # -- browse ------------------------------------------------------------
    print("=== the browser's view of the project ===")
    paths = ns.glob("/usr/rob/src/list/*.c")
    program = parse_program(ns, paths, base_dir="/usr/rob/src/list")
    for decl in program.decls:
        if decl.kind in ("func", "var", "typedef", "tag"):
            print(f"  {decl.location:16s} {decl.kind:8s} {decl.name}")
    print()

    # scope precision: 'value' means three different things
    print("=== three different 'value's, told apart by scope ===")
    for file, line in (("list.c", 7), ("sum.c", 10)):
        decl = program.declaration_of("value", file, line)
        print(f"  value at {file}:{line} binds to the {decl.kind} "
              f"declared at {decl.location}")
    print()

    # uses of the global pool vs a grep for the same string
    print("=== uses of 'used' vs grep used ===")
    for use in program.uses_of("used"):
        print(f"  {use.location}")
    shell = system.shell("/usr/rob/src/list")
    grep = shell.run("grep -c used /usr/rob/src/list/*.c")
    print("  (grep counts per file:", " ".join(grep.stdout.split()), ")")
    print()

    # -- build -------------------------------------------------------------------
    print("=== mk builds everything once ===")
    print(shell.run("mk").stdout)

    print("=== a window edit makes sum.c dirty; inverted mk notices ===")
    window = system.help.open_path("/usr/rob/src/list/sum.c")
    start, end = window.body.find("value + head->value")
    window.body.replace(start, end, "value + head->value + 0")
    window.mark_dirty()
    # write it out and run imk, which reads /mnt/help/index
    ns.write("/usr/rob/src/list/sum.c", window.body.string())
    result = shell.run("imk")
    print(result.stdout)
    print("only sum.v and the library were rebuilt — list.v untouched.")


if __name__ == "__main__":
    main()
