"""The paper's example session: fix a reported bug without typing.

Run:  python examples/debug_session.py

Replays pages 286-291 of the paper — mail, stack trace, browsing,
the fix, and the rebuild — printing the windows at each step the way
the figures show them.  Every interaction is a mouse gesture; the
keystroke counter stays at zero the whole way through.
"""

from repro import build_system, render_window
from repro.core.window import Subwindow
from repro.tools.corpus import SRC_DIR


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    system = build_system(width=160, height=60)
    h = system.help
    h.stats.reset()

    mail_stf = h.window_by_name("/help/mail/stf")
    db_stf = h.window_by_name("/help/db/stf")
    cbr_stf = h.window_by_name("/help/cbr/stf")

    # -- Figure 5: read the mail ------------------------------------------
    banner("Figure 5 — executing mail/headers")
    h.execute_text(mail_stf, "headers")
    mbox_w = h.window_by_name("/mail/box/rob/mbox")
    print(render_window(h, mbox_w))

    # -- Figure 6: Sean's message -------------------------------------------
    banner("Figure 6 — messages applied to Sean's header line")
    h.point_at(mbox_w, mbox_w.body.string().index("sean"))
    h.execute_text(mail_stf, "messages")
    msg_w = h.window_by_name("From")
    print(render_window(h, msg_w))

    # -- Figure 7: the stack of the broken process -----------------------------
    banner("Figure 7 — db/stack applied to the broken process")
    h.point_at(msg_w, msg_w.body.string().index("176153"))
    h.execute_text(db_stf, "stack")
    stack_w = h.window_by_name(f"{SRC_DIR}/")
    print(stack_w.tag.string())
    print(stack_w.body.string())

    # -- Figure 8: open text.c at line 32 ---------------------------------------
    banner("Figure 8 — Open on text.c:32 (the window scrolls and selects)")
    h.point_at(stack_w, stack_w.body.string().index("text.c:32") + 2)
    h.execute_text(stack_w, "Open")
    text_w = h.window_by_name(f"{SRC_DIR}/text.c")
    sel = text_w.body.slice(text_w.body_sel.q0, text_w.body_sel.q1)
    print(f"selected at text.c:32 -> {sel!r}")
    h.execute_text(text_w, "Close!", Subwindow.TAG)

    # -- Figure 9: exec.c:252 ------------------------------------------------------
    banner("Figure 9 — Open on exec.c:252")
    h.point_at(stack_w, stack_w.body.string().index("exec.c:252") + 2)
    h.execute_text(stack_w, "Open")
    exec_w = h.window_by_name(f"{SRC_DIR}/exec.c")
    sel = exec_w.body.slice(exec_w.body_sel.q0, exec_w.body_sel.q1)
    print(f"selected at exec.c:252 -> {sel!r}")

    # -- Figure 10: all uses of n ------------------------------------------------
    banner("Figure 10 — uses *.c on the global n (grep would flood)")
    start = exec_w.body.pos_of_line(252)
    h.point_at(exec_w, exec_w.body.string().index("errs(n)", start) + 5)
    h.execute_text(cbr_stf, "uses *.c")
    uses_w = next(w for w in h.windows.values()
                  if w.name() == f"{SRC_DIR}/"
                  and "dat.h:136" in w.body.string())
    print(uses_w.body.string())

    # -- Figure 11: find the culprit write ----------------------------------------
    banner("Figure 11 — the write that cleared n (exec.c:213)")
    h.point_at(uses_w, uses_w.body.string().index("exec.c:213") + 2)
    h.execute_text(uses_w, "Open")
    culprit = exec_w.body.slice(exec_w.body_sel.q0, exec_w.body_sel.q1)
    print(f"the jackpot: {culprit!r} in Xdie1")

    # -- Figure 12: cut the line, write the file, rebuild ----------------------------
    banner("Figure 12 — Cut, Put!, mk (three middle clicks)")
    start, end = exec_w.body.line_span(213)
    h.select(exec_w, start, end + 1)
    h.execute_text(h.window_by_name("/help/edit/stf"), "Cut")
    h.execute_text(exec_w, "Put!", Subwindow.TAG)
    h.execute_text(cbr_stf, "mk")
    mk_w = h.window_by_name(f"{SRC_DIR}/mk")
    print(mk_w.tag.string())
    print(mk_w.body.string())

    banner("The claims")
    print(f"bug fixed:        {'n = 0;' not in system.ns.read(f'{SRC_DIR}/exec.c')}")
    print(f"binary rebuilt:   {system.ns.exists(f'{SRC_DIR}/help')}")
    print(f"keystrokes typed: {h.stats.keystrokes}  "
          "(\"I haven't yet touched the keyboard\")")


if __name__ == "__main__":
    main()
