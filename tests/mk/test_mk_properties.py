"""Property tests for the build substrate.

The key correctness statement for the inverted builder: for any
dependency graph and any set of touched sources, building the
affected targets leaves nothing for a subsequent full mk to do — the
two directions agree.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fs import VFS, Namespace
from repro.mk import Builder, cmd_vc, cmd_vl
from repro.mk.inverted import affected_targets, invert_and_build
from repro.shell import Interp


@st.composite
def projects(draw):
    """A random two-layer project: sources -> objects -> programs."""
    n_sources = draw(st.integers(1, 6))
    n_programs = draw(st.integers(1, 3))
    shared_header = draw(st.booleans())
    sources = [f"s{i}.c" for i in range(n_sources)]
    programs = {}
    for p in range(n_programs):
        members = draw(st.lists(st.sampled_from(sources), min_size=1,
                                max_size=n_sources, unique=True))
        programs[f"prog{p}"] = [m.replace(".c", ".v") for m in members]
    touched = draw(st.lists(st.sampled_from(sources), max_size=3,
                            unique=True))
    return sources, programs, shared_header, touched


def build_world(sources, programs, shared_header):
    fs = VFS()
    fs.mkdir("/p", parents=True)
    lines = []
    for name, objs in programs.items():
        lines.append(f"{name}: {' '.join(objs)}")
        lines.append(f"\tvl -o {name} {' '.join(objs)}")
        lines.append("")
    header = " common.h" if shared_header else ""
    lines.append(f"%.v: %.c{header}")
    lines.append("\tvc -w $stem.c")
    fs.create("/p/mkfile", "\n".join(lines) + "\n")
    for source in sources:
        fs.create(f"/p/{source}", f"int x_{source.replace('.', '_')};\n")
    if shared_header:
        fs.create("/p/common.h", "extern int shared;\n")
    interp = Interp(Namespace(fs), cwd="/p")
    interp.commands["vc"] = cmd_vc
    interp.commands["vl"] = cmd_vl
    return interp


class TestInvertedAgreesWithForward:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(projects())
    def test_imk_then_mk_is_noop(self, project):
        sources, programs, shared_header, touched = project
        sh = build_world(sources, programs, shared_header)
        builder = Builder(sh, "/p")
        for program in programs:
            builder.build(program)
        for source in touched:
            sh.run(f"touch {source}")
        if touched:
            invert_and_build(sh, "/p", touched)
        # a full forward build now finds everything up to date
        check = Builder(sh, "/p")
        result = check.build(list(programs)[0])
        for program in programs:
            result = check.build(program, result)
        assert result.built == [], (touched, result.built)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(projects())
    def test_affected_is_sound_and_complete(self, project):
        """affected_targets names exactly the programs whose object
        lists contain a touched source (or all, via the header)."""
        sources, programs, shared_header, touched = project
        sh = build_world(sources, programs, shared_header)
        builder = Builder(sh, "/p")
        affected = set(affected_targets(builder, touched))
        for name, objs in programs.items():
            members = {o.replace(".v", ".c") for o in objs}
            should = bool(members & set(touched))
            if "common.h" in touched:
                should = True
            assert (name in affected) == should, (name, touched)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(projects())
    def test_untouched_objects_not_rebuilt(self, project):
        sources, programs, shared_header, touched = project
        sh = build_world(sources, programs, shared_header)
        builder = Builder(sh, "/p")
        for program in programs:
            builder.build(program)
        for source in touched:
            sh.run(f"touch {source}")
        if not touched:
            return
        result = invert_and_build(sh, "/p", touched)
        rebuilt_objects = {t for t in result.built if t.endswith(".v")}
        expected = {s.replace(".c", ".v") for s in touched
                    if s.endswith(".c")}
        # only objects of touched sources recompile (no header touched)
        used = {o for objs in programs.values() for o in objs}
        assert rebuilt_objects == (expected & used) or \
            rebuilt_objects == expected
