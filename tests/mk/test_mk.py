"""Tests for mkfile parsing, the builder, toolchain, and inverted mk."""

import pytest

from repro.fs import VFS, Namespace
from repro.mk import (
    BuildError,
    Builder,
    MkfileError,
    affected_targets,
    cmd_imk,
    cmd_mk,
    cmd_vc,
    cmd_vl,
    modified_from_index,
    parse_mkfile,
)
from repro.mk.inverted import invert_and_build, modified_since
from repro.shell import Interp

MKFILE = """OBJS=a.v b.v

prog: $OBJS
\tvl -o prog $OBJS -lc

%.v: %.c common.h
\tvc -w $stem.c
"""


@pytest.fixture
def sh():
    fs = VFS()
    fs.mkdir("/src", parents=True)
    fs.mkdir("/bin")
    fs.create("/src/mkfile", MKFILE)
    fs.create("/src/a.c", "int a;\n")
    fs.create("/src/b.c", "int b;\n")
    fs.create("/src/common.h", "extern int a;\n")
    interp = Interp(Namespace(fs), cwd="/src")
    interp.commands["vc"] = cmd_vc
    interp.commands["vl"] = cmd_vl
    interp.commands["mk"] = cmd_mk
    interp.commands["imk"] = cmd_imk
    return interp


class TestParseMkfile:
    def test_variables(self):
        mkfile = parse_mkfile("X=1 2 3\nY=$X 4\n")
        assert mkfile.variables["X"] == ["1", "2", "3"]
        assert mkfile.variables["Y"] == ["1", "2", "3", "4"]

    def test_rule_with_recipe(self):
        mkfile = parse_mkfile("t: p1 p2\n\tcmd one\n\tcmd two\n")
        rule = mkfile.rules[0]
        assert rule.targets == ["t"]
        assert rule.prereqs == ["p1", "p2"]
        assert rule.recipe == ["cmd one", "cmd two"]

    def test_meta_rule_match(self):
        mkfile = parse_mkfile("%.v: %.c\n\tvc $stem.c\n")
        rule = mkfile.rules[0]
        assert rule.is_meta
        assert rule.match("exec.v") == "exec"
        assert rule.match("exec.o") is None

    def test_variable_in_rule(self):
        mkfile = parse_mkfile(MKFILE)
        assert mkfile.rules[0].prereqs == ["a.v", "b.v"]

    def test_default_target(self):
        assert parse_mkfile(MKFILE).default_target() == "prog"

    def test_comments_and_blanks(self):
        mkfile = parse_mkfile("# comment\n\nX=1\n")
        assert mkfile.variables["X"] == ["1"]

    def test_recipe_outside_rule_fails(self):
        with pytest.raises(MkfileError):
            parse_mkfile("\torphan recipe\n")

    def test_unparsable_line_fails(self):
        with pytest.raises(MkfileError):
            parse_mkfile("not a rule or assignment\n")

    def test_unknown_vars_pass_through(self):
        from repro.mk.mkfile import expand
        assert expand("vc $stem.c", {}) == "vc $stem.c"


class TestBuilder:
    def test_full_build(self, sh):
        result = Builder(sh, "/src").build()
        assert result.built == ["a.v", "b.v", "prog"]
        assert sh.ns.exists("/src/prog")
        assert "vc -w a.c" in result.commands

    def test_rebuild_is_noop(self, sh):
        Builder(sh, "/src").build()
        result = Builder(sh, "/src").build()
        assert result.up_to_date
        assert result.built == []

    def test_touch_source_rebuilds_one_object(self, sh):
        Builder(sh, "/src").build()
        sh.run("touch a.c")
        result = Builder(sh, "/src").build()
        assert "a.v" in result.built
        assert "b.v" not in result.built
        assert "prog" in result.built

    def test_touch_header_rebuilds_all(self, sh):
        Builder(sh, "/src").build()
        sh.run("touch common.h")
        result = Builder(sh, "/src").build()
        assert set(result.built) == {"a.v", "b.v", "prog"}

    def test_unknown_target(self, sh):
        with pytest.raises(BuildError, match="don't know how"):
            Builder(sh, "/src").build("mystery")

    def test_missing_source(self, sh):
        sh.ns.write("/src/mkfile", "t: absent.c\n\tvc absent.c\n")
        with pytest.raises(BuildError, match="don't know how"):
            Builder(sh, "/src").build()

    def test_cycle_detected(self, sh):
        sh.ns.write("/src/mkfile", "a: b\n\techo a\nb: a\n\techo b\n")
        with pytest.raises(BuildError, match="cycle"):
            Builder(sh, "/src").build()

    def test_failing_recipe(self, sh):
        sh.ns.write("/src/a.c", "int a; SYNTAX_ERROR\n")
        with pytest.raises(BuildError, match="failed"):
            Builder(sh, "/src").build()


class TestMkCommand:
    def test_mk_from_shell(self, sh):
        result = sh.run("mk")
        assert result.status == 0
        assert "vc -w a.c" in result.stdout
        assert "vl -o prog" in result.stdout

    def test_mk_nothing_to_do(self, sh):
        sh.run("mk")
        assert "nothing to do" in sh.run("mk").stdout

    def test_mk_explicit_target(self, sh):
        result = sh.run("mk a.v")
        assert result.status == 0
        assert sh.ns.exists("/src/a.v")
        assert not sh.ns.exists("/src/prog")

    def test_mk_missing_mkfile(self, sh):
        sh.cwd = "/bin"
        result = sh.run("mk")
        assert result.status == 1
        assert "no mkfile" in result.stderr

    def test_mk_compile_error_reported(self, sh):
        sh.ns.write("/src/b.c", "SYNTAX_ERROR\n")
        result = sh.run("mk")
        assert result.status == 1
        assert "syntax error" in result.stderr


class TestToolchain:
    def test_vc_output_names_input(self, sh):
        sh.run("vc -w a.c")
        assert "a.c" in sh.ns.read("/src/a.v")

    def test_vc_explicit_output(self, sh):
        sh.run("vc -o custom.v a.c")
        assert sh.ns.exists("/src/custom.v")

    def test_vc_missing_file(self, sh):
        assert sh.run("vc nope.c").status == 1

    def test_vl_combines_objects(self, sh):
        sh.run("vc a.c; vc b.c; vl -o out a.v b.v -lbio")
        binary = sh.ns.read("/src/out")
        assert "a.c" in binary and "b.c" in binary
        assert "lib(bio)" in binary

    def test_vl_missing_object(self, sh):
        assert sh.run("vl -o out ghost.v").status == 1


class TestInverted:
    def test_affected_targets_by_source(self, sh):
        builder = Builder(sh, "/src")
        assert affected_targets(builder, ["a.c"]) == ["prog"]
        assert affected_targets(builder, ["common.h"]) == ["prog"]
        assert affected_targets(builder, ["unrelated.c"]) == []

    def test_invert_and_build(self, sh):
        result = invert_and_build(sh, "/src", ["a.c"])
        assert "prog" in result.built
        assert "a.v" in result.built

    def test_modified_from_index(self):
        index = ("1\t/usr/rob/src/help/exec.c Put! Close! Get!\n"
                 "2\t/usr/rob/src/help/dat.h Close! Get!\n"
                 "3\thelp/Boot Exit\n"
                 "4\t/usr/rob/src/help/ Put! Close! Get!\n")
        assert modified_from_index(index) == ["/usr/rob/src/help/exec.c"]

    def test_modified_since(self, sh):
        tick = sh.ns.vfs.clock.now
        sh.run("touch b.c")
        assert modified_since(sh, "/src", tick) == ["b.c"]

    def test_imk_with_sources(self, sh):
        result = sh.run("imk a.c")
        assert result.status == 0
        assert "vl -o prog" in result.stdout

    def test_imk_no_index(self, sh):
        result = sh.run("imk")
        assert result.status == 1
        assert "no /mnt/help/index" in result.stderr

    def test_imk_from_help_index(self, sh):
        sh.ns.mkdir("/mnt/help", parents=True)
        sh.ns.write("/mnt/help/index", "5\t/src/a.c Put! Close! Get!\n")
        result = sh.run("imk")
        assert result.status == 0
        assert "vc -w a.c" in result.stdout

    def test_imk_nothing_modified(self, sh):
        sh.ns.mkdir("/mnt/help", parents=True)
        sh.ns.write("/mnt/help/index", "5\t/src/a.c Close! Get!\n")
        assert "nothing modified" in sh.run("imk").stdout
