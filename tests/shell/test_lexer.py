"""Unit tests for the rc lexer."""

import pytest

from repro.shell.lexer import (
    Backquote,
    LexError,
    Lexer,
    Lit,
    TokKind,
    VarRef,
)


def toks(src):
    return Lexer(src).tokens()


def kinds(src):
    return [t.kind for t in toks(src)]


class TestBasicTokens:
    def test_simple_words(self):
        out = toks("echo hello world")
        assert [t.kind for t in out[:-1]] == [TokKind.WORD] * 3
        assert out[0].literal() == "echo"

    def test_operators(self):
        assert kinds("a | b ; c && d || e") == [
            TokKind.WORD, TokKind.PIPE, TokKind.WORD, TokKind.SEMI,
            TokKind.WORD, TokKind.ANDAND, TokKind.WORD, TokKind.OROR,
            TokKind.WORD, TokKind.EOF]

    def test_redirections(self):
        assert kinds("a > f >> g < h") == [
            TokKind.WORD, TokKind.GREAT, TokKind.WORD, TokKind.DGREAT,
            TokKind.WORD, TokKind.LESS, TokKind.WORD, TokKind.EOF]

    def test_braces_parens(self):
        assert kinds("{ ( ) }") == [
            TokKind.LBRACE, TokKind.LPAREN, TokKind.RPAREN,
            TokKind.RBRACE, TokKind.EOF]

    def test_comment_to_eol(self):
        assert kinds("a # comment here\nb") == [
            TokKind.WORD, TokKind.NEWLINE, TokKind.WORD, TokKind.EOF]

    def test_newline_token(self):
        assert kinds("a\nb") == [
            TokKind.WORD, TokKind.NEWLINE, TokKind.WORD, TokKind.EOF]

    def test_newline_after_pipe_swallowed(self):
        assert kinds("a |\nb") == [
            TokKind.WORD, TokKind.PIPE, TokKind.WORD, TokKind.EOF]

    def test_blank_lines_collapse(self):
        assert kinds("a\n\n\nb") == [
            TokKind.WORD, TokKind.NEWLINE, TokKind.WORD, TokKind.EOF]

    def test_bang_operator_vs_word(self):
        out = toks("! ~ x y")
        assert out[0].kind is TokKind.BANG
        out = toks("Close!")
        assert out[0].kind is TokKind.WORD
        assert out[0].literal() == "Close!"

    def test_ampersand(self):
        assert kinds("a &") == [TokKind.WORD, TokKind.AMP, TokKind.EOF]


class TestQuoting:
    def test_single_quotes(self):
        tok = toks("'hello world'")[0]
        assert tok.fragments == [Lit("hello world", quoted=True)]

    def test_doubled_quote_is_literal(self):
        tok = toks("'don''t'")[0]
        assert tok.fragments == [Lit("don't", quoted=True)]

    def test_unterminated_quote(self):
        with pytest.raises(LexError, match="unterminated"):
            toks("'oops")

    def test_quoted_operators_are_literal(self):
        tok = toks("'a|b;c'")[0]
        assert tok.kind is TokKind.WORD
        assert tok.fragments[0].text == "a|b;c"

    def test_quote_adjacent_to_text(self):
        tok = toks("pre'mid'post")[0]
        assert tok.fragments == [Lit("pre"), Lit("mid", quoted=True),
                                 Lit("post")]


class TestVariables:
    def test_simple_var(self):
        tok = toks("$file")[0]
        assert tok.fragments == [VarRef("file")]

    def test_count_var(self):
        assert toks("$#*")[0].fragments == [VarRef("*", count=True)]

    def test_flatten_var(self):
        assert toks('$"var')[0].fragments == [VarRef("var", flatten=True)]

    def test_var_adjacent_literal(self):
        tok = toks("-i$id")[0]
        assert tok.fragments == [Lit("-i"), VarRef("id")]

    def test_var_then_slash(self):
        tok = toks("/mnt/help/$x/ctl")[0]
        assert tok.fragments == [Lit("/mnt/help/"), VarRef("x"), Lit("/ctl")]

    def test_caret_concatenation(self):
        tok = toks("a^$b")[0]
        assert tok.fragments == [Lit("a"), VarRef("b")]

    def test_bad_var(self):
        with pytest.raises(LexError):
            toks("$ ")


class TestBackquote:
    def test_simple(self):
        tok = toks("`{cat file}")[0]
        assert tok.fragments[0].source == "cat file"

    def test_nested_braces(self):
        tok = toks("`{a {b} c}")[0]
        assert tok.fragments[0].source == "a {b} c"

    def test_assignment_from_backquote(self):
        tok = toks("x=`{cat /mnt/help/new/ctl}")[0]
        assert tok.fragments[0] == Lit("x")
        assert tok.fragments[1] == Lit("=")
        assert isinstance(tok.fragments[2], Backquote)

    def test_unterminated(self):
        with pytest.raises(LexError, match="unterminated"):
            toks("`{oops")

    def test_backquote_needs_brace(self):
        with pytest.raises(LexError, match="followed by"):
            toks("`cat")

    def test_quote_inside_backquote(self):
        tok = toks("`{echo 'a}b'}")[0]
        assert tok.fragments[0].source == "echo 'a}b'"


class TestAssignmentLexing:
    def test_equals_split(self):
        tok = toks("x=abc")[0]
        assert tok.fragments == [Lit("x"), Lit("="), Lit("abc")]

    def test_equals_in_argument(self):
        tok = toks("-DX=1")[0]
        assert [f.text for f in tok.fragments] == ["-DX", "=", "1"]
