"""Tests for the simulated userland commands."""

import pytest

from repro.fs import VFS, Namespace
from repro.shell import Interp


@pytest.fixture
def sh():
    fs = VFS()
    for d in ("/bin", "/tmp", "/lib", "/src"):
        fs.mkdir(d, parents=True)
    fs.create("/tmp/data", "one\ntwo\nthree\ntwo\n")
    fs.create("/src/x.c", "int x;\nchar *s;\n")
    return Interp(Namespace(fs), cwd="/tmp")


def out(sh, cmd, stdin=""):
    result = sh.run(cmd, stdin)
    assert result.status == 0, result.stderr
    return result.stdout


class TestEchoCat:
    def test_echo_n(self, sh):
        assert out(sh, "echo -n x") == "x"

    def test_cat_stdin(self, sh):
        assert out(sh, "cat", stdin="piped") == "piped"

    def test_cat_multiple(self, sh):
        assert out(sh, "cat /tmp/data /src/x.c").startswith("one\n")

    def test_cat_missing(self, sh):
        assert sh.run("cat /nope").status == 1


class TestCpMvRm:
    def test_cp(self, sh):
        out(sh, "cp /tmp/data /tmp/copy")
        assert sh.ns.read("/tmp/copy") == sh.ns.read("/tmp/data")

    def test_cp_into_directory(self, sh):
        out(sh, "cp /src/x.c /tmp")
        assert sh.ns.exists("/tmp/x.c")

    def test_cp_relative(self, sh):
        out(sh, "cp data copy2")
        assert sh.ns.exists("/tmp/copy2")

    def test_mv(self, sh):
        out(sh, "mv /tmp/data /tmp/moved")
        assert sh.ns.exists("/tmp/moved")
        assert not sh.ns.exists("/tmp/data")

    def test_rm(self, sh):
        out(sh, "rm /tmp/data")
        assert not sh.ns.exists("/tmp/data")

    def test_rm_f_missing_ok(self, sh):
        assert sh.run("rm -f /nope").status == 0
        assert sh.run("rm /nope").status == 1


class TestGrep:
    def test_basic(self, sh):
        assert out(sh, "grep two /tmp/data") == "two\ntwo\n"

    def test_line_numbers(self, sh):
        assert out(sh, "grep -n three /tmp/data") == "3:three\n"

    def test_count(self, sh):
        assert out(sh, "grep -c two /tmp/data") == "2\n"

    def test_invert(self, sh):
        assert out(sh, "grep -v two /tmp/data") == "one\nthree\n"

    def test_case_insensitive(self, sh):
        assert out(sh, "grep -i TWO /tmp/data") == "two\ntwo\n"

    def test_no_match_status_one(self, sh):
        assert sh.run("grep zebra /tmp/data").status == 1

    def test_multiple_files_prefixed(self, sh):
        got = out(sh, "grep -n int /src/x.c /tmp/data || true")
        assert got == "/src/x.c:1:int x;\n"

    def test_stdin(self, sh):
        assert out(sh, "grep b", stdin="a\nb\n") == "b\n"

    def test_regex(self, sh):
        assert out(sh, "grep 't..' /tmp/data") == "two\nthree\ntwo\n"

    def test_bad_pattern(self, sh):
        assert sh.run("grep '[' /tmp/data").status == 2


class TestSed:
    def test_1q(self, sh):
        assert out(sh, "sed 1q /tmp/data") == "one\n"

    def test_nq(self, sh):
        assert out(sh, "sed 2q /tmp/data") == "one\ntwo\n"

    def test_substitute(self, sh):
        assert out(sh, "sed s/two/2/ /tmp/data") == "one\n2\nthree\n2\n"

    def test_substitute_global(self, sh):
        assert out(sh, "sed s/o/0/g", stdin="foo boo\n") == "f00 b00\n"

    def test_print_line(self, sh):
        assert out(sh, "sed -n 2p /tmp/data") == "two\n"

    def test_unsupported(self, sh):
        assert sh.run("sed y/a/b/ /tmp/data").status == 1


class TestTextUtils:
    def test_wc_l(self, sh):
        assert out(sh, "wc -l /tmp/data") == "4 /tmp/data\n"

    def test_wc_stdin(self, sh):
        assert out(sh, "wc -w", stdin="a b c") == "3\n"

    def test_sort(self, sh):
        assert out(sh, "sort", stdin="b\na\nc\n") == "a\nb\nc\n"

    def test_sort_reverse_numeric(self, sh):
        assert out(sh, "sort -rn", stdin="2\n10\n1\n") == "10\n2\n1\n"

    def test_sort_unique(self, sh):
        assert out(sh, "sort -u /tmp/data") == "one\nthree\ntwo\n"

    def test_uniq(self, sh):
        assert out(sh, "sort /tmp/data | uniq") == "one\nthree\ntwo\n"

    def test_uniq_count(self, sh):
        got = out(sh, "sort /tmp/data | uniq -c")
        assert "   2 two" in got

    def test_head_tail(self, sh):
        assert out(sh, "head -2 /tmp/data") == "one\ntwo\n"
        assert out(sh, "tail -1 /tmp/data") == "two\n"
        assert out(sh, "head -n 1 /tmp/data") == "one\n"

    def test_tee(self, sh):
        assert out(sh, "echo x | tee /tmp/teed") == "x\n"
        assert sh.ns.read("/tmp/teed") == "x\n"

    def test_xargs(self, sh):
        assert out(sh, "echo a b | xargs echo pre") == "pre a b\n"


class TestFsCommands:
    def test_ls_slashes_dirs(self, sh):
        got = out(sh, "ls /")
        assert "bin/\n" in got
        assert "src/\n" in got

    def test_ls_file(self, sh):
        assert out(sh, "ls /tmp/data") == "/tmp/data\n"

    def test_ls_missing(self, sh):
        assert sh.run("ls /zzz").status == 1

    def test_mkdir_p(self, sh):
        out(sh, "mkdir -p /a/b/c")
        assert sh.ns.isdir("/a/b/c")

    def test_touch_creates_and_bumps(self, sh):
        out(sh, "touch /tmp/new")
        t1 = sh.ns.mtime("/tmp/new")
        out(sh, "touch /tmp/new")
        assert sh.ns.mtime("/tmp/new") > t1

    def test_basename_dirname(self, sh):
        assert out(sh, "basename /a/b/c.x") == "c.x\n"
        assert out(sh, "basename /a/b/c.x .x") == "c\n"
        assert out(sh, "dirname /a/b/c.x") == "/a/b\n"

    def test_bind_and_ns(self, sh):
        out(sh, "bind -a /src /lib")
        assert sh.ns.exists("/lib/x.c")
        assert "/lib" in out(sh, "ns")

    def test_date_deterministic(self, sh):
        assert "1991" in out(sh, "date")

    def test_fortune(self, sh):
        sh.ns.write("/lib/fortunes", "wise words\n")
        assert out(sh, "fortune") == "wise words\n"

    def test_news(self, sh):
        sh.ns.write("/lib/news", "UNIX in song & verse\n")
        assert out(sh, "news") == "UNIX in song & verse\n"

    def test_read_builtin(self, sh):
        out(sh, "read line", stdin="first\nsecond\n")
        assert sh.get("line") == ["first"]
